//! Extension experiment: let the miss ratio *emerge* from a real
//! slab/LRU cache under Zipf popularity instead of assuming a fixed `r`,
//! and watch the database-stage latency respond.
//!
//! ```sh
//! cargo run --release --example emergent_miss
//! ```

use memlat::cluster::{CacheBackedConfig, CacheRouting, ClusterSim, MissMode, SimConfig};
use memlat::model::{database, ModelParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::builder().build()?;
    println!("cache-backed servers: Zipf(1.01) over 500K keys, Facebook value sizes\n");
    println!(
        "{:>12} {:>12} {:>18} {:>18}",
        "memory", "emergent r", "eq.23 E[T_D] µs", "exact E[T_D] µs"
    );

    for mem_mb in [4usize, 16, 64, 256] {
        let mode = MissMode::CacheBacked(CacheBackedConfig {
            memory_bytes: mem_mb << 20,
            keyspace: 500_000,
            skew: 1.01,
            mean_value_bytes: 329.0,
            routing: CacheRouting::Independent,
        });
        let cfg = SimConfig::new(params.clone())
            .duration(1.0)
            .warmup(6.0) // long warm-up: LRU contents must reach steady state
            .seed(11)
            .miss_mode(mode);
        let out = ClusterSim::run(&cfg)?;
        let r = out.miss_ratio();
        // Feed the emergent ratio back into the analytical model.
        let eq23 = database::db_latency_mean(150, r, params.db_service_rate());
        let exact = database::db_latency_mean_exact(150, r, params.db_service_rate());
        println!(
            "{:>9} MB {:>12.4} {:>18.1} {:>18.1}",
            mem_mb,
            r,
            eq23 * 1e6,
            exact * 1e6
        );
    }

    println!(
        "\nmore memory ⇒ fewer LRU evictions ⇒ lower emergent miss ratio; the analytical \
         model then consumes the emergent r exactly as it would a configured one."
    );
    Ok(())
}
