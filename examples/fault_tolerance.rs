//! Inject faults into the cluster simulator and watch the client-side
//! defenses work: a mid-run server outage with retries, a slow server
//! with hedged requests, and the tail-latency price of each.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use memlat::cluster::{ClientPolicy, ClusterSim, FaultPlan, RetryPolicy, SimConfig};
use memlat::model::ModelParams;

fn p99_us(out: &memlat::cluster::SimOutput) -> f64 {
    out.server_latency_quantile(0.99) * 1e6
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::builder().build()?;
    let base = SimConfig::new(params).duration(1.0).warmup(0.2).seed(77);

    // Healthy baseline.
    let healthy = ClusterSim::run(&base)?;
    println!(
        "healthy baseline: {} keys, p99 = {:.0} µs",
        healthy.total_keys(),
        p99_us(&healthy)
    );
    assert!(!healthy.resilience().any());

    // Scenario 1 — server 1 crashes for 300 ms mid-run; clients retry
    // with exponential backoff, exhausted keys fall through to the
    // database as forced misses.
    println!("\n— outage: server 1 down 0.5 s – 0.8 s, clients retry —");
    let outage_cfg = base
        .clone()
        .fault_plan(FaultPlan::none().crash(1, 0.5, 0.8))
        .client(ClientPolicy::none().retry(RetryPolicy {
            max_retries: 3,
            base_backoff: 1e-3,
            multiplier: 2.0,
            jitter: 0.2,
        }));
    let outage = ClusterSim::run(&outage_cfg)?;
    let res = outage.resilience();
    println!(
        "  refused {} | retries {} | forced misses {} ({:.3}% of keys) | downtime {:.2} s",
        res.refused,
        res.retries,
        res.forced_misses,
        outage.forced_miss_ratio() * 100.0,
        res.downtime,
    );
    println!(
        "  retries recovered {:.1}% of refused attempts; p99 = {:.0} µs",
        100.0 * (1.0 - res.forced_misses as f64 / res.refused.max(1) as f64),
        p99_us(&outage)
    );

    // Scenario 2 — server 0 runs 5× slow for 600 ms; hedged duplicates
    // to the replica after a healthy-p95 delay pull the tail back.
    println!("\n— degradation: server 0 at 5× service time 0.3 s – 0.9 s, hedging on —");
    let slow_plan = FaultPlan::none().slowdown(0, 0.3, 0.9, 5.0);
    let slow = ClusterSim::run(&base.clone().fault_plan(slow_plan.clone()))?;
    let delay = healthy.server_latency_quantile(0.95);
    let hedged = ClusterSim::run(
        &base
            .clone()
            .fault_plan(slow_plan)
            .client(ClientPolicy::none().hedge(delay)),
    )?;
    let hres = hedged.resilience();
    println!(
        "  unhedged p99 = {:.0} µs | hedged p99 = {:.0} µs (hedge delay {:.0} µs)",
        p99_us(&slow),
        p99_us(&hedged),
        delay * 1e6
    );
    println!(
        "  hedges sent {} | won {} ({:.1}%)",
        hres.hedges_sent,
        hres.hedges_won,
        100.0 * hres.hedges_won as f64 / hres.hedges_sent.max(1) as f64
    );
    println!(
        "  degraded-window mean at server 0: {:.0} µs vs healthy-window {:.0} µs",
        hedged.summary(0).degraded_latency.mean() * 1e6,
        hedged.summary(0).healthy_latency.mean() * 1e6,
    );

    // Scenario 3 — add a per-request timeout on top: bounded worst case,
    // paid for with forced misses.
    println!("\n— same degradation, 2 ms timeout, no retries —");
    let timed = ClusterSim::run(
        &base
            .fault_plan(FaultPlan::none().slowdown(0, 0.3, 0.9, 5.0))
            .client(ClientPolicy::none().timeout(2e-3)),
    )?;
    let tres = timed.resilience();
    println!(
        "  timeouts {} → forced misses {} ({:.2}% of keys); p99 = {:.0} µs",
        tres.timeouts,
        tres.forced_misses,
        timed.forced_miss_ratio() * 100.0,
        p99_us(&timed)
    );
    Ok(())
}
