//! When is load balancing worth it? Reproduces the paper's §5.2.2
//! guidance: balancing only matters once the hottest server crosses the
//! cliff utilization — and shows consistent hashing re-spreading load
//! when a server leaves.
//!
//! ```sh
//! cargo run --release --example load_balancing
//! ```

use memlat::model::{analysis, cliff, LoadDistribution, ModelParams, ServerLatencyModel};
use memlat::workload::{placement::induced_shares, ConsistentHashRing, ZipfPopularity};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cliff_rho = cliff::cliff_utilization(0.15, 0.1)?;
    println!(
        "cliff utilization for the Facebook workload: {:.0}%\n",
        cliff_rho * 100.0
    );

    println!("E[T_S(N)] as the hottest server's share p1 grows (Λ = 80 Kps, µ_S = 80 Kps):");
    println!(
        "{:>6} {:>10} {:>14} {:>10}",
        "p1", "ρ_hot", "E[T_S(N)] µs", "balance?"
    );
    for p1 in [0.25, 0.4, 0.55, 0.7, 0.75, 0.8, 0.9] {
        let params = ModelParams::builder()
            .load(if p1 <= 0.25 {
                LoadDistribution::Balanced
            } else {
                LoadDistribution::HotServer { p1 }
            })
            .total_key_rate(80_000.0)
            .build()?;
        let rho_hot = params.peak_utilization()?;
        let ts = ServerLatencyModel::new(&params)?.expected_latency(150);
        println!(
            "{p1:>6} {:>9.0}% {:>14.1} {:>10}",
            rho_hot * 100.0,
            ts * 1e6,
            if rho_hot > cliff_rho { "YES" } else { "no" }
        );
    }

    // The same story through the recommendation engine.
    let hot = ModelParams::builder()
        .load(LoadDistribution::HotServer { p1: 0.8 })
        .total_key_rate(80_000.0)
        .build()?;
    println!("\nmodel recommendations at p1 = 0.8:");
    for rec in analysis::recommendations(&hot)? {
        println!("  • {rec}");
    }

    // And the mechanism that restores balance: a consistent-hash ring.
    println!("\nconsistent hashing under a server removal (Zipf keys, 4 → 3 servers):");
    let ring = ConsistentHashRing::new(4, 160);
    let pop = ZipfPopularity::new(10_000_000, 1.01)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let before = induced_shares(&ring, || pop.sample_key(&mut rng), 200_000);
    let smaller = ring.without_server(2);
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(1);
    let after = induced_shares(&smaller, || pop.sample_key(&mut rng2), 200_000);
    println!("  shares before: {before:?}");
    println!("  shares after : {after:?} (server 2 removed; its arc moved to successors)");
    Ok(())
}
