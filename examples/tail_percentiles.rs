//! Tail percentiles of the request's server stage — an extension the
//! paper's expectation-only estimate cannot give you.
//!
//! Uses the exact per-key latency law (the collapse identity of
//! `memlat_queue::exact_key`) and the fork-join product CDF to print
//! p50/p99/p999 of `T_S(N)` across utilizations, next to the mean.
//!
//! ```sh
//! cargo run --release --example tail_percentiles
//! ```

use memlat::model::{ModelParams, ServerLatencyModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 150;
    println!("T_S(N) percentiles, Facebook workload shape (ξ=0.15, q=0.1, µ_S=80 Kps, N={n})\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "ρ", "E[T_S] µs", "p50 µs", "p99 µs", "p999 µs", "p999/mean"
    );

    for rho in [0.3, 0.5, 0.65, 0.75, 0.85, 0.92] {
        let params = ModelParams::builder()
            .key_rate_per_server(rho * 80_000.0)
            .keys_per_request(n)
            .build()?;
        let model = ServerLatencyModel::new(&params)?;
        let mean = model.expected_latency(n);
        let p50 = model.fork_join_quantile(n, 0.5);
        let p99 = model.fork_join_quantile(n, 0.99);
        let p999 = model.fork_join_quantile(n, 0.999);
        println!(
            "{:>7.0}% {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>13.2}x",
            rho * 100.0,
            mean * 1e6,
            p50 * 1e6,
            p99 * 1e6,
            p999 * 1e6,
            p999 / mean
        );
    }

    println!(
        "\nthe tail/mean ratio stays ~constant: every percentile is a shifted copy of the \
         same exponential tail (rate (1−δ)(1−q)µ_S), so percentile SLOs inherit the \
         cliff behaviour of Proposition 2 unchanged."
    );

    // With the database stage included, the full request law is still
    // closed-form (RequestLatencyLaw) — and the tail changes owner.
    let params = ModelParams::builder().build()?;
    let law = memlat::model::RequestLatencyLaw::new(&params)?;
    println!(
        "\nfull request law at the Table 3 point (r = 1%, 1/µ_D = 1 ms):\n  \
         E[T(N)] = {:.0} µs, p50 = {:.0} µs, p99 = {:.0} µs, p999 = {:.0} µs",
        law.mean() * 1e6,
        law.quantile(0.5) * 1e6,
        law.quantile(0.99) * 1e6,
        law.quantile(0.999) * 1e6,
    );
    println!(
        "  p999 − p99 = {:.2} ms ≈ ln10/µ_D: past p99 the DATABASE owns the tail, \
         not the memcached servers.",
        (law.quantile(0.999) - law.quantile(0.99)) * 1e3
    );
    Ok(())
}
