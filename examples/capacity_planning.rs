//! Capacity planning with the cliff rule (Proposition 2): for each burst
//! degree, how hard can a memcached server be driven before latency
//! collapses, and how many servers does a target workload need?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use memlat::model::{cliff, ArrivalPattern, ModelParams, ServerLatencyModel};

/// Finds the highest per-server key rate whose `E[T_S(N)]` stays below
/// the SLA, by bisection on λ.
fn max_rate_under_sla(xi: f64, sla: f64, mu_s: f64, n: u64) -> f64 {
    let (mut lo, mut hi) = (1.0, mu_s * 0.999);
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        let params = ModelParams::builder()
            .arrival(ArrivalPattern::GeneralizedPareto { xi })
            .key_rate_per_server(mid)
            .service_rate(mu_s)
            .build()
            .expect("valid sweep point");
        let ok = ServerLatencyModel::new(&params)
            .map(|m| m.expected_latency(n) <= sla)
            .unwrap_or(false);
        if ok {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mu_s = 80_000.0;
    let n = 150;
    let sla = 500e-6; // 500 µs server-stage budget
    let total_load = 1_000_000.0; // 1M keys/s to place

    println!(
        "capacity planning: µ_S = {} Kps, N = {}, SLA E[T_S(N)] ≤ {} µs",
        mu_s / 1e3,
        n,
        sla * 1e6
    );
    println!("target aggregate load: {} Kps\n", total_load / 1e3);
    println!(
        "{:>5} {:>12} {:>14} {:>14} {:>9}",
        "ξ", "cliff ρ_S", "max λ (SLA)", "util @ SLA", "servers"
    );

    for xi in [0.0, 0.15, 0.3, 0.5, 0.7] {
        let cliff_rho = cliff::cliff_utilization(xi, 0.1)?;
        let lam = max_rate_under_sla(xi, sla, mu_s, n);
        let servers = (total_load / lam).ceil();
        println!(
            "{xi:>5} {:>11.1}% {:>11.1} Kps {:>13.1}% {:>9}",
            cliff_rho * 100.0,
            lam / 1e3,
            lam / mu_s * 100.0,
            servers
        );
    }

    println!(
        "\nthe SLA-feasible utilization tracks the cliff: burstier traffic (larger ξ) \
         must run servers cooler, needing proportionally more of them."
    );
    Ok(())
}
