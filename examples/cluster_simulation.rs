//! Run the discrete-event cluster simulator next to the analytical model
//! and print a Table-3 style comparison.
//!
//! ```sh
//! cargo run --release --example cluster_simulation
//! ```

use memlat::cluster::{assembly::assemble_requests, ClusterSim, SimConfig};
use memlat::model::ModelParams;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::builder().build()?;
    let estimate = params.estimate()?;

    println!("analytical model (Theorem 1):");
    println!("{estimate}\n");

    println!("simulating 2 s of Facebook traffic on 4 servers…");
    let cfg = SimConfig::new(params.clone())
        .duration(2.0)
        .warmup(0.2)
        .seed(42);
    let out = ClusterSim::run(&cfg)?;
    println!(
        "  {} keys, observed utilization {:?}, miss ratio {:.4}\n",
        out.total_keys(),
        out.utilization()
            .iter()
            .map(|u| (u * 100.0).round())
            .collect::<Vec<_>>(),
        out.miss_ratio()
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let stats = assemble_requests(&out, params.keys_per_request(), 50_000, &mut rng);
    println!("measured (50 000 assembled requests):");
    println!("{stats}");

    println!(
        "\nmodel bounds contain the measurement: T_S {} | T(N) {}",
        estimate
            .server
            .contains(stats.ts.mean, 0.1 * estimate.server.upper),
        stats.total.mean
            <= estimate.network + estimate.server.upper + estimate.database_exact * 1.1
    );
    Ok(())
}
