//! Which factor should you optimize? Ranks the latency impact of
//! improving each factor of the paper's Table 2 in isolation — the §5.3
//! quantitative comparison as a tool.
//!
//! ```sh
//! cargo run --release --example what_if
//! ```

use memlat::model::{analysis, asymptotics, ModelParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::builder().build()?;
    let base = params.estimate()?;
    println!(
        "base configuration: E[T(N)] point estimate {:.1} µs\n",
        base.point() * 1e6
    );

    println!("impact of improving each factor in isolation (sorted by gain):");
    for impact in analysis::factor_impacts(&params)? {
        println!("  {impact}");
    }

    // The headline N-vs-r insight, quantified via elasticities.
    let n = params.keys_per_request();
    let e_r = asymptotics::elasticity(
        |r| memlat::model::database::db_latency_mean(n, r, params.db_service_rate()),
        params.miss_ratio(),
    );
    // Continuous relaxation of eq. 23 in N, so the central difference is
    // meaningful (u64 truncation would destroy it).
    let (r, mu_d) = (params.miss_ratio(), params.db_service_rate());
    let e_n = asymptotics::elasticity(
        |x| {
            let p_any = 1.0 - (1.0 - r).powf(x);
            p_any / mu_d * (x * r / p_any + 1.0).ln()
        },
        n as f64,
    );
    println!("\nelasticities of E[T_D(N)] at the base point:");
    println!("  d ln T_D / d ln r = {e_r:.2}   (≪ 1: halving the miss ratio barely helps)");
    println!("  d ln T_D / d ln N = {e_n:.2}   (reducing the fan-out helps about as much…");
    println!("   …and, unlike r, N also drives T_S(N) = Θ(log N))");
    Ok(())
}
