//! Quickstart: estimate end-user latency for the paper's Facebook
//! workload and print the model's recommendations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use memlat::model::{analysis, ArrivalPattern, ModelParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The configuration of §5.1 of the paper: four balanced memcached
    // servers under the measured Facebook workload.
    let params = ModelParams::builder()
        .servers(4)
        .keys_per_request(150)
        .arrival(ArrivalPattern::GeneralizedPareto { xi: 0.15 })
        .key_rate_per_server(62_500.0)
        .concurrency(0.1)
        .service_rate(80_000.0)
        .miss_ratio(0.01)
        .db_service_rate(1_000.0)
        .network_latency(20e-6)
        .build()?;

    println!(
        "memcached latency model — Theorem 1 estimate (N = {})",
        params.keys_per_request()
    );
    println!(
        "peak server utilization: {:.1}%\n",
        params.peak_utilization()? * 100.0
    );

    let estimate = params.estimate()?;
    println!("{estimate}\n");

    println!("recommendations (§5.3):");
    for rec in analysis::recommendations(&params)? {
        println!("  • {rec}");
    }
    Ok(())
}
