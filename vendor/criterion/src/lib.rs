//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the subset of the criterion 0.5 API the memlat benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `iter`, `iter_batched`, throughput annotation) on
//! top of a plain wall-clock harness.
//!
//! Reported numbers are mean wall time per iteration (and derived
//! element throughput); there is no statistical analysis, outlier
//! rejection, or HTML report. Good enough to spot order-of-magnitude
//! regressions and to measure the parallel-simulation speedup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 30;
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Top-level benchmark driver; collects groups and prints results.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// Units-of-work annotation used to derive a rate from the mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; ignored by this harness.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A named collection of benchmarks sharing sample-count/throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// `iter`/`iter_batched` exactly once.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.3e} /s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "  {name:<32} {:>12.3?} / iter over {} iters{rate}",
            mean, b.iters
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Times closures; handed to the `bench_function` callback.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup to populate caches / lazy state.
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if self.total > TIME_BUDGET {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
            if self.total > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
