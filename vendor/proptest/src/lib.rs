//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of the proptest 1.x API the memlat workspace
//! uses: the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] / [`prop_oneof!`] macros, range and tuple strategies,
//! [`Strategy::prop_map`], `collection::vec`, `option::of`, [`Just`],
//! `ProptestConfig::with_cases`, and [`TestCaseError`].
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports the generated inputs
//!   verbatim instead of a minimized counterexample.
//! - **Deterministic by default.** Case `i` of every test draws from a
//!   fixed RNG stream, so failures reproduce without a regression file
//!   (`*.proptest-regressions` files are ignored).
//! - `PROPTEST_CASES` overrides the per-test case count, like upstream.

#![forbid(unsafe_code)]

use std::fmt;

use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG handed to strategies; one fresh stream per case.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Creates the RNG stream for case `case` of test `test_seed`.
    pub fn for_case(test_seed: u64, case: u64) -> Self {
        // SplitMix-style mix so consecutive cases decorrelate.
        let mut z = test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self(rand::rngs::StdRng::seed_from_u64(z ^ (z >> 31)))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// How a single generated test case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case violated an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be redrawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds an assertion failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// Builds a rejection (input did not satisfy an assumption).
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(r) => write!(f, "test case failed: {r}"),
            Self::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Upstream-compatible module path for [`ProptestConfig`] / [`TestCaseError`].
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
}

/// A recipe for generating random values of one type.
///
/// Unlike upstream there is no value tree: `new_value` draws a plain
/// value and failures are reported unshrunk.
pub trait Strategy {
    /// The type this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    T: fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u: f64 = rng.gen();
                self.start + (self.end - self.start) * (u as $t)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `len` elements drawn from `element`; `len` is sampled
    /// uniformly from the given half-open range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt;

    /// Strategy yielding `Some` three times out of four, like upstream.
    pub struct OptionStrategy<S>(S);

    /// Wraps a strategy to also produce `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen::<f64>() < 0.75 {
                Some(self.0.new_value(rng))
            } else {
                None
            }
        }
    }
}

/// Internal support for [`prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> OneOf<T> {
    /// Builds a uniform choice over `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests. Each argument is drawn from its strategy for
/// every case; the body runs with `prop_assert!`-style early returns.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            // Stable per-test seed: hash the test path so renames, not
            // reorderings, change the stream.
            let test_seed: u64 = {
                let path = concat!(module_path!(), "::", stringify!($name));
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in path.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            };
            let config: $crate::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut rejects: u32 = 0;
            let mut case: u64 = 0;
            let mut passed: u32 = 0;
            while passed < cases {
                let mut rng = $crate::TestRng::for_case(test_seed, case);
                case += 1;
                // Debug-print inputs as they are drawn (the body may move
                // or mutate the bindings, and args may be patterns).
                let mut inputs = String::new();
                $(
                    let value = $crate::Strategy::new_value(&($strat), &mut rng);
                    {
                        use ::std::fmt::Write as _;
                        let _ = write!(
                            inputs,
                            "\n  {} = {:?}",
                            stringify!($arg),
                            &value
                        );
                    }
                    let $arg = value;
                )+
                let result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match result {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects <= cases.saturating_mul(16).max(1024),
                            "too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} failed: {}\ninputs:{}",
                            case - 1,
                            msg,
                            inputs
                        );
                    }
                }
            }
        }
    )*};
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $(
            $(#[$meta])*
            fn $name($($args)*) $body
        )*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects the current case (redrawn, not failed) when the condition is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let u = (5u64..17).new_value(&mut rng);
            assert!((5..17).contains(&u));
            let f = (-2.0f64..3.0).new_value(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let s = (3usize..4).new_value(&mut rng);
            assert_eq!(s, 3);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = {
            let mut rng = crate::TestRng::for_case(9, 4);
            crate::collection::vec(0u64..1000, 5..20).new_value(&mut rng)
        };
        let b = {
            let mut rng = crate::TestRng::for_case(9, 4);
            crate::collection::vec(0u64..1000, 5..20).new_value(&mut rng)
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_and_passes(x in 0u64..100, y in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u64..5).prop_map(|x| x * 2),
            Just(99u64),
        ]) {
            prop_assert!(v == 99 || v % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
