//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the subset of the `rand 0.8` API the memlat
//! workspace uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait with `gen::<f64>()` / `gen::<u64>()`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! (but statistically strong) generator than upstream's ChaCha12. Streams
//! remain deterministic per seed, which is all the simulator relies on;
//! absolute draw values simply differ from upstream `rand`.
//!
//! # Examples
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! let mut a = rand::rngs::StdRng::seed_from_u64(7);
//! let mut b = rand::rngs::StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let u: f64 = a.gen();
//! assert!((0.0..1.0).contains(&u));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw integer output.
///
/// Object-safe, so simulators can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut s = z;
            s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            s ^= s >> 31;
            let bytes = s.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

mod sample {
    use super::RngCore;

    /// Types drawable uniformly from an RNG's "standard" distribution.
    pub trait Standard: Sized {
        /// Draws one value.
        fn draw(rng: &mut impl RngCore) -> Self;
    }

    impl Standard for f64 {
        fn draw(rng: &mut impl RngCore) -> Self {
            // 53 mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn draw(rng: &mut impl RngCore) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for u64 {
        fn draw(rng: &mut impl RngCore) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn draw(rng: &mut impl RngCore) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for bool {
        fn draw(rng: &mut impl RngCore) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

pub use sample::Standard;

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a uniform value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when `low >= high`.
    fn gen_range(&mut self, range: core::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        range.start + (range.end - range.start) * self.gen::<f64>()
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng` — draw values differ from real
    /// `rand`, but determinism per seed and statistical quality hold.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut r = StdRng::seed_from_u64(3);
        let dynr: &mut dyn RngCore = &mut r;
        let _ = dynr.next_u64();
        let mut boxed: Box<dyn RngCore> = Box::new(StdRng::seed_from_u64(4));
        let _ = boxed.next_u64();
    }

    #[test]
    fn gen_range_and_bool() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let x = r.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
        }
        let heads = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((heads as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
