//! # memlat — Modeling and Analyzing Latency in the Memcached System
//!
//! A reproduction of *"Modeling and Analyzing Latency in the Memcached
//! system"* (Cheng, Ren, Jiang, Zhang — ICDCS 2017): an analytical latency
//! model for memcached deployments together with a discrete-event simulator
//! that plays the role of the paper's physical testbed.
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`model`] — the paper's contribution: Theorem 1 latency estimation,
//!   Proposition 1/2, cliff utilization, factor analysis.
//! * [`queueing`] — GI/M/1, GI^X/M/1 (batch), M/M/1 and M/G/1 machinery.
//! * [`dist`] — probability distributions with Laplace transforms.
//! * [`cluster`] — the full-system discrete-event simulator.
//! * [`workload`] — arrival processes, key popularity, placement,
//!   Facebook workload presets.
//! * [`cache`] — memcached server internals (slab allocator + LRU store).
//! * [`des`] — the discrete-event kernel.
//! * [`stats`] — streaming statistics, ECDFs, quantiles.
//! * [`numerics`] — root finding, quadrature, special functions.
//!
//! # Quickstart
//!
//! Estimate end-user latency for the paper's Facebook-workload
//! configuration (Table 3):
//!
//! ```
//! use memlat::model::{ArrivalPattern, ModelParams};
//!
//! let params = ModelParams::builder()
//!     .servers(4)
//!     .keys_per_request(150)
//!     .arrival(ArrivalPattern::GeneralizedPareto { xi: 0.15 })
//!     .key_rate_per_server(62_500.0)
//!     .concurrency(0.1)
//!     .service_rate(80_000.0)
//!     .miss_ratio(0.01)
//!     .db_service_rate(1_000.0)
//!     .network_latency(20e-6)
//!     .build()?;
//!
//! let est = params.estimate()?;
//! // The paper's Table 3: T_S(N) ∈ [351 µs, 366 µs], T_D(N) ≈ 836 µs.
//! assert!(est.server.upper > 300e-6 && est.server.upper < 450e-6);
//! assert!((est.database - 836e-6).abs() < 30e-6);
//! # Ok::<(), memlat::model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use memlat_cache as cache;
pub use memlat_cluster as cluster;
pub use memlat_des as des;
pub use memlat_dist as dist;
pub use memlat_model as model;
pub use memlat_numerics as numerics;
pub use memlat_queue as queueing;
pub use memlat_stats as stats;
pub use memlat_workload as workload;
