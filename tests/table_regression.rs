//! Regression tests pinning the analytical model to the paper's
//! published numbers (Tables 3 and 4) and the asymptotic claims (§5.2),
//! plus golden checks that the committed `results/*.csv` artifacts stay
//! consistent with the live code.

use memlat::cluster::{ClusterSim, SimConfig};
use memlat::model::{cliff, database, ModelParams};

/// Parses a committed `results/<name>.csv` into (headers, rows).
fn load_results_csv(name: &str) -> (Vec<String>, Vec<Vec<f64>>) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(format!("{name}.csv"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden artifact {}: {e}", path.display()));
    let mut lines = text.lines();
    let headers: Vec<String> = lines
        .next()
        .expect("csv header")
        .split(',')
        .map(str::to_string)
        .collect();
    let rows: Vec<Vec<f64>> = lines
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            l.split(',')
                .map(|c| c.parse::<f64>().expect("numeric csv cell"))
                .collect()
        })
        .collect();
    assert!(rows.iter().all(|r| r.len() == headers.len()), "ragged csv");
    (headers, rows)
}

fn col(headers: &[String], rows: &[Vec<f64>], name: &str) -> Vec<f64> {
    let idx = headers
        .iter()
        .position(|h| h == name)
        .unwrap_or_else(|| panic!("column {name} missing from {headers:?}"));
    rows.iter().map(|r| r[idx]).collect()
}

/// `MEMLAT_REGOLD=1 cargo test golden_table3` regenerates the golden
/// artifact in place (full profile only) and then immediately
/// re-validates it with the same assertions every other run applies.
///
/// Refuses to run under `MEMLAT_QUICK=1`: a quick-profile artifact is
/// exactly the stale-golden mistake the drift audit in EXPERIMENTS.md
/// closed (0.2 measured seconds under-sample long busy periods and
/// bias `T_S` low by ~25 µs).
fn maybe_regenerate_table3() {
    if std::env::var("MEMLAT_REGOLD").map(|v| v == "1") != Ok(true) {
        return;
    }
    assert!(
        !memlat_experiments::quick_mode(),
        "refusing to regenerate results/table3.csv under MEMLAT_QUICK=1: \
         golden artifacts must be full-profile (see the drift caveat in \
         EXPERIMENTS.md)"
    );
    // Write from the test's own manifest dir: the runtime
    // CARGO_MANIFEST_DIR seen by `results_dir()` points at whichever
    // package's target is running, which for this test is the
    // workspace root's facade package, not crates/experiments.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("table3.csv");
    let table = memlat_experiments::experiments::table3();
    std::fs::write(&path, table.to_csv())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("regenerated golden artifact {}", path.display());
}

/// `MEMLAT_REGOLD=1 cargo test golden_delayed_hits` regenerates the
/// delayed-hits sweep artifact in place (full profile only), mirroring
/// [`maybe_regenerate_table3`].
fn maybe_regenerate_delayed_hits() {
    if std::env::var("MEMLAT_REGOLD").map(|v| v == "1") != Ok(true) {
        return;
    }
    assert!(
        !memlat_experiments::quick_mode(),
        "refusing to regenerate results/delayed_hits.csv under MEMLAT_QUICK=1: \
         golden artifacts must be full-profile (see the drift caveat in \
         EXPERIMENTS.md)"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("delayed_hits.csv");
    let table = memlat_experiments::delayed_hits::delayed_hits();
    std::fs::write(&path, table.to_csv())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("regenerated golden artifact {}", path.display());
}

/// `MEMLAT_REGOLD=1 cargo test golden_emergent_r` regenerates the
/// emergent-miss-ratio sweep artifact in place (full profile only),
/// mirroring [`maybe_regenerate_table3`].
fn maybe_regenerate_emergent_r() {
    if std::env::var("MEMLAT_REGOLD").map(|v| v == "1") != Ok(true) {
        return;
    }
    assert!(
        !memlat_experiments::quick_mode(),
        "refusing to regenerate results/emergent_r.csv under MEMLAT_QUICK=1: \
         golden artifacts must be full-profile (see the drift caveat in \
         EXPERIMENTS.md)"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("emergent_r.csv");
    let table = memlat_experiments::emergent_r::emergent_r();
    std::fs::write(&path, table.to_csv())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("regenerated golden artifact {}", path.display());
}

#[test]
fn golden_emergent_r_csv_holds_the_constant_r_breakdown() {
    maybe_regenerate_emergent_r();
    // The committed sweep must keep telling the emergent-r story,
    // checked against the artifact alone (no simulation re-run): the
    // miss ratio is an *output* of memory budget × skew, it falls with
    // memory and with skew, both asymptotics track it at the measured
    // occupancy, and wherever the emergent ratio leaves the paper's 1%
    // materially the emergent-r closed form predicts the simulated
    // E[T_D(N)] better than the constant-r one.
    let (headers, rows) = load_results_csv("emergent_r");
    assert_eq!(rows.len(), 9, "3 skews × 3 memory budgets");
    let mem = col(&headers, &rows, "mem_mib");
    let skew = col(&headers, &rows, "skew");
    let cached = col(&headers, &rows, "cached_items");
    let r_pct = col(&headers, &rows, "emergent_r_pct");
    let jqt = col(&headers, &rows, "jqt_r_pct");
    let che = col(&headers, &rows, "che_r_pct");
    let const_err = col(&headers, &rows, "const_td_err_pct");
    let emergent_err = col(&headers, &rows, "emergent_td_err_pct");
    let mut breakdown_rows = 0;
    for i in 0..rows.len() {
        assert!(cached[i] > 1_000.0, "row {i}: cold cache in the golden");
        assert!(r_pct[i] > 0.0 && r_pct[i] < 50.0, "row {i}: {}", r_pct[i]);
        // Finite-size Che reference within 25%, JQT asymptotic within
        // its documented finite-size bias envelope (worst at low skew).
        assert!(
            (r_pct[i] / che[i] - 1.0).abs() < 0.25,
            "row {i}: emergent {} vs che {}",
            r_pct[i],
            che[i]
        );
        assert!(
            (r_pct[i] / jqt[i] - 1.0).abs() < 0.5,
            "row {i}: emergent {} vs jqt {}",
            r_pct[i],
            jqt[i]
        );
        if (r_pct[i] - 1.0).abs() > 0.5 {
            breakdown_rows += 1;
            assert!(
                emergent_err[i].abs() < const_err[i].abs(),
                "row {i}: constant-r prediction ({}%) beat emergent-r ({}%) \
                 despite r = {}%",
                const_err[i],
                emergent_err[i],
                r_pct[i]
            );
        }
    }
    assert!(
        breakdown_rows >= 4,
        "constant-r breakdown regime went missing ({breakdown_rows} rows)"
    );
    // Monotonicity in memory at fixed skew.
    for i in 0..rows.len() {
        for j in 0..rows.len() {
            if skew[i] == skew[j] && mem[i] < mem[j] {
                assert!(
                    r_pct[j] < r_pct[i] && cached[j] > cached[i],
                    "more memory did not miss less at skew {}",
                    skew[i]
                );
            }
        }
    }
}

#[test]
fn golden_delayed_hits_csv_holds_conservation_and_the_win() {
    maybe_regenerate_delayed_hits();
    // The committed sweep must keep telling the delayed-hits story: the
    // coalescing ledger conserves (dispatched + delayed hits == database
    // keys, pinning the waiter bookkeeping the differential and property
    // suites verify live), coalescing never adds fetches, and in the
    // headline regime (slow fetches × hot keys × small cache) it beats
    // the independent relay on both the mean and the p99 of the
    // database path. Checked against
    // the artifact alone — no simulation re-run — so drift in the
    // committed CSV is caught even when the code is untouched.
    let (headers, rows) = load_results_csv("delayed_hits");
    assert_eq!(rows.len(), 8, "2 fetch latencies × 2 skews × 2 cache sizes");
    let fetch = col(&headers, &rows, "fetch_us");
    let skew = col(&headers, &rows, "skew");
    let mem_mb = col(&headers, &rows, "mem_mb");
    let dispatched = col(&headers, &rows, "dispatched");
    let delayed = col(&headers, &rows, "delayed_hits");
    let db_keys = col(&headers, &rows, "db_keys");
    let reduction = col(&headers, &rows, "dispatch_reduction_pct");
    let delayed_pct = col(&headers, &rows, "delayed_pct");
    let ind_mean = col(&headers, &rows, "ind_db_mean_us");
    let coal_mean = col(&headers, &rows, "coal_db_mean_us");
    let ind_p99 = col(&headers, &rows, "ind_db_p99_us");
    let coal_p99 = col(&headers, &rows, "coal_db_p99_us");
    let mut headline_rows = 0;
    for i in 0..rows.len() {
        assert_eq!(
            dispatched[i] + delayed[i],
            db_keys[i],
            "row {i}: coalescing ledger does not conserve"
        );
        assert!(reduction[i] >= 0.0, "row {i}: coalescing added fetches");
        if fetch[i] >= 1_000.0 && skew[i] >= 1.2 && mem_mb[i] <= 2.0 {
            headline_rows += 1;
            assert!(delayed_pct[i] > 1.0, "row {i}: headline regime inert");
            assert!(
                coal_mean[i] < ind_mean[i] && coal_p99[i] < ind_p99[i],
                "row {i}: coalescing lost its latency win \
                 (mean {} vs {}, p99 {} vs {})",
                coal_mean[i],
                ind_mean[i],
                coal_p99[i],
                ind_p99[i]
            );
        }
    }
    assert_eq!(headline_rows, 1, "headline regime row went missing");
}

#[test]
fn golden_table3_csv_matches_live_model() {
    maybe_regenerate_table3();
    // The committed Table 3 artifact must agree with what the current
    // code computes: any drift in the model (or in the healthy
    // simulation path it summarizes) shows up as a mismatch here
    // without re-running the expensive simulation.
    let (headers, rows) = load_results_csv("table3");
    assert_eq!(rows.len(), 4, "table3 has four rows (N, S, D, total)");
    let est = ModelParams::builder().build().unwrap().estimate().unwrap();

    let model_lo = col(&headers, &rows, "model_lo_us");
    let model_hi = col(&headers, &rows, "model_hi_us");
    // Row 1 = T_S (Theorem 1), row 3 = end-to-end total.
    assert!((model_lo[1] - est.server.lower * 1e6).abs() < 1e-6);
    assert!((model_hi[1] - est.server.upper * 1e6).abs() < 1e-6);
    assert!((model_lo[3] - est.total.lower * 1e6).abs() < 1e-6);
    assert!((model_hi[3] - est.total.upper * 1e6).abs() < 1e-6);

    // The committed simulation column is the full profile (4 s
    // simulated, 60 k assembled requests) and stays near the paper's
    // measurement (368 µs for T_S, 1144 µs end-to-end). The simulated
    // mean-of-maxima runs a few percent hot against both: the paper's
    // eq. 12 estimator is biased low under its independence assumption
    // (see EXPERIMENTS.md caveats), so the unbiased value our assembler
    // reports lands above the measurement and above the product-form
    // upper estimate.
    let sim = col(&headers, &rows, "sim_us");
    let paper = col(&headers, &rows, "paper_meas_us");
    assert!((sim[1] - paper[1]).abs() < 30.0, "T_S sim {} µs", sim[1]);
    assert!(
        (sim[3] - paper[3]).abs() < 0.2 * paper[3],
        "total sim {} µs",
        sim[3]
    );
    // T_S sits above the Theorem 1 product-form band by that estimator
    // gap — bounded here at 10% over the upper estimate. (An artifact
    // regenerated under MEMLAT_QUICK=1 instead lands *inside* the band:
    // its 0.2 s measured window under-samples long busy periods. That
    // is exactly the mistake this assertion pair now catches.)
    let ci_lo = col(&headers, &rows, "sim_ci_lo_us")[1];
    let ci_hi = col(&headers, &rows, "sim_ci_hi_us")[1];
    let slack = (ci_hi - ci_lo) / 2.0;
    assert!(
        sim[1] > model_hi[1] - slack && sim[1] < model_hi[1] * 1.10,
        "T_S sim {} µs outside ({}, {}]",
        sim[1],
        model_hi[1] - slack,
        model_hi[1] * 1.10
    );
}

#[test]
fn golden_healthy_sim_is_untouched_by_the_fault_subsystem() {
    // A healthy quick run — default `SimConfig`, i.e. `FaultPlan::none()`
    // and a passive client — must report zero resilience activity and a
    // pooled mean inside the model's per-request bounds. This is the
    // coarse cross-check backing the bit-exact differential suite in
    // `crates/cluster/tests/fault_differential.rs`.
    let params = ModelParams::builder().build().unwrap();
    let est = params.estimate().unwrap();
    let out = ClusterSim::run(
        &SimConfig::new(params)
            .duration(0.5)
            .warmup(0.1)
            .seed(0x901d),
    )
    .unwrap();
    assert!(!out.resilience().any(), "healthy run flagged faults");
    assert_eq!(out.resilience().downtime, 0.0);
    let mean = out.pooled_latency_stats().mean();
    // The cluster sim runs below the Table 3 operating point (service
    // pooled over M servers), so the per-request mean sits at or below
    // the Theorem 1 upper bound — never above it.
    assert!(
        mean > 0.0 && mean < est.server.upper,
        "pooled mean {mean} outside (0, {})",
        est.server.upper
    );
}

#[test]
fn table3_model_values() {
    let est = ModelParams::builder().build().unwrap().estimate().unwrap();
    // Paper Table 3, "Theorem 1" column.
    assert!((est.network * 1e6 - 20.0).abs() < 1e-9);
    assert!(
        (est.server.lower * 1e6 - 351.0).abs() < 8.0,
        "{}",
        est.server.lower * 1e6
    );
    assert!(
        (est.server.upper * 1e6 - 366.0).abs() < 8.0,
        "{}",
        est.server.upper * 1e6
    );
    assert!(
        (est.database * 1e6 - 836.0).abs() < 2.0,
        "{}",
        est.database * 1e6
    );
    assert!((est.total.lower * 1e6 - 836.0).abs() < 5.0);
    assert!((est.total.upper * 1e6 - 1222.0).abs() < 15.0);
    // The paper's measurement, 1144 µs, lies inside the bounds.
    assert!(est.total.contains(1144e-6, 0.0));
}

#[test]
fn table4_reproduced_within_tolerance() {
    let mine = cliff::table4(0.1).unwrap();
    let mut worst: f64 = 0.0;
    for ((xi, rho), (xi_p, rho_p)) in mine.iter().zip(cliff::TABLE4_PAPER.iter()) {
        assert_eq!(xi, xi_p);
        worst = worst.max((rho - rho_p).abs());
    }
    assert!(worst < 0.09, "worst row error {worst}");
}

#[test]
fn facebook_cliff_is_about_75_percent() {
    // The paper's headline number: ~75% under the Facebook workload.
    let rho = cliff::cliff_utilization(0.15, 0.1).unwrap();
    assert!((rho - 0.75).abs() < 0.06, "{rho}");
}

#[test]
fn logarithmic_growth_in_n() {
    // E[T_S(N)] and E[T_D(N)] both grow ~logarithmically (§5.2.4).
    let params = ModelParams::builder().build().unwrap();
    let model = memlat::model::ServerLatencyModel::new(&params).unwrap();
    let steps: Vec<f64> = [100u64, 1_000, 10_000]
        .iter()
        .map(|&n| model.expected_latency(n))
        .collect();
    let (d1, d2) = (steps[1] - steps[0], steps[2] - steps[1]);
    assert!((d2 / d1 - 1.0).abs() < 0.1, "T_S increments {d1} vs {d2}");

    let db: Vec<f64> = [10_000u64, 100_000, 1_000_000]
        .iter()
        .map(|&n| database::db_latency_mean(n, 0.01, 1_000.0))
        .collect();
    let (e1, e2) = (db[1] - db[0], db[2] - db[1]);
    assert!((e2 / e1 - 1.0).abs() < 0.1, "T_D increments {e1} vs {e2}");
}

#[test]
fn eq25_regime_switch() {
    use memlat::model::asymptotics::{db_scaling_regime, DbScalingRegime};
    assert_eq!(
        db_scaling_regime(4, 0.01),
        DbScalingRegime::LinearInMissRatio
    );
    assert_eq!(
        db_scaling_regime(10_000, 0.01),
        DbScalingRegime::LogarithmicInMissRatio
    );
}

#[test]
fn eq23_bias_is_documented_not_hidden() {
    // The reproduction's finding: eq. 23 underestimates the
    // within-model-exact E[T_D(N)] by ~23% at the Table 3 point.
    let approx = database::db_latency_mean(150, 0.01, 1_000.0);
    let exact = database::db_latency_mean_exact(150, 0.01, 1_000.0);
    let bias = (exact - approx) / exact;
    assert!(bias > 0.15 && bias < 0.30, "bias = {bias}");
}
