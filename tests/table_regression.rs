//! Regression tests pinning the analytical model to the paper's
//! published numbers (Tables 3 and 4) and the asymptotic claims (§5.2).

use memlat::model::{cliff, database, ModelParams};

#[test]
fn table3_model_values() {
    let est = ModelParams::builder().build().unwrap().estimate().unwrap();
    // Paper Table 3, "Theorem 1" column.
    assert!((est.network * 1e6 - 20.0).abs() < 1e-9);
    assert!(
        (est.server.lower * 1e6 - 351.0).abs() < 8.0,
        "{}",
        est.server.lower * 1e6
    );
    assert!(
        (est.server.upper * 1e6 - 366.0).abs() < 8.0,
        "{}",
        est.server.upper * 1e6
    );
    assert!(
        (est.database * 1e6 - 836.0).abs() < 2.0,
        "{}",
        est.database * 1e6
    );
    assert!((est.total.lower * 1e6 - 836.0).abs() < 5.0);
    assert!((est.total.upper * 1e6 - 1222.0).abs() < 15.0);
    // The paper's measurement, 1144 µs, lies inside the bounds.
    assert!(est.total.contains(1144e-6, 0.0));
}

#[test]
fn table4_reproduced_within_tolerance() {
    let mine = cliff::table4(0.1).unwrap();
    let mut worst: f64 = 0.0;
    for ((xi, rho), (xi_p, rho_p)) in mine.iter().zip(cliff::TABLE4_PAPER.iter()) {
        assert_eq!(xi, xi_p);
        worst = worst.max((rho - rho_p).abs());
    }
    assert!(worst < 0.09, "worst row error {worst}");
}

#[test]
fn facebook_cliff_is_about_75_percent() {
    // The paper's headline number: ~75% under the Facebook workload.
    let rho = cliff::cliff_utilization(0.15, 0.1).unwrap();
    assert!((rho - 0.75).abs() < 0.06, "{rho}");
}

#[test]
fn logarithmic_growth_in_n() {
    // E[T_S(N)] and E[T_D(N)] both grow ~logarithmically (§5.2.4).
    let params = ModelParams::builder().build().unwrap();
    let model = memlat::model::ServerLatencyModel::new(&params).unwrap();
    let steps: Vec<f64> = [100u64, 1_000, 10_000]
        .iter()
        .map(|&n| model.expected_latency(n))
        .collect();
    let (d1, d2) = (steps[1] - steps[0], steps[2] - steps[1]);
    assert!((d2 / d1 - 1.0).abs() < 0.1, "T_S increments {d1} vs {d2}");

    let db: Vec<f64> = [10_000u64, 100_000, 1_000_000]
        .iter()
        .map(|&n| database::db_latency_mean(n, 0.01, 1_000.0))
        .collect();
    let (e1, e2) = (db[1] - db[0], db[2] - db[1]);
    assert!((e2 / e1 - 1.0).abs() < 0.1, "T_D increments {e1} vs {e2}");
}

#[test]
fn eq25_regime_switch() {
    use memlat::model::asymptotics::{db_scaling_regime, DbScalingRegime};
    assert_eq!(
        db_scaling_regime(4, 0.01),
        DbScalingRegime::LinearInMissRatio
    );
    assert_eq!(
        db_scaling_regime(10_000, 0.01),
        DbScalingRegime::LogarithmicInMissRatio
    );
}

#[test]
fn eq23_bias_is_documented_not_hidden() {
    // The reproduction's finding: eq. 23 underestimates the
    // within-model-exact E[T_D(N)] by ~23% at the Table 3 point.
    let approx = database::db_latency_mean(150, 0.01, 1_000.0);
    let exact = database::db_latency_mean_exact(150, 0.01, 1_000.0);
    let bias = (exact - approx) / exact;
    assert!(bias > 0.15 && bias < 0.30, "bias = {bias}");
}
