//! Conservation laws of the fault/resilience accounting, checked at the
//! whole-cluster level under a seeded [`FaultPlan`], at 1 and 4 worker
//! threads.
//!
//! The per-server unit tests in `crates/cluster/src/server.rs` verify
//! the same identities on a single station; this suite proves they
//! survive aggregation across servers, the parallel scheduler, and the
//! retry drain at the horizon.

use memlat::cluster::{
    CacheBackedConfig, CacheRouting, ClientPolicy, ClusterSim, FaultPlan, MissMode, MissRelay,
    RetryPolicy, SimConfig, SimOutput,
};
use memlat::model::ModelParams;

/// Crash and slowdown windows used throughout (seconds, absolute sim
/// time; the horizon is `warmup + duration`).
const CRASH: (usize, f64, f64) = (0, 0.30, 0.45);
const SLOW: (usize, f64, f64, f64) = (1, 0.20, 0.50, 6.0);
const WARMUP: f64 = 0.1;
const DURATION: f64 = 0.6;

fn faulty_config(threads: usize) -> SimConfig {
    let params = ModelParams::builder().build().unwrap();
    let plan = FaultPlan::none()
        .crash(CRASH.0, CRASH.1, CRASH.2)
        .slowdown(SLOW.0, SLOW.1, SLOW.2, SLOW.3);
    let client = ClientPolicy::none().timeout(2e-3).retry(RetryPolicy {
        max_retries: 2,
        base_backoff: 500e-6,
        multiplier: 2.0,
        jitter: 0.5,
    });
    SimConfig::new(params)
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(0xfau64 * 0x1_0001)
        .threads(threads)
        .fault_plan(plan)
        .client(client)
}

fn assert_conservation(out: &SimOutput) {
    let horizon = WARMUP + DURATION;

    // Every failed measured attempt (timeout or refusal) is accounted
    // for exactly once: it either earned a retry or exhausted the
    // budget and became a forced miss. Checked per server, so a
    // cross-server bookkeeping leak cannot cancel out in the totals.
    for (j, summary) in out.summaries().iter().enumerate() {
        let r = &summary.resilience;
        assert_eq!(
            r.timeouts + r.refused,
            r.retries + r.forced_misses,
            "server {j}: failures ≠ retries + forced misses: {r:?}"
        );
    }
    let total = out.resilience();
    assert_eq!(
        total.timeouts + total.refused,
        total.retries + total.forced_misses
    );

    // Equivalent formulation over attempts: measured keys each issue
    // one initial attempt; attempts = keys + retries; every attempt
    // either fails or completes its key; keys complete normally unless
    // forced. So completions + failures == attempts.
    let keys = out.total_keys();
    let attempts = keys + total.retries;
    let completions = keys - total.forced_misses;
    let failures = total.timeouts + total.refused;
    assert_eq!(completions + failures, attempts);

    // The fault actually bit: the crash window refused traffic and the
    // retry budget was exhausted at least once.
    assert!(total.refused > 0, "crash window refused nothing");
    assert!(total.retries > 0, "no retries under a 150 ms crash");
    assert!(total.forced_misses > 0, "no graceful degradation observed");
    assert!(out.forced_miss_ratio() > 0.0);
    // No hedging configured — the hedge counters must stay silent.
    assert_eq!(total.hedges_sent, 0);
    assert_eq!(total.hedges_won, 0);

    // Scheduled downtime/degraded seconds equal the plan's windows
    // clipped to the horizon, and only on the server each was
    // scheduled for.
    let crash_len = (CRASH.2.min(horizon) - CRASH.1.min(horizon)).max(0.0);
    let slow_len = (SLOW.2.min(horizon) - SLOW.1.min(horizon)).max(0.0);
    for (j, summary) in out.summaries().iter().enumerate() {
        let r = &summary.resilience;
        let want_down = if j == CRASH.0 { crash_len } else { 0.0 };
        let want_slow = if j == SLOW.0 { slow_len } else { 0.0 };
        assert!(
            (r.downtime - want_down).abs() < 1e-12,
            "server {j}: downtime {} ≠ scheduled {want_down}",
            r.downtime
        );
        assert!(
            (r.degraded_time - want_slow).abs() < 1e-12,
            "server {j}: degraded_time {} ≠ scheduled {want_slow}",
            r.degraded_time
        );
    }
    assert!((total.downtime - crash_len).abs() < 1e-12);
    assert!((total.degraded_time - slow_len).abs() < 1e-12);

    // Key-level conservation: per-server keys sum to the total, and
    // misses never exceed keys.
    let jobs: u64 = out.summaries().iter().map(|s| s.counters.jobs).sum();
    assert_eq!(jobs, keys);
    for summary in out.summaries() {
        assert!(summary.counters.misses <= summary.counters.jobs);
    }
}

/// A faulted, cache-backed cluster on the coalescing relay: a slow
/// database keeps fetches outstanding long enough that same-key misses
/// coalesce, while the crash/slowdown windows force keys through the
/// timeout → retry → forced-miss path concurrently.
fn coalesced_faulty_config(threads: usize) -> SimConfig {
    let params = ModelParams::builder()
        .db_service_rate(300.0)
        .build()
        .unwrap();
    let plan = FaultPlan::none()
        .crash(0, 0.10, 0.18)
        .slowdown(1, 0.08, 0.25, 6.0);
    let client = ClientPolicy::none()
        .timeout(2e-3)
        .retry(RetryPolicy {
            max_retries: 2,
            base_backoff: 500e-6,
            multiplier: 2.0,
            jitter: 0.5,
        })
        .hedge(1e-3);
    SimConfig::new(params)
        .duration(0.3)
        .warmup(0.05)
        .seed(0xc0a1_fa01)
        .threads(threads)
        .miss_mode(MissMode::CacheBacked(CacheBackedConfig {
            memory_bytes: 2 << 20,
            keyspace: 50_000,
            skew: 1.05,
            mean_value_bytes: 300.0,
            routing: CacheRouting::Independent,
        }))
        .miss_relay(MissRelay::Coalesced)
        .fault_plan(plan)
        .client(client)
}

/// Conservation with parked waiters in play: every database-path key —
/// regular miss or forced (timed-out / refused) miss — resolves exactly
/// once as either a dispatched fetch or a delayed hit. A waiter whose
/// origin request was timed out never reaches the relay (the timeout
/// resolves it to a forced miss first), and a forced miss is keyless by
/// construction, so it always dispatches and can never park.
fn assert_coalesced_conservation(out: &SimOutput) {
    let total = out.resilience();
    let regular: u64 = out.summaries().iter().map(|s| s.counters.misses).sum();
    let db_keys = regular + total.forced_misses;
    assert_eq!(out.db_latency_stats().count(), db_keys);
    let c = out.coalesce();
    assert_eq!(c.dispatched + c.delayed_hits, db_keys, "waiter leaked");
    // Keyless forced misses always dispatch — they can never be absorbed
    // into another key's outstanding fetch.
    assert!(c.dispatched >= total.forced_misses);
    // The regime was chosen so both machineries actually engage.
    assert!(c.delayed_hits > 0, "regime should coalesce");
    assert!(c.wait_time > 0.0);
    assert!(total.forced_misses > 0, "faults should force misses");
    assert!(total.retries > 0);
    // The failure ledger is undisturbed by the relay choice.
    assert_eq!(
        total.timeouts + total.refused,
        total.retries + total.forced_misses
    );
    assert!(total.hedges_won <= total.hedges_sent);
    assert!(total.hedges_sent > 0);
    // Per-server ledgers survive aggregation.
    for (j, summary) in out.summaries().iter().enumerate() {
        let r = &summary.resilience;
        assert_eq!(
            r.timeouts + r.refused,
            r.retries + r.forced_misses,
            "server {j}: failures ≠ retries + forced misses"
        );
    }
}

#[test]
fn coalescing_with_faults_conserves_and_is_thread_invariant() {
    let a = ClusterSim::run(&coalesced_faulty_config(1)).unwrap();
    let b = ClusterSim::run(&coalesced_faulty_config(4)).unwrap();
    assert_coalesced_conservation(&a);
    assert_coalesced_conservation(&b);
    // The parallel scheduler must not perturb waiter parking: counters,
    // coalesce ledgers, and record streams are bit-identical.
    assert_eq!(a.total_keys(), b.total_keys());
    assert_eq!(a.resilience(), b.resilience());
    assert_eq!(a.coalesce(), b.coalesce());
    for (sa, sb) in a.summaries().iter().zip(b.summaries()) {
        assert_eq!(sa.coalesce, sb.coalesce);
        assert_eq!(sa.resilience, sb.resilience);
    }
    for j in 0..a.summaries().len() {
        assert_eq!(a.records(j).s(), b.records(j).s());
        assert_eq!(a.records(j).d(), b.records(j).d());
    }
}

/// A server faulted for the entire horizon: every one of its measured
/// keys exhausts the retry budget and degrades to a keyless forced
/// miss. None of them may park as waiters (nothing to wait on, and a
/// degraded key must resolve immediately at the database), so that
/// server's ledger shows zero delayed hits with every database trip a
/// dispatch, while the healthy servers still coalesce normally.
#[test]
fn fully_faulted_server_never_leaks_waiters() {
    let horizon = 0.05 + 0.3;
    let base = coalesced_faulty_config(1);
    // The window must extend past the horizon, not end at it: backoff
    // retries scheduled near the horizon land *after* the window closes
    // and would find a healthy server.
    let cfg = base.fault_plan(FaultPlan::none().crash(0, 0.0, horizon + 1.0));
    let out = ClusterSim::run(&cfg).unwrap();
    let down = &out.summaries()[0];
    // Downtime accounting clips the scheduled window to the horizon.
    assert!((down.resilience.downtime - horizon).abs() < 1e-12);
    // Every measured key on the dead server was refused into a forced
    // miss; none became a regular (keyed) miss.
    assert_eq!(down.counters.misses, 0, "dead server produced keyed misses");
    assert!(down.resilience.forced_misses > 0);
    assert_eq!(down.counters.jobs, down.resilience.forced_misses);
    // All of them dispatched — a degraded key never parks.
    assert_eq!(down.coalesce.delayed_hits, 0);
    assert_eq!(down.coalesce.wait_time, 0.0);
    assert_eq!(down.coalesce.dispatched, down.resilience.forced_misses);
    // The cluster-wide ledger still balances, and the healthy servers
    // still coalesce.
    let total = out.resilience();
    let regular: u64 = out.summaries().iter().map(|s| s.counters.misses).sum();
    assert_eq!(
        out.db_latency_stats().count(),
        regular + total.forced_misses
    );
    let c = out.coalesce();
    assert_eq!(c.dispatched + c.delayed_hits, regular + total.forced_misses);
    assert!(c.delayed_hits > 0, "healthy servers should still coalesce");
}

#[test]
fn conservation_holds_on_one_thread() {
    let out = ClusterSim::run(&faulty_config(1)).unwrap();
    assert_conservation(&out);
}

#[test]
fn conservation_holds_on_four_threads_and_matches_one() {
    let a = ClusterSim::run(&faulty_config(1)).unwrap();
    let b = ClusterSim::run(&faulty_config(4)).unwrap();
    assert_conservation(&b);

    // The parallel scheduler must not perturb any of the accounting:
    // counters, resilience totals, and the per-key record streams are
    // bit-identical at any worker count.
    assert_eq!(a.total_keys(), b.total_keys());
    assert_eq!(a.resilience(), b.resilience());
    for (sa, sb) in a.summaries().iter().zip(b.summaries()) {
        assert_eq!(sa.counters.jobs, sb.counters.jobs);
        assert_eq!(sa.counters.misses, sb.counters.misses);
        assert_eq!(sa.resilience, sb.resilience);
        assert!((sa.counters.busy_time - sb.counters.busy_time).abs() == 0.0);
    }
    for j in 0..a.summaries().len() {
        assert_eq!(a.records(j).s(), b.records(j).s());
        assert_eq!(a.records(j).d(), b.records(j).d());
    }
}
