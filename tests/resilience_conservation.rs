//! Conservation laws of the fault/resilience accounting, checked at the
//! whole-cluster level under a seeded [`FaultPlan`], at 1 and 4 worker
//! threads.
//!
//! The per-server unit tests in `crates/cluster/src/server.rs` verify
//! the same identities on a single station; this suite proves they
//! survive aggregation across servers, the parallel scheduler, and the
//! retry drain at the horizon.

use memlat::cluster::{ClientPolicy, ClusterSim, FaultPlan, RetryPolicy, SimConfig, SimOutput};
use memlat::model::ModelParams;

/// Crash and slowdown windows used throughout (seconds, absolute sim
/// time; the horizon is `warmup + duration`).
const CRASH: (usize, f64, f64) = (0, 0.30, 0.45);
const SLOW: (usize, f64, f64, f64) = (1, 0.20, 0.50, 6.0);
const WARMUP: f64 = 0.1;
const DURATION: f64 = 0.6;

fn faulty_config(threads: usize) -> SimConfig {
    let params = ModelParams::builder().build().unwrap();
    let plan = FaultPlan::none()
        .crash(CRASH.0, CRASH.1, CRASH.2)
        .slowdown(SLOW.0, SLOW.1, SLOW.2, SLOW.3);
    let client = ClientPolicy::none().timeout(2e-3).retry(RetryPolicy {
        max_retries: 2,
        base_backoff: 500e-6,
        multiplier: 2.0,
        jitter: 0.5,
    });
    SimConfig::new(params)
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(0xfau64 * 0x1_0001)
        .threads(threads)
        .fault_plan(plan)
        .client(client)
}

fn assert_conservation(out: &SimOutput) {
    let horizon = WARMUP + DURATION;

    // Every failed measured attempt (timeout or refusal) is accounted
    // for exactly once: it either earned a retry or exhausted the
    // budget and became a forced miss. Checked per server, so a
    // cross-server bookkeeping leak cannot cancel out in the totals.
    for (j, summary) in out.summaries().iter().enumerate() {
        let r = &summary.resilience;
        assert_eq!(
            r.timeouts + r.refused,
            r.retries + r.forced_misses,
            "server {j}: failures ≠ retries + forced misses: {r:?}"
        );
    }
    let total = out.resilience();
    assert_eq!(
        total.timeouts + total.refused,
        total.retries + total.forced_misses
    );

    // Equivalent formulation over attempts: measured keys each issue
    // one initial attempt; attempts = keys + retries; every attempt
    // either fails or completes its key; keys complete normally unless
    // forced. So completions + failures == attempts.
    let keys = out.total_keys();
    let attempts = keys + total.retries;
    let completions = keys - total.forced_misses;
    let failures = total.timeouts + total.refused;
    assert_eq!(completions + failures, attempts);

    // The fault actually bit: the crash window refused traffic and the
    // retry budget was exhausted at least once.
    assert!(total.refused > 0, "crash window refused nothing");
    assert!(total.retries > 0, "no retries under a 150 ms crash");
    assert!(total.forced_misses > 0, "no graceful degradation observed");
    assert!(out.forced_miss_ratio() > 0.0);
    // No hedging configured — the hedge counters must stay silent.
    assert_eq!(total.hedges_sent, 0);
    assert_eq!(total.hedges_won, 0);

    // Scheduled downtime/degraded seconds equal the plan's windows
    // clipped to the horizon, and only on the server each was
    // scheduled for.
    let crash_len = (CRASH.2.min(horizon) - CRASH.1.min(horizon)).max(0.0);
    let slow_len = (SLOW.2.min(horizon) - SLOW.1.min(horizon)).max(0.0);
    for (j, summary) in out.summaries().iter().enumerate() {
        let r = &summary.resilience;
        let want_down = if j == CRASH.0 { crash_len } else { 0.0 };
        let want_slow = if j == SLOW.0 { slow_len } else { 0.0 };
        assert!(
            (r.downtime - want_down).abs() < 1e-12,
            "server {j}: downtime {} ≠ scheduled {want_down}",
            r.downtime
        );
        assert!(
            (r.degraded_time - want_slow).abs() < 1e-12,
            "server {j}: degraded_time {} ≠ scheduled {want_slow}",
            r.degraded_time
        );
    }
    assert!((total.downtime - crash_len).abs() < 1e-12);
    assert!((total.degraded_time - slow_len).abs() < 1e-12);

    // Key-level conservation: per-server keys sum to the total, and
    // misses never exceed keys.
    let jobs: u64 = out.summaries().iter().map(|s| s.counters.jobs).sum();
    assert_eq!(jobs, keys);
    for summary in out.summaries() {
        assert!(summary.counters.misses <= summary.counters.jobs);
    }
}

#[test]
fn conservation_holds_on_one_thread() {
    let out = ClusterSim::run(&faulty_config(1)).unwrap();
    assert_conservation(&out);
}

#[test]
fn conservation_holds_on_four_threads_and_matches_one() {
    let a = ClusterSim::run(&faulty_config(1)).unwrap();
    let b = ClusterSim::run(&faulty_config(4)).unwrap();
    assert_conservation(&b);

    // The parallel scheduler must not perturb any of the accounting:
    // counters, resilience totals, and the per-key record streams are
    // bit-identical at any worker count.
    assert_eq!(a.total_keys(), b.total_keys());
    assert_eq!(a.resilience(), b.resilience());
    for (sa, sb) in a.summaries().iter().zip(b.summaries()) {
        assert_eq!(sa.counters.jobs, sb.counters.jobs);
        assert_eq!(sa.counters.misses, sb.counters.misses);
        assert_eq!(sa.resilience, sb.resilience);
        assert!((sa.counters.busy_time - sb.counters.busy_time).abs() == 0.0);
    }
    for j in 0..a.summaries().len() {
        assert_eq!(a.records(j).s(), b.records(j).s());
        assert_eq!(a.records(j).d(), b.records(j).d());
    }
}
