//! Integration: Theorem 1 (analytical) vs the discrete-event simulator,
//! across the factors the paper sweeps — spot checks of Figs. 5, 6, 7
//! and 10 with generous tolerances (short runs).

use memlat::cluster::{ClusterSim, SimConfig};
use memlat::model::{ArrivalPattern, LoadDistribution, ModelParams, ServerLatencyModel};

/// Measured vs model `E[T_S(N)]` agreement for one parameter set.
fn assert_agreement(params: ModelParams, seed: u64, tolerance: f64, label: &str) {
    let model = ServerLatencyModel::new(&params).expect("stable config");
    let bounds = model.product_form_bounds(150);
    let cfg = SimConfig::new(params).duration(1.5).warmup(0.2).seed(seed);
    let out = ClusterSim::run(&cfg).expect("simulates");
    let measured = out.expected_server_latency(150);
    assert!(
        measured > bounds.lower * (1.0 - tolerance) && measured < bounds.upper * (1.0 + tolerance),
        "{label}: measured {:.1} µs outside band [{:.1}, {:.1}] µs ±{tolerance}",
        measured * 1e6,
        bounds.lower * 1e6,
        bounds.upper * 1e6,
    );
}

#[test]
fn fig5_spot_concurrency() {
    for (q, seed) in [(0.0, 1), (0.3, 2), (0.5, 3)] {
        let params = ModelParams::builder().concurrency(q).build().unwrap();
        assert_agreement(params, seed, 0.15, &format!("q={q}"));
    }
}

#[test]
fn fig6_spot_burst_degree() {
    for (xi, seed) in [(0.0, 4), (0.3, 5), (0.6, 6)] {
        let params = ModelParams::builder()
            .arrival(ArrivalPattern::GeneralizedPareto { xi })
            .build()
            .unwrap();
        // Burstier traffic mixes slower; wider tolerance at ξ = 0.6.
        let tol = if xi >= 0.5 { 0.35 } else { 0.15 };
        assert_agreement(params, seed, tol, &format!("xi={xi}"));
    }
}

#[test]
fn fig7_spot_arrival_rate() {
    for (lam, seed) in [(20_000.0, 7), (50_000.0, 8), (70_000.0, 9)] {
        let params = ModelParams::builder()
            .key_rate_per_server(lam)
            .build()
            .unwrap();
        assert_agreement(params, seed, 0.2, &format!("lam={lam}"));
    }
}

#[test]
fn fig10_spot_imbalance() {
    for (p1, seed) in [(0.4, 10), (0.75, 11)] {
        let params = ModelParams::builder()
            .load(LoadDistribution::HotServer { p1 })
            .total_key_rate(80_000.0)
            .build()
            .unwrap();
        assert_agreement(params, seed, 0.2, &format!("p1={p1}"));
    }
}

#[test]
fn fig7_cliff_location_matches_prop2() {
    // Latency at 75 Kps dwarfs latency at 50 Kps (cliff between them, at
    // ρ ≈ 75% per Table 4), both in the model and in the simulation.
    let at = |lam: f64, seed: u64| {
        let params = ModelParams::builder()
            .key_rate_per_server(lam)
            .build()
            .unwrap();
        let model = ServerLatencyModel::new(&params)
            .unwrap()
            .expected_latency(150);
        let out =
            ClusterSim::run(&SimConfig::new(params).duration(1.0).warmup(0.2).seed(seed)).unwrap();
        (model, out.expected_server_latency(150))
    };
    let (m50, s50) = at(50_000.0, 21);
    let (m75, s75) = at(75_000.0, 22);
    assert!(m75 / m50 > 4.0, "model cliff missing: {m50} -> {m75}");
    assert!(s75 / s50 > 3.0, "sim cliff missing: {s50} -> {s75}");
}

#[test]
fn arrival_pattern_ordering_preserved_by_sim() {
    // D < Erlang < M < H2 in latency at equal utilization — the
    // burstiness ordering the δ theory predicts, reproduced by the DES.
    let measure = |pattern: ArrivalPattern, seed: u64| {
        let params = ModelParams::builder().arrival(pattern).build().unwrap();
        let out =
            ClusterSim::run(&SimConfig::new(params).duration(1.0).warmup(0.2).seed(seed)).unwrap();
        out.expected_server_latency(150)
    };
    let det = measure(ArrivalPattern::Deterministic, 31);
    let erl = measure(ArrivalPattern::Erlang { k: 4 }, 32);
    let poi = measure(ArrivalPattern::Poisson, 33);
    let h2 = measure(ArrivalPattern::Hyperexponential { scv: 4.0 }, 34);
    assert!(det < erl, "D !< E4: {det} vs {erl}");
    assert!(erl < poi, "E4 !< M: {erl} vs {poi}");
    assert!(poi < h2, "M !< H2: {poi} vs {h2}");
}
