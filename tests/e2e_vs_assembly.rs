//! Integration: the end-to-end simulation (keys of one request arrive
//! together — real temporal correlation) vs the assembly estimator
//! (per-key independence, the model's eq. 10 assumption).
//!
//! The paper assumes independence is "acceptable" because each request's
//! keys are few relative to concurrent traffic; this test quantifies
//! that claim for the base configuration.

use memlat::cluster::{assembly::assemble_requests, e2e, ClusterSim, SimConfig};
use memlat::model::ModelParams;
use rand::SeedableRng;

/// Ratio of end-to-end to assembly `T_S(N)` for `m` servers at equal
/// per-server utilization.
fn correlation_ratio(m: usize, seed: u64) -> f64 {
    let params = ModelParams::builder()
        .servers(m)
        .key_rate_per_server(62_500.0)
        .build()
        .unwrap();
    let out = ClusterSim::run(
        &SimConfig::new(params.clone())
            .duration(1.0)
            .warmup(0.2)
            .seed(seed),
    )
    .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
    let indep = assemble_requests(&out, 150, 15_000, &mut rng);
    let e2e_out =
        e2e::run_e2e(&e2e::E2eConfig::new(params).requests(12_000).seed(seed + 2)).unwrap();
    e2e_out.ts.mean / indep.ts.mean
}

#[test]
fn independence_assumption_fails_for_small_clusters() {
    // Reproduction finding (extension #4 in EXPERIMENTS.md): with N=150
    // keys over only M=4 servers, each request lands a ~37-key
    // synchronized burst on every server — far burstier than the model's
    // calibrated q=0.1 — so the true (end-to-end) request latency is
    // SEVERAL TIMES the independence-based estimate. The paper's
    // justification of eq. 10 implicitly needs the cluster to interleave
    // many requests per server (N/M small).
    let ratio = correlation_ratio(4, 51);
    assert!(
        ratio > 1.5 && ratio < 10.0,
        "expected a large correlation penalty at M=4, got ratio {ratio:.2}"
    );
}

#[test]
fn independence_assumption_improves_with_more_servers() {
    // Spreading the same per-server load across more servers shrinks the
    // per-request burst (N/M keys) and with it the correlation penalty.
    let small = correlation_ratio(4, 55);
    let large = correlation_ratio(32, 57);
    assert!(
        large < small,
        "correlation penalty should fall with M: M=4 → {small:.2}, M=32 → {large:.2}"
    );
    assert!(
        large < 2.5,
        "at M=32 the assumption should be decent, got {large:.2}"
    );
}

#[test]
fn both_paths_show_the_same_load_response() {
    // Doubling the load moves both estimators in the same direction by a
    // comparable factor.
    let measure = |lam: f64, seed: u64| {
        let params = ModelParams::builder()
            .key_rate_per_server(lam)
            .build()
            .unwrap();
        let out = ClusterSim::run(
            &SimConfig::new(params.clone())
                .duration(0.8)
                .warmup(0.1)
                .seed(seed),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
        let a = assemble_requests(&out, 150, 8_000, &mut rng).ts.mean;
        let b = e2e::run_e2e(&e2e::E2eConfig::new(params).requests(6_000).seed(seed + 2))
            .unwrap()
            .ts
            .mean;
        (a, b)
    };
    let (a_lo, b_lo) = measure(30_000.0, 61);
    let (a_hi, b_hi) = measure(65_000.0, 62);
    assert!(
        a_hi > 1.5 * a_lo,
        "assembly load response: {a_lo} -> {a_hi}"
    );
    assert!(b_hi > 1.5 * b_lo, "e2e load response: {b_lo} -> {b_hi}");
}
