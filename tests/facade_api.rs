//! Integration: the `memlat` facade exposes every subsystem under stable
//! paths, and the crate-level quickstart actually works.

use memlat::dist::{Continuous, GeneralizedPareto};
use memlat::model::{ArrivalPattern, ModelParams};
use memlat::queueing::GixM1;
use memlat::stats::Ecdf;

#[test]
fn facade_paths_compose() {
    // distributions → queueing → model, through the re-exports only.
    let gaps = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
    assert!(gaps.mean() > 0.0);
    let queue = GixM1::new(&gaps, 0.1, 80_000.0).unwrap();
    assert!(queue.delta() > 0.7);

    let params = ModelParams::builder()
        .arrival(ArrivalPattern::GeneralizedPareto { xi: 0.15 })
        .build()
        .unwrap();
    let est = params.estimate().unwrap();
    assert!(est.total.upper > est.total.lower);

    let e = Ecdf::from_samples(&[1.0, 2.0, 3.0]);
    assert_eq!(e.quantile(0.5), 2.0);

    // DES + workload + cache crates are reachable too.
    let _ = memlat::des::EventQueue::<u32>::new();
    let _ = memlat::workload::facebook::KEY_RATE;
    let _ = memlat::cache::StoreConfig::default();
    let _ = memlat::numerics::KahanSum::new();
}

#[test]
fn error_types_are_std_errors() {
    fn takes_error<E: std::error::Error>(_: &E) {}
    let model_err = ModelParams::builder().servers(0).build().unwrap_err();
    takes_error(&model_err);
    let queue_err = memlat::queueing::MM1::new(2.0, 1.0).unwrap_err();
    takes_error(&queue_err);
    let dist_err = GeneralizedPareto::new(2.0, 1.0).unwrap_err();
    takes_error(&dist_err);
}

#[test]
fn unstable_configurations_fail_consistently() {
    // λ ≥ μ_S: the model refuses (no stationary regime) rather than
    // returning garbage — at the queue level…
    let gaps = memlat::dist::Exponential::new(90_000.0).unwrap();
    assert!(matches!(
        memlat::queueing::solve_delta(&gaps, 80_000.0),
        Err(memlat::queueing::QueueError::Unstable { .. })
    ));
    // …and at the model level.
    let params = ModelParams::builder()
        .key_rate_per_server(85_000.0)
        .build()
        .unwrap();
    assert!(params.estimate().is_err());
    // …and in the simulator's model-validation path.
    let cfg = memlat::cluster::SimConfig::new(params);
    assert!(memlat::cluster::ClusterSim::run(&cfg).is_err());
}
