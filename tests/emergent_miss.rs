//! Integration: the cache-backed miss mode — a real slab/LRU store under
//! Zipf popularity producing an *emergent* miss ratio (extension over the
//! paper's fixed `r`).

use memlat::cluster::{CacheBackedConfig, CacheRouting, ClusterSim, MissMode, SimConfig};
use memlat::model::ModelParams;

fn emergent_r(memory_bytes: usize, seed: u64) -> f64 {
    let params = ModelParams::builder().build().unwrap();
    let mode = MissMode::CacheBacked(CacheBackedConfig {
        memory_bytes,
        keyspace: 100_000,
        skew: 1.01,
        mean_value_bytes: 300.0,
        routing: CacheRouting::Independent,
    });
    let cfg = SimConfig::new(params)
        .duration(0.5)
        .warmup(2.0)
        .seed(seed)
        .miss_mode(mode);
    ClusterSim::run(&cfg).unwrap().miss_ratio()
}

#[test]
fn more_memory_fewer_misses() {
    let small = emergent_r(2 << 20, 71);
    let large = emergent_r(48 << 20, 71);
    assert!(
        small > large,
        "miss ratio did not fall with memory: {small} vs {large}"
    );
    assert!(small > 0.05, "tiny cache should miss a lot, got {small}");
    assert!(large < 0.2, "large cache should mostly hit, got {large}");
}

#[test]
fn emergent_ratio_feeds_the_model() {
    // The emergent r slots into Theorem 1 exactly like a configured one.
    let r = emergent_r(16 << 20, 72);
    let params = ModelParams::builder()
        .build()
        .unwrap()
        .with_miss_ratio(r)
        .unwrap();
    let est = params.estimate().unwrap();
    assert!(est.database > 0.0);
    assert!(est.total.lower <= est.total.upper);
}
