//! Key-to-server placement — the paper's key-to-server hashing algorithm
//! and the source of `{p_j}`.

use rand::RngCore;

use crate::KeyId;

/// Maps keys to memcached servers.
///
/// The paper abstracts placement into the load shares `{p_j}`; this trait
/// lets the simulator either impose shares directly
/// ([`StaticProbability`]) or derive them from real hashing schemes
/// ([`HashMod`], [`ConsistentHashRing`]) applied to a skewed key
/// population.
pub trait Placement: std::fmt::Debug + Send + Sync {
    /// The server index a key is stored on.
    fn server_of(&self, key: KeyId) -> usize;

    /// Number of servers.
    fn servers(&self) -> usize;
}

/// FNV-1a 64-bit hash — small, fast, and good enough for key placement.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash a key id (by its little-endian bytes).
#[must_use]
pub fn hash_key(key: KeyId) -> u64 {
    fnv1a(&key.to_le_bytes())
}

/// SplitMix64 finalizer — spreads structured hash inputs uniformly.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The classic `hash(key) mod M` placement.
///
/// # Examples
///
/// ```
/// use memlat_workload::{HashMod, Placement};
/// let p = HashMod::new(4);
/// assert!(p.server_of(12345) < 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashMod {
    servers: usize,
}

impl HashMod {
    /// Creates a modulo placement over `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        Self { servers }
    }
}

impl Placement for HashMod {
    fn server_of(&self, key: KeyId) -> usize {
        (hash_key(key) % self.servers as u64) as usize
    }

    fn servers(&self) -> usize {
        self.servers
    }
}

/// Consistent hashing with virtual nodes (the placement scheme memcached
/// clients like ketama use).
///
/// # Examples
///
/// ```
/// use memlat_workload::{ConsistentHashRing, Placement};
/// let ring = ConsistentHashRing::new(4, 160);
/// let s = ring.server_of(42);
/// assert!(s < 4);
/// // Stable: same key, same server.
/// assert_eq!(s, ring.server_of(42));
/// ```
#[derive(Debug, Clone)]
pub struct ConsistentHashRing {
    /// Sorted `(point, server)` pairs.
    ring: Vec<(u64, usize)>,
    servers: usize,
}

impl ConsistentHashRing {
    /// Builds a ring with `vnodes` virtual nodes per server.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `vnodes == 0`.
    #[must_use]
    pub fn new(servers: usize, vnodes: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(vnodes > 0, "need at least one virtual node");
        let mut ring = Vec::with_capacity(servers * vnodes);
        for s in 0..servers {
            for v in 0..vnodes {
                // FNV alone clusters on near-identical strings; a
                // SplitMix64-style finalizer spreads the ring points.
                let point = mix64(fnv1a(format!("server-{s}-vnode-{v}").as_bytes()));
                ring.push((point, s));
            }
        }
        ring.sort_unstable();
        ring.dedup_by_key(|e| e.0);
        Self { ring, servers }
    }

    /// Removes a server, remapping its arc to the clockwise successors —
    /// used to demo rebalancing in the examples.
    #[must_use]
    pub fn without_server(&self, server: usize) -> Self {
        let ring: Vec<(u64, usize)> = self
            .ring
            .iter()
            .copied()
            .filter(|&(_, s)| s != server)
            .collect();
        Self {
            ring,
            servers: self.servers,
        }
    }
}

impl Placement for ConsistentHashRing {
    fn server_of(&self, key: KeyId) -> usize {
        let h = hash_key(key);
        let idx = self.ring.partition_point(|&(p, _)| p < h);
        let (_, server) = self.ring[idx % self.ring.len()];
        server
    }

    fn servers(&self) -> usize {
        self.servers
    }
}

/// Imposes explicit load shares by hashing keys into probability bins —
/// the placement that realizes the paper's `{p_j}` exactly (in
/// expectation).
///
/// # Examples
///
/// ```
/// use memlat_workload::{Placement, StaticProbability};
/// let p = StaticProbability::new(&[0.75, 0.25]).unwrap();
/// assert_eq!(p.servers(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct StaticProbability {
    cumulative: Vec<f64>,
}

impl StaticProbability {
    /// Creates the placement from shares that must sum to 1.
    ///
    /// # Errors
    ///
    /// Returns a message when shares are invalid.
    pub fn new(shares: &[f64]) -> Result<Self, String> {
        if shares.is_empty() {
            return Err("need at least one share".to_string());
        }
        let sum: f64 = shares.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("shares must sum to 1, got {sum}"));
        }
        let mut cumulative = Vec::with_capacity(shares.len());
        let mut acc = 0.0;
        for &s in shares {
            if !(s.is_finite() && s >= 0.0) {
                return Err(format!("invalid share {s}"));
            }
            acc += s;
            cumulative.push(acc);
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Ok(Self { cumulative })
    }

    /// Samples a server index directly from the shares (for request
    /// assembly, where no concrete key exists).
    #[must_use]
    pub fn sample_server(&self, rng: &mut dyn RngCore) -> usize {
        let u = memlat_dist::open_unit(rng);
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

impl Placement for StaticProbability {
    fn server_of(&self, key: KeyId) -> usize {
        // Map the key hash to [0,1) and bin by cumulative shares.
        let u = hash_key(key) as f64 / (u64::MAX as f64 + 1.0);
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }

    fn servers(&self) -> usize {
        self.cumulative.len()
    }
}

/// Estimates the load shares `{p_j}` a placement induces on a key
/// population by sampling `draws` keys from `sample_key`.
pub fn induced_shares(
    placement: &dyn Placement,
    mut sample_key: impl FnMut() -> KeyId,
    draws: usize,
) -> Vec<f64> {
    let mut counts = vec![0u64; placement.servers()];
    for _ in 0..draws {
        counts[placement.server_of(sample_key())] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / draws as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fnv_reference_vector() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn hashmod_spreads_uniformly() {
        let p = HashMod::new(4);
        let mut counts = [0u64; 4];
        for k in 0..40_000u64 {
            counts[p.server_of(k)] += 1;
        }
        for c in counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }

    #[test]
    fn ring_is_stable_and_roughly_uniform() {
        let ring = ConsistentHashRing::new(4, 256);
        let mut counts = [0u64; 4];
        for k in 0..40_000u64 {
            let s = ring.server_of(k);
            assert_eq!(s, ring.server_of(k));
            counts[s] += 1;
        }
        for c in counts {
            // Consistent hashing is only approximately uniform.
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.25, "{counts:?}");
        }
    }

    #[test]
    fn ring_removal_only_moves_owned_keys() {
        let ring = ConsistentHashRing::new(4, 128);
        let smaller = ring.without_server(2);
        let mut moved = 0;
        let total = 10_000u64;
        for k in 0..total {
            let before = ring.server_of(k);
            let after = smaller.server_of(k);
            assert_ne!(after, 2);
            if before != after {
                assert_eq!(before, 2, "key {k} moved without leaving server 2");
                moved += 1;
            }
        }
        assert!(moved > 0);
        // Roughly a quarter of keys should move.
        assert!((moved as f64 / total as f64 - 0.25).abs() < 0.1);
    }

    #[test]
    fn static_probability_matches_shares() {
        let p = StaticProbability::new(&[0.75, 0.1, 0.1, 0.05]).unwrap();
        let shares = induced_shares(
            &p,
            {
                let mut k = 0u64;
                move || {
                    k += 1;
                    k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                }
            },
            100_000,
        );
        assert!((shares[0] - 0.75).abs() < 0.01, "{shares:?}");
        assert!((shares[3] - 0.05).abs() < 0.01, "{shares:?}");
    }

    #[test]
    fn static_probability_sampling_matches_shares() {
        let p = StaticProbability::new(&[0.6, 0.4]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut counts = [0u64; 2];
        for _ in 0..100_000 {
            counts[p.sample_server(&mut rng)] += 1;
        }
        assert!(
            (counts[0] as f64 / 100_000.0 - 0.6).abs() < 0.01,
            "{counts:?}"
        );
    }

    #[test]
    fn static_probability_validation() {
        assert!(StaticProbability::new(&[]).is_err());
        assert!(StaticProbability::new(&[0.5, 0.4]).is_err());
        assert!(StaticProbability::new(&[1.5, -0.5]).is_err());
    }

    #[test]
    fn zipf_population_through_uniform_hash_balances() {
        // Hashing smooths popularity only when no single key dominates a
        // server: with a huge keyspace and mild skew, shares ≈ 1/M.
        let ring = HashMod::new(4);
        let z = memlat_dist::Zipf::new(1_000_000, 0.9).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let shares = induced_shares(
            &ring,
            || {
                use memlat_dist::Discrete;
                z.sample(&mut rng)
            },
            50_000,
        );
        for s in &shares {
            assert!((s - 0.25).abs() < 0.1, "{shares:?}");
        }
        let _ = rng.gen::<u64>();
    }
}
