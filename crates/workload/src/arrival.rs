//! Batch arrival processes — the `GI^X` part of the paper's `GI^X/M/1`.

use memlat_dist::{Continuous, Discrete, GapLaw, GeometricBatch, ParamError};
use rand::RngCore;

/// A stream of key *batches*: general i.i.d. inter-batch gaps and
/// geometric batch sizes.
///
/// Matches §3 of the paper: keys arriving within a tiny window (< 1 µs in
/// the Facebook measurements) are modeled as one batch whose size follows
/// `P{X = n} = q^{n-1}(1−q)`.
///
/// The process is stateful (it tracks the current clock) and consumes an
/// external RNG so multiple servers can run independent streams from
/// per-stream RNGs.
///
/// The gap law is a type parameter so the simulator's hot path can use the
/// closed [`GapLaw`] enum (static dispatch, see
/// [`BatchArrivals::next_batch_with`]) while existing callers keep the
/// `Box<dyn Continuous>` default.
///
/// # Examples
///
/// ```
/// use memlat_dist::GeneralizedPareto;
/// use memlat_workload::BatchArrivals;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let gaps = GeneralizedPareto::facebook(0.15, 56_250.0)?;
/// let mut s = BatchArrivals::new(Box::new(gaps), 0.1)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let (t1, _) = s.next_batch(&mut rng);
/// let (t2, _) = s.next_batch(&mut rng);
/// assert!(t2 > t1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchArrivals<G: Continuous = Box<dyn Continuous>> {
    gaps: G,
    batch: GeometricBatch,
    clock: f64,
}

impl<G: Continuous> BatchArrivals<G> {
    /// Creates a batch process from an inter-batch gap law and the
    /// concurrency probability `q`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `q ∉ [0, 1)`.
    pub fn new(gaps: G, q: f64) -> Result<Self, ParamError> {
        Ok(Self {
            gaps,
            batch: GeometricBatch::new(q)?,
            clock: 0.0,
        })
    }

    /// Implied per-key arrival rate `λ = E[X]/E[T_X]`.
    #[must_use]
    pub fn key_rate(&self) -> f64 {
        self.batch.mean() / self.gaps.mean()
    }

    /// The concurrency probability `q`.
    #[must_use]
    pub fn concurrency(&self) -> f64 {
        self.batch.q()
    }

    /// Current clock (time of the last emitted batch).
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the stream: returns the next batch's arrival time and its
    /// size (≥ 1).
    pub fn next_batch(&mut self, rng: &mut dyn RngCore) -> (f64, u64) {
        self.clock += self.gaps.sample(rng);
        (self.clock, self.batch.sample(rng))
    }

    /// Resets the clock to zero (the RNG is external, so this alone does
    /// not reproduce a stream).
    pub fn reset(&mut self) {
        self.clock = 0.0;
    }
}

impl BatchArrivals<GapLaw> {
    /// [`next_batch`](Self::next_batch) through a concrete RNG type: the
    /// gap draw is a static match over [`GapLaw`] and the batch draw is
    /// the inlined geometric sampler. Bit-identical to `next_batch` with
    /// the same RNG state.
    #[inline]
    pub fn next_batch_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> (f64, u64) {
        self.clock += self.gaps.sample_with(rng);
        (self.clock, self.batch.sample_with(rng))
    }

    /// Streams successive batches into `visit` until it returns `false`,
    /// dispatching the gap-law variant **once for the whole run** instead
    /// of once per batch.
    ///
    /// Per-batch [`next_batch_with`](Self::next_batch_with) calls pay the
    /// enum match on every draw, which keeps the gap law's parameters out
    /// of registers — on the simulator's hot path that roughly doubles the
    /// cost of the draw itself. Hoisting the match lets the concrete
    /// sampler inline into the loop. Draw-for-draw the RNG consumption and
    /// arithmetic are identical, so a run is bit-identical to calling
    /// `next_batch_with` until `visit` declines.
    ///
    /// `visit` receives `(time, batch_size, rng)` — the RNG is handed back
    /// between draws so callers can interleave their own per-key draws in
    /// scalar stream order.
    #[inline]
    pub fn drive_batches_with<R, F>(&mut self, rng: &mut R, mut visit: F)
    where
        R: RngCore + ?Sized,
        F: FnMut(f64, u64, &mut R) -> bool,
    {
        let mut clock = self.clock;
        let batch = self.batch;
        macro_rules! drive {
            ($gaps:expr) => {{
                let gaps = $gaps;
                loop {
                    clock += gaps.sample_with(rng);
                    if !visit(clock, batch.sample_with(rng), rng) {
                        break;
                    }
                }
            }};
        }
        match &self.gaps {
            GapLaw::Exponential(d) => drive!(d),
            GapLaw::GeneralizedPareto(d) => drive!(d),
            GapLaw::Deterministic(d) => drive!(d),
            GapLaw::Erlang(d) => drive!(d),
            GapLaw::Uniform(d) => drive!(d),
            GapLaw::Hyperexponential(d) => drive!(d),
        }
        self.clock = clock;
    }
}

/// Generates batches until `horizon` (exclusive), invoking `f` for each
/// `(time, batch_size)`.
///
/// Returns the number of *keys* (not batches) generated.
pub fn for_each_batch_until<G: Continuous>(
    stream: &mut BatchArrivals<G>,
    horizon: f64,
    rng: &mut dyn RngCore,
    mut f: impl FnMut(f64, u64),
) -> u64 {
    let mut keys = 0;
    loop {
        let (t, b) = stream.next_batch(rng);
        if t >= horizon {
            return keys;
        }
        keys += b;
        f(t, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::{Deterministic, Exponential, GeneralizedPareto};
    use rand::SeedableRng;

    #[test]
    fn key_rate_accounts_for_batching() {
        let gaps = Exponential::new(900.0).unwrap();
        let s = BatchArrivals::new(Box::new(gaps), 0.1).unwrap();
        // batch rate 900, mean batch 1/0.9 ⇒ key rate 1000.
        assert!((s.key_rate() - 1000.0).abs() < 1e-9);
        assert_eq!(s.concurrency(), 0.1);
    }

    #[test]
    fn clock_is_monotone() {
        let gaps = GeneralizedPareto::facebook(0.5, 100.0).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut prev = 0.0;
        for _ in 0..1000 {
            let (t, b) = s.next_batch(&mut rng);
            assert!(t > prev);
            assert!(b >= 1);
            prev = t;
        }
    }

    #[test]
    fn empirical_key_rate_matches() {
        let gaps = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let horizon = 20.0;
        let keys = for_each_batch_until(&mut s, horizon, &mut rng, |_, _| {});
        let rate = keys as f64 / horizon;
        assert!((rate / 62_500.0 - 1.0).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn deterministic_gaps_are_even() {
        let gaps = Deterministic::new(0.5).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (t1, b1) = s.next_batch(&mut rng);
        let (t2, b2) = s.next_batch(&mut rng);
        assert_eq!((t1, t2), (0.5, 1.0));
        assert_eq!((b1, b2), (1, 1));
    }

    #[test]
    fn reset_clears_clock() {
        let gaps = Exponential::new(10.0).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        s.next_batch(&mut rng);
        assert!(s.clock() > 0.0);
        s.reset();
        assert_eq!(s.clock(), 0.0);
    }

    #[test]
    fn rejects_bad_q() {
        let gaps = Exponential::new(10.0).unwrap();
        assert!(BatchArrivals::new(Box::new(gaps), 1.0).is_err());
    }

    #[test]
    fn gap_law_stream_matches_boxed_stream() {
        let law = GapLaw::from(GeneralizedPareto::facebook(0.15, 56_250.0).unwrap());
        let boxed: Box<dyn Continuous> = Box::new(law.clone());
        let mut fast = BatchArrivals::new(law, 0.1).unwrap();
        let mut slow = BatchArrivals::new(boxed, 0.1).unwrap();
        let mut a = rand::rngs::StdRng::seed_from_u64(5);
        let mut b = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..5_000 {
            let (t1, n1) = fast.next_batch_with(&mut a);
            let (t2, n2) = slow.next_batch(&mut b);
            assert_eq!(t1.to_bits(), t2.to_bits());
            assert_eq!(n1, n2);
        }
    }
}
