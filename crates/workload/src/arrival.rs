//! Batch arrival processes — the `GI^X` part of the paper's `GI^X/M/1`.

use memlat_dist::{Continuous, Discrete, GapLaw, GeometricBatch, ParamError};
use rand::RngCore;

/// A stream of key *batches*: general i.i.d. inter-batch gaps and
/// geometric batch sizes.
///
/// Matches §3 of the paper: keys arriving within a tiny window (< 1 µs in
/// the Facebook measurements) are modeled as one batch whose size follows
/// `P{X = n} = q^{n-1}(1−q)`.
///
/// The process is stateful (it tracks the current clock) and consumes an
/// external RNG so multiple servers can run independent streams from
/// per-stream RNGs.
///
/// The gap law is a type parameter so the simulator's hot path can use the
/// closed [`GapLaw`] enum (static dispatch, see
/// [`BatchArrivals::next_batch_with`]) while existing callers keep the
/// `Box<dyn Continuous>` default.
///
/// # Examples
///
/// ```
/// use memlat_dist::GeneralizedPareto;
/// use memlat_workload::BatchArrivals;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let gaps = GeneralizedPareto::facebook(0.15, 56_250.0)?;
/// let mut s = BatchArrivals::new(Box::new(gaps), 0.1)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let (t1, _) = s.next_batch(&mut rng);
/// let (t2, _) = s.next_batch(&mut rng);
/// assert!(t2 > t1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchArrivals<G: Continuous = Box<dyn Continuous>> {
    gaps: G,
    batch: GeometricBatch,
    clock: f64,
}

impl<G: Continuous> BatchArrivals<G> {
    /// Creates a batch process from an inter-batch gap law and the
    /// concurrency probability `q`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `q ∉ [0, 1)`.
    pub fn new(gaps: G, q: f64) -> Result<Self, ParamError> {
        Ok(Self {
            gaps,
            batch: GeometricBatch::new(q)?,
            clock: 0.0,
        })
    }

    /// Implied per-key arrival rate `λ = E[X]/E[T_X]`.
    #[must_use]
    pub fn key_rate(&self) -> f64 {
        self.batch.mean() / self.gaps.mean()
    }

    /// The concurrency probability `q`.
    #[must_use]
    pub fn concurrency(&self) -> f64 {
        self.batch.q()
    }

    /// Current clock (time of the last emitted batch).
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the stream: returns the next batch's arrival time and its
    /// size (≥ 1).
    pub fn next_batch(&mut self, rng: &mut dyn RngCore) -> (f64, u64) {
        self.clock += self.gaps.sample(rng);
        (self.clock, self.batch.sample(rng))
    }

    /// Resets the clock to zero (the RNG is external, so this alone does
    /// not reproduce a stream).
    pub fn reset(&mut self) {
        self.clock = 0.0;
    }
}

/// Reusable lanes for the speculative block arrival pipeline
/// ([`BatchArrivals::fill_block_speculative`]): raw gap bits banked in
/// scalar draw order, their transformed gaps, and the kept batches'
/// absolute times and sizes. Holding one per worker lane (e.g. inside the
/// cluster simulator's block scratch) amortizes the allocations across a
/// whole sweep.
#[derive(Debug, Default)]
pub struct ArrivalScratch {
    /// Raw gap-draw bits, one `next_u64` per staged batch.
    gap_bits: Vec<u64>,
    /// Gaps transformed from `gap_bits` via the lane kernels.
    gaps: Vec<f64>,
    /// Absolute arrival times of the kept (pre-horizon) batches.
    times: Vec<f64>,
    /// Batch sizes, parallel to `times` after the horizon trim.
    sizes: Vec<u64>,
}

impl ArrivalScratch {
    /// Creates empty lanes.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn clear(&mut self) {
        self.gap_bits.clear();
        self.gaps.clear();
        self.times.clear();
        self.sizes.clear();
    }

    /// Arrival times of the kept batches, in arrival order.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Batch sizes of the kept batches, parallel to [`Self::times`].
    #[must_use]
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Total keys across the kept batches.
    #[must_use]
    pub fn keys(&self) -> usize {
        self.sizes.iter().map(|&b| b as usize).sum()
    }
}

impl BatchArrivals<GapLaw> {
    /// [`next_batch`](Self::next_batch) through a concrete RNG type: the
    /// gap draw is a static match over [`GapLaw`] and the batch draw is
    /// the inlined geometric sampler. Bit-identical to `next_batch` with
    /// the same RNG state.
    #[inline]
    pub fn next_batch_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> (f64, u64) {
        self.clock += self.gaps.sample_with(rng);
        (self.clock, self.batch.sample_with(rng))
    }

    /// Streams successive batches into `visit` until it returns `false`,
    /// dispatching the gap-law variant **once for the whole run** instead
    /// of once per batch.
    ///
    /// Per-batch [`next_batch_with`](Self::next_batch_with) calls pay the
    /// enum match on every draw, which keeps the gap law's parameters out
    /// of registers — on the simulator's hot path that roughly doubles the
    /// cost of the draw itself. Hoisting the match lets the concrete
    /// sampler inline into the loop. Draw-for-draw the RNG consumption and
    /// arithmetic are identical, so a run is bit-identical to calling
    /// `next_batch_with` until `visit` declines.
    ///
    /// `visit` receives `(time, batch_size, rng)` — the RNG is handed back
    /// between draws so callers can interleave their own per-key draws in
    /// scalar stream order.
    #[inline]
    pub fn drive_batches_with<R, F>(&mut self, rng: &mut R, mut visit: F)
    where
        R: RngCore + ?Sized,
        F: FnMut(f64, u64, &mut R) -> bool,
    {
        let mut clock = self.clock;
        let batch = self.batch;
        macro_rules! drive {
            ($gaps:expr) => {{
                let gaps = $gaps;
                loop {
                    clock += gaps.sample_with(rng);
                    if !visit(clock, batch.sample_with(rng), rng) {
                        break;
                    }
                }
            }};
        }
        match &self.gaps {
            GapLaw::Exponential(d) => drive!(d),
            GapLaw::GeneralizedPareto(d) => drive!(d),
            GapLaw::Deterministic(d) => drive!(d),
            GapLaw::Erlang(d) => drive!(d),
            GapLaw::Uniform(d) => drive!(d),
            GapLaw::Hyperexponential(d) => drive!(d),
        }
        self.clock = clock;
    }

    /// Whether [`fill_block_speculative`](Self::fill_block_speculative)
    /// supports this stream's gap law (one raw `u64` per gap draw and a
    /// block bits-kernel — see [`GapLaw::has_bits_kernel`]).
    #[must_use]
    pub fn speculative_supported(&self) -> bool {
        self.gaps.has_bits_kernel()
    }

    /// Speculatively generates whole batches until at least `min_keys`
    /// keys are staged (batches are never split) or the horizon is
    /// crossed — the block reformulation of the serial `clock += gap`
    /// recurrence.
    ///
    /// Raw gap bits are banked in scalar draw order and transformed to
    /// gaps as one slice scan through the SIMD-dispatched
    /// [`GapLaw::gaps_from_bits`] kernel; absolute arrival times come
    /// from a deterministic in-block prefix sum seeded with the carried
    /// clock, so every add happens in the same order on the same values
    /// as the scalar recurrence — bit-identical by construction.
    /// `draw_keys(size, rng)` runs once per staged batch, in stream
    /// order, so callers can bank their own per-key draws; it must
    /// consume exactly `key_draws` raw `u64`s per key.
    ///
    /// The horizon boundary is handled by over-generation and a
    /// deterministic trim: when batch `k`'s time lands at or past
    /// `horizon`, batches `k..` are discarded and the RNG is rewound to
    /// the snapshot taken on entry, then fast-forwarded by exactly the
    /// draws a scalar [`next_batch_with`](Self::next_batch_with) loop
    /// would have consumed — gap and batch-size draws for the kept
    /// batches *and* the terminal crossing batch, plus `key_draws` per
    /// kept key. RNG stream position and batch counts therefore match
    /// the scalar reference exactly, which is what keeps block size
    /// invisible in the output.
    ///
    /// Returns `true` when the horizon was crossed (the stream is
    /// exhausted); the kept batches are in
    /// [`ArrivalScratch::times`]/[`ArrivalScratch::sizes`], and the clock
    /// is left exactly where the scalar loop would leave it (the crossing
    /// batch's time).
    ///
    /// # Panics
    ///
    /// Panics when the gap law has no bits kernel — gate on
    /// [`Self::speculative_supported`].
    pub fn fill_block_speculative<R, F>(
        &mut self,
        rng: &mut R,
        horizon: f64,
        min_keys: usize,
        key_draws: usize,
        scratch: &mut ArrivalScratch,
        mut draw_keys: F,
    ) -> bool
    where
        R: RngCore + Clone,
        F: FnMut(u64, &mut R),
    {
        scratch.clear();
        let snapshot = rng.clone();
        let batch = self.batch;
        // Near the horizon, staging past the crossing is pure waste (the
        // tail is discarded and its draws replayed), so cap the staged
        // batches by the expected count left before the horizon, with
        // slack for gap-law variance. The cap only shrinks the effective
        // block size — proven invisible in the output — and a short fill
        // that neither crosses nor reaches `min_keys` just means the
        // caller fills again from a closer clock.
        let mean_gap = Continuous::mean(&self.gaps);
        let remaining = (horizon - self.clock).max(0.0);
        let cap = if mean_gap > 0.0 && mean_gap.is_finite() {
            (remaining / mean_gap * 1.25) as usize + 8
        } else {
            usize::MAX
        };
        let mut staged = 0usize;
        while staged < min_keys.max(1) && scratch.sizes.len() < cap {
            scratch.gap_bits.push(rng.next_u64());
            let b = batch.sample_with(rng);
            scratch.sizes.push(b);
            draw_keys(b, rng);
            staged += b as usize;
        }
        self.gaps
            .gaps_from_bits(&scratch.gap_bits, &mut scratch.gaps);
        let mut clock = self.clock;
        let mut cut = None;
        for (i, &g) in scratch.gaps.iter().enumerate() {
            clock += g;
            if clock >= horizon {
                cut = Some(i);
                break;
            }
            scratch.times.push(clock);
        }
        self.clock = clock;
        let Some(cut) = cut else {
            return false;
        };
        scratch.sizes.truncate(cut);
        let kept_keys: usize = scratch.sizes.iter().map(|&b| b as usize).sum();
        let batch_draws = usize::from(batch.q() > 0.0);
        let replay = (cut + 1) * (1 + batch_draws) + kept_keys * key_draws;
        *rng = snapshot;
        for _ in 0..replay {
            rng.next_u64();
        }
        true
    }
}

/// Generates batches until `horizon` (exclusive), invoking `f` for each
/// `(time, batch_size)`.
///
/// Returns the number of *keys* (not batches) generated.
pub fn for_each_batch_until<G: Continuous>(
    stream: &mut BatchArrivals<G>,
    horizon: f64,
    rng: &mut dyn RngCore,
    mut f: impl FnMut(f64, u64),
) -> u64 {
    let mut keys = 0;
    loop {
        let (t, b) = stream.next_batch(rng);
        if t >= horizon {
            return keys;
        }
        keys += b;
        f(t, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::{Deterministic, Exponential, GeneralizedPareto};
    use rand::SeedableRng;

    #[test]
    fn key_rate_accounts_for_batching() {
        let gaps = Exponential::new(900.0).unwrap();
        let s = BatchArrivals::new(Box::new(gaps), 0.1).unwrap();
        // batch rate 900, mean batch 1/0.9 ⇒ key rate 1000.
        assert!((s.key_rate() - 1000.0).abs() < 1e-9);
        assert_eq!(s.concurrency(), 0.1);
    }

    #[test]
    fn clock_is_monotone() {
        let gaps = GeneralizedPareto::facebook(0.5, 100.0).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut prev = 0.0;
        for _ in 0..1000 {
            let (t, b) = s.next_batch(&mut rng);
            assert!(t > prev);
            assert!(b >= 1);
            prev = t;
        }
    }

    #[test]
    fn empirical_key_rate_matches() {
        let gaps = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let horizon = 20.0;
        let keys = for_each_batch_until(&mut s, horizon, &mut rng, |_, _| {});
        let rate = keys as f64 / horizon;
        assert!((rate / 62_500.0 - 1.0).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn deterministic_gaps_are_even() {
        let gaps = Deterministic::new(0.5).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (t1, b1) = s.next_batch(&mut rng);
        let (t2, b2) = s.next_batch(&mut rng);
        assert_eq!((t1, t2), (0.5, 1.0));
        assert_eq!((b1, b2), (1, 1));
    }

    #[test]
    fn reset_clears_clock() {
        let gaps = Exponential::new(10.0).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        s.next_batch(&mut rng);
        assert!(s.clock() > 0.0);
        s.reset();
        assert_eq!(s.clock(), 0.0);
    }

    #[test]
    fn rejects_bad_q() {
        let gaps = Exponential::new(10.0).unwrap();
        assert!(BatchArrivals::new(Box::new(gaps), 1.0).is_err());
    }

    /// Scalar reference for the speculative driver: the exact
    /// `next_batch_with` + per-key-draw loop the block path must match.
    fn scalar_reference(
        law: &GapLaw,
        q: f64,
        horizon: f64,
        key_draws: usize,
        seed: u64,
    ) -> (Vec<(f64, u64)>, Vec<u64>, f64, u64) {
        let mut s = BatchArrivals::new(law.clone(), q).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut batches = Vec::new();
        let mut key_bits = Vec::new();
        loop {
            let (t, b) = s.next_batch_with(&mut rng);
            if t >= horizon {
                break;
            }
            batches.push((t, b));
            for _ in 0..b * key_draws as u64 {
                key_bits.push(rng.next_u64());
            }
        }
        let next = rng.next_u64();
        (batches, key_bits, s.clock(), next)
    }

    #[test]
    fn speculative_blocks_match_scalar_reference() {
        use rand::RngCore;
        let laws = [
            GapLaw::from(GeneralizedPareto::facebook(0.15, 56_250.0).unwrap()),
            GapLaw::from(GeneralizedPareto::facebook(0.0, 56_250.0).unwrap()),
            GapLaw::from(Exponential::new(56_250.0).unwrap()),
        ];
        let horizon = 0.02;
        for law in &laws {
            for &(q, key_draws) in &[(0.1, 2usize), (0.0, 1usize), (0.45, 1usize)] {
                let (want_batches, want_bits, want_clock, want_next) =
                    scalar_reference(law, q, horizon, key_draws, 99);
                for min_keys in [1usize, 37, 256, 1024] {
                    let mut s = BatchArrivals::new(law.clone(), q).unwrap();
                    assert!(s.speculative_supported());
                    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
                    let mut scratch = ArrivalScratch::new();
                    let mut batches = Vec::new();
                    let mut key_bits = Vec::new();
                    loop {
                        let crossed = s.fill_block_speculative(
                            &mut rng,
                            horizon,
                            min_keys,
                            key_draws,
                            &mut scratch,
                            |b, rng| {
                                for _ in 0..b * key_draws as u64 {
                                    key_bits.push(rng.next_u64());
                                }
                            },
                        );
                        batches.extend(
                            scratch
                                .times()
                                .iter()
                                .copied()
                                .zip(scratch.sizes().iter().copied()),
                        );
                        if crossed {
                            // Trim the speculative tail of the key draws.
                            let kept: usize = batches.iter().map(|&(_, b)| b as usize).sum();
                            key_bits.truncate(kept * key_draws);
                            break;
                        }
                    }
                    assert_eq!(batches.len(), want_batches.len(), "min_keys={min_keys}");
                    for (a, w) in batches.iter().zip(&want_batches) {
                        assert_eq!(a.0.to_bits(), w.0.to_bits(), "min_keys={min_keys}");
                        assert_eq!(a.1, w.1, "min_keys={min_keys}");
                    }
                    assert_eq!(key_bits, want_bits, "min_keys={min_keys}");
                    assert_eq!(
                        s.clock().to_bits(),
                        want_clock.to_bits(),
                        "min_keys={min_keys}"
                    );
                    assert_eq!(rng.next_u64(), want_next, "min_keys={min_keys}");
                }
            }
        }
    }

    #[test]
    fn gap_law_stream_matches_boxed_stream() {
        let law = GapLaw::from(GeneralizedPareto::facebook(0.15, 56_250.0).unwrap());
        let boxed: Box<dyn Continuous> = Box::new(law.clone());
        let mut fast = BatchArrivals::new(law, 0.1).unwrap();
        let mut slow = BatchArrivals::new(boxed, 0.1).unwrap();
        let mut a = rand::rngs::StdRng::seed_from_u64(5);
        let mut b = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..5_000 {
            let (t1, n1) = fast.next_batch_with(&mut a);
            let (t2, n2) = slow.next_batch(&mut b);
            assert_eq!(t1.to_bits(), t2.to_bits());
            assert_eq!(n1, n2);
        }
    }
}
