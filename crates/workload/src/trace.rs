//! Workload traces: record a generated arrival stream, replay it later.
//!
//! Useful for comparing simulator variants on *identical* traffic (the
//! same batches, in the same order) and for exporting workloads for
//! external tools.

use std::io::{BufRead, Write};

use memlat_dist::{Continuous, ParamError};

use crate::arrival::BatchArrivals;

/// One recorded batch arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Which server stream the batch belongs to.
    pub server: u32,
    /// Arrival time (seconds).
    pub time: f64,
    /// Number of concurrent keys in the batch.
    pub batch: u64,
}

/// Records `duration` seconds of a batch stream into a trace.
pub fn record<G: Continuous>(
    stream: &mut BatchArrivals<G>,
    server: u32,
    duration: f64,
    rng: &mut dyn rand::RngCore,
) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    crate::arrival::for_each_batch_until(stream, duration, rng, |time, batch| {
        out.push(TraceRecord {
            server,
            time,
            batch,
        });
    });
    out
}

/// Writes a trace as JSON lines.
///
/// `f64` times are formatted with Rust's shortest-roundtrip `Display`,
/// so [`load`] recovers them bit-exactly.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save<W: Write>(records: &[TraceRecord], mut w: W) -> std::io::Result<()> {
    for r in records {
        writeln!(
            w,
            "{{\"server\":{},\"time\":{},\"batch\":{}}}",
            r.server, r.time, r.batch
        )?;
    }
    Ok(())
}

fn parse_field<T: std::str::FromStr>(obj: &str, key: &str) -> Option<T> {
    let needle = format!("\"{key}\":");
    let start = obj.find(&needle)? + needle.len();
    let rest = obj[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Reads a JSON-lines trace written by [`save`].
///
/// # Errors
///
/// Propagates I/O errors; malformed lines become `InvalidData`.
pub fn load<R: BufRead>(r: R) -> std::io::Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record = (|| {
            Some(TraceRecord {
                server: parse_field(line, "server")?,
                time: parse_field(line, "time")?,
                batch: parse_field(line, "batch")?,
            })
        })()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed trace line: {line}"),
            )
        })?;
        out.push(record);
    }
    Ok(out)
}

/// Replays a recorded trace as an arrival stream (a [`Continuous`]-free
/// alternative to [`BatchArrivals`]).
#[derive(Debug, Clone)]
pub struct TraceReplay {
    records: Vec<TraceRecord>,
    cursor: usize,
}

impl TraceReplay {
    /// Creates a replay over records (sorted by time).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the trace is empty.
    pub fn new(mut records: Vec<TraceRecord>) -> Result<Self, ParamError> {
        if records.is_empty() {
            return Err(ParamError::new("cannot replay an empty trace"));
        }
        records.sort_by(|a, b| a.time.total_cmp(&b.time));
        Ok(Self { records, cursor: 0 })
    }

    /// The next batch, or `None` when the trace is exhausted.
    pub fn next_batch(&mut self) -> Option<TraceRecord> {
        let r = self.records.get(self.cursor).copied();
        if r.is_some() {
            self.cursor += 1;
        }
        r
    }

    /// Total number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no records (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean key rate implied by the trace.
    #[must_use]
    pub fn key_rate(&self) -> f64 {
        let keys: u64 = self.records.iter().map(|r| r.batch).sum();
        let span = self.records.last().map_or(0.0, |r| r.time);
        if span <= 0.0 {
            0.0
        } else {
            keys as f64 / span
        }
    }
}

/// A deterministic inter-arrival law derived from a trace's empirical
/// gaps — lets the analytical model consume recorded traffic.
#[derive(Debug, Clone)]
pub struct EmpiricalGaps {
    sorted_gaps: Vec<f64>,
    mean: f64,
}

impl EmpiricalGaps {
    /// Builds the empirical gap distribution of a (single-server) trace.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when fewer than two records exist.
    pub fn from_trace(records: &[TraceRecord]) -> Result<Self, ParamError> {
        if records.len() < 2 {
            return Err(ParamError::new("need at least two records for gaps"));
        }
        let mut times: Vec<f64> = records.iter().map(|r| r.time).collect();
        times.sort_by(f64::total_cmp);
        let mut gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_by(f64::total_cmp);
        let mean = memlat_numerics::kahan::compensated_sum(&gaps) / gaps.len() as f64;
        Ok(Self {
            sorted_gaps: gaps,
            mean,
        })
    }
}

impl Continuous for EmpiricalGaps {
    fn cdf(&self, t: f64) -> f64 {
        let idx = self.sorted_gaps.partition_point(|&g| g <= t);
        idx as f64 / self.sorted_gaps.len() as f64
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        let m = self.mean;
        self.sorted_gaps
            .iter()
            .map(|g| (g - m) * (g - m))
            .sum::<f64>()
            / self.sorted_gaps.len() as f64
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let idx = (rng.next_u64() % self.sorted_gaps.len() as u64) as usize;
        self.sorted_gaps[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facebook;
    use rand::SeedableRng;

    fn sample_trace() -> Vec<TraceRecord> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut stream = facebook::batch_arrivals().unwrap();
        record(&mut stream, 0, 0.05, &mut rng)
    }

    #[test]
    fn record_produces_monotone_times() {
        let t = sample_trace();
        assert!(t.len() > 100);
        assert!(t.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(t.iter().all(|r| r.batch >= 1));
    }

    #[test]
    fn save_load_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        save(&t, &mut buf).unwrap();
        let back = load(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn replay_preserves_order_and_rate() {
        let t = sample_trace();
        let mut replay = TraceReplay::new(t.clone()).unwrap();
        assert_eq!(replay.len(), t.len());
        let rate = replay.key_rate();
        assert!((rate / facebook::KEY_RATE - 1.0).abs() < 0.2, "rate={rate}");
        let mut n = 0;
        let mut prev = 0.0;
        while let Some(r) = replay.next_batch() {
            assert!(r.time >= prev);
            prev = r.time;
            n += 1;
        }
        assert_eq!(n, t.len());
        assert!(TraceReplay::new(Vec::new()).is_err());
    }

    #[test]
    fn empirical_gaps_feed_the_model() {
        let t = sample_trace();
        let gaps = EmpiricalGaps::from_trace(&t).unwrap();
        // Mean gap ≈ 1/((1−q)λ).
        let expect = 1.0 / (0.9 * facebook::KEY_RATE);
        assert!((gaps.mean() / expect - 1.0).abs() < 0.1);
        // The δ solver accepts it (stable at μ_S = 80 Kps).
        let delta = memlat_queue::solve_delta(&gaps, 0.9 * facebook::SERVICE_RATE);
        assert!(delta.is_ok());
        let d = delta.unwrap();
        assert!(d > 0.5 && d < 0.95, "d={d}");
    }
}
