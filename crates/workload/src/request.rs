//! End-user request generation.

use memlat_dist::{Continuous, ParamError};
use rand::RngCore;

/// Generates end-user requests: each request arrives after a sampled gap
/// and fans out into `N` memcached keys.
///
/// Used by the simulator's end-to-end mode, where requests — not
/// per-server key streams — are the primary arrival process, and the
/// per-server traffic *emerges* from placement.
///
/// # Examples
///
/// ```
/// use memlat_dist::Exponential;
/// use memlat_workload::RequestGenerator;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let gaps = Exponential::new(500.0)?; // 500 requests/s
/// let mut g = RequestGenerator::new(Box::new(gaps), 150)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let r = g.next_request(&mut rng);
/// assert_eq!(r.request.keys, 150);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RequestGenerator {
    gaps: Box<dyn Continuous>,
    keys_per_request: u64,
    clock: f64,
    next_id: u64,
}

/// One generated end-user request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Sequential request id.
    pub id: u64,
    /// Number of memcached keys the request fans out into (`N`).
    pub keys: u64,
}

/// A request paired with its arrival time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRequest {
    /// The request.
    pub request: Request,
    /// Arrival time (seconds).
    pub at: f64,
}

impl RequestGenerator {
    /// Creates a generator with the given inter-request gap law and a
    /// fixed fan-out.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `keys_per_request == 0`.
    pub fn new(gaps: Box<dyn Continuous>, keys_per_request: u64) -> Result<Self, ParamError> {
        if keys_per_request == 0 {
            return Err(ParamError::new(
                "requests must fan out into at least one key",
            ));
        }
        Ok(Self {
            gaps,
            keys_per_request,
            clock: 0.0,
            next_id: 0,
        })
    }

    /// Request arrival rate (1/mean gap).
    #[must_use]
    pub fn request_rate(&self) -> f64 {
        1.0 / self.gaps.mean()
    }

    /// Implied aggregate key rate: `request_rate · N`.
    #[must_use]
    pub fn key_rate(&self) -> f64 {
        self.request_rate() * self.keys_per_request as f64
    }

    /// Generates the next request.
    pub fn next_request(&mut self, rng: &mut dyn RngCore) -> TimedRequest {
        self.clock += self.gaps.sample(rng);
        let id = self.next_id;
        self.next_id += 1;
        TimedRequest {
            request: Request {
                id,
                keys: self.keys_per_request,
            },
            at: self.clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::Exponential;
    use rand::SeedableRng;

    #[test]
    fn ids_are_sequential_and_times_monotone() {
        let mut g = RequestGenerator::new(Box::new(Exponential::new(100.0).unwrap()), 10).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut prev_t = 0.0;
        for expect_id in 0..100 {
            let r = g.next_request(&mut rng);
            assert_eq!(r.request.id, expect_id);
            assert_eq!(r.request.keys, 10);
            assert!(r.at > prev_t);
            prev_t = r.at;
        }
    }

    #[test]
    fn rates_are_consistent() {
        let g = RequestGenerator::new(Box::new(Exponential::new(500.0).unwrap()), 150).unwrap();
        assert!((g.request_rate() - 500.0).abs() < 1e-9);
        assert!((g.key_rate() - 75_000.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_zero_fanout() {
        assert!(RequestGenerator::new(Box::new(Exponential::new(1.0).unwrap()), 0).is_err());
    }
}
