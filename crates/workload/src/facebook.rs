//! The Facebook workload preset (paper §5.1, after Atikoglu et al.).
//!
//! All constants the paper's basic validation uses, in one place:
//!
//! | quantity | value | source |
//! |---|---|---|
//! | concurrency probability `q` | 0.1 | §5.1 (measured 0.1159) |
//! | burst degree `ξ` | 0.15 | §5.1 / eq. 24 |
//! | per-server key rate `λ` | 62.5 Kps | §5.1 |
//! | memcached service rate `μ_S` | 80 Kps | §5.1 (measured) |
//! | cache miss ratio `r` | 0.01 | §5.1 |
//! | database service time `1/μ_D` | 1 ms | §5.1 |
//! | network latency | 20 µs | Table 3 (prose says ~50 µs; see EXPERIMENTS.md) |
//! | keys per request `N` | 150 | §5.1 |
//! | servers `M` | 4 | §5.1 |

use memlat_dist::{GeneralizedPareto, LogNormal, ParamError};

use crate::arrival::BatchArrivals;

/// Concurrency probability `q` used in the paper's experiments.
pub const CONCURRENCY_Q: f64 = 0.1;

/// Burst degree `ξ` of the Generalized Pareto inter-arrival law.
pub const BURST_XI: f64 = 0.15;

/// Per-server key arrival rate `λ` (keys/s).
pub const KEY_RATE: f64 = 62_500.0;

/// Memcached per-key service rate `μ_S` (keys/s).
pub const SERVICE_RATE: f64 = 80_000.0;

/// Cache miss ratio `r`.
pub const MISS_RATIO: f64 = 0.01;

/// Database service rate `μ_D` (keys/s; 1/μ_D = 1 ms).
pub const DB_SERVICE_RATE: f64 = 1_000.0;

/// Constant network latency (seconds), per Table 3.
pub const NETWORK_LATENCY: f64 = 20e-6;

/// Keys per end-user request `N`.
pub const KEYS_PER_REQUEST: u64 = 150;

/// Number of memcached servers `M` in the testbed.
pub const SERVERS: usize = 4;

/// The batch inter-arrival law for one server at the preset rates:
/// Generalized Pareto with `ξ = 0.15` and batch rate `(1−q)·λ`, so the
/// per-key rate is exactly `λ`.
///
/// # Errors
///
/// Never fails for the preset constants.
pub fn interarrival() -> Result<GeneralizedPareto, ParamError> {
    GeneralizedPareto::facebook(BURST_XI, (1.0 - CONCURRENCY_Q) * KEY_RATE)
}

/// A ready-to-run per-server batch arrival stream at the preset rates.
///
/// # Errors
///
/// Never fails for the preset constants.
pub fn batch_arrivals() -> Result<BatchArrivals, ParamError> {
    BatchArrivals::new(Box::new(interarrival()?), CONCURRENCY_Q)
}

/// Key-size law (bytes): Atikoglu et al. report a strongly peaked
/// distribution with mean ≈ 31 B (ETC pool); modeled log-normally.
///
/// # Errors
///
/// Never fails for the preset constants.
pub fn key_size_bytes() -> Result<LogNormal, ParamError> {
    LogNormal::with_mean_scv(31.0, 0.5)
}

/// Value-size law (bytes): heavy-tailed with median ≈ 135 B (ETC pool);
/// modeled as a Generalized Pareto with mean 329 B (ξ = 0.35).
///
/// # Errors
///
/// Never fails for the preset constants.
pub fn value_size_bytes() -> Result<GeneralizedPareto, ParamError> {
    GeneralizedPareto::with_mean(0.35, 329.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::Continuous;

    #[test]
    fn preset_rates_consistent() {
        let s = batch_arrivals().unwrap();
        assert!((s.key_rate() - KEY_RATE).abs() < 1e-6);
        assert!((s.concurrency() - CONCURRENCY_Q).abs() < 1e-12);
        // Utilization of the paper's testbed: 78%.
        assert!((KEY_RATE / SERVICE_RATE - 0.781_25).abs() < 1e-9);
    }

    #[test]
    fn interarrival_matches_eq_24() {
        let d = interarrival().unwrap();
        assert_eq!(d.shape(), BURST_XI);
        // Mean batch gap = 1/((1−q)λ).
        assert!((d.mean() - 1.0 / (0.9 * KEY_RATE)).abs() < 1e-15);
    }

    #[test]
    fn size_laws_have_sane_means() {
        assert!((key_size_bytes().unwrap().mean() - 31.0).abs() < 1e-6);
        assert!((value_size_bytes().unwrap().mean() - 329.0).abs() < 1e-6);
    }
}
