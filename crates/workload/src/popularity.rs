//! Key popularity — the skew behind the unbalanced load distribution.

use std::sync::atomic::{AtomicU64, Ordering};

use memlat_dist::{Discrete, ParamError, Zipf};
use rand::RngCore;

use crate::KeyId;

/// Process-wide count of alias-table constructions, for asserting that
/// sweep/simulation layers reuse cached tables instead of rebuilding a
/// multi-megabyte table per sweep point (see [`alias_builds`]).
static ALIAS_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of alias tables built by this process so far.
///
/// Monotone counter; take a snapshot before the code under test and diff
/// after. Tests asserting exact counts should run in their own process
/// (their own integration-test binary) to avoid cross-test interference.
#[must_use]
pub fn alias_builds() -> u64 {
    ALIAS_BUILDS.load(Ordering::Relaxed)
}

/// Key spaces up to this size get a precomputed alias table (one
/// uniform, two array reads per draw); larger ones sample by
/// rejection-inversion (`O(1)` per draw too, but several transcendental
/// calls and an expected >1 uniforms each). The cutoff bounds the build
/// cost and footprint at ~16 MB of table.
const ALIAS_MAX_KEYS: u64 = 1 << 20;

/// Walker/Vose alias table: draw cell `i` uniformly, then return `i`
/// itself with probability `prob[i]` and its alias otherwise.
#[derive(Debug, Clone)]
struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

/// Vose's `O(n)` table construction over pre-scaled masses (each cell's
/// probability mass times `n`). Cells left on whichever worklist drains
/// last are within rounding of exactly 1; they keep `prob = 1` and
/// `alias = self`.
fn vose(mut scaled: Vec<f64>) -> (Vec<f64>, Vec<u32>) {
    let n = scaled.len();
    let mut prob = vec![1.0f64; n];
    let mut alias: Vec<u32> = (0..n as u32).collect();
    let mut small: Vec<usize> = Vec::new();
    let mut large: Vec<usize> = Vec::new();
    for (i, &s) in scaled.iter().enumerate() {
        if s < 1.0 {
            small.push(i);
        } else {
            large.push(i);
        }
    }
    while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
        prob[s] = scaled[s];
        alias[s] = l as u32;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if scaled[l] < 1.0 {
            small.push(l);
        } else {
            large.push(l);
        }
    }
    (prob, alias)
}

impl AliasTable {
    /// Builds the table from the Zipf pmf in `O(n)` (Vose's method).
    fn build(zipf: &Zipf) -> Self {
        ALIAS_BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = usize::try_from(zipf.n()).expect("alias key space fits usize");
        let scaled: Vec<f64> = (1..=zipf.n()).map(|k| zipf.pmf(k) * n as f64).collect();
        let (prob, alias) = vose(scaled);
        Self { prob, alias }
    }

    /// Draws a 0-based key id from one uniform.
    #[inline]
    fn sample(&self, rng: &mut dyn RngCore) -> KeyId {
        let n = self.prob.len();
        let x = memlat_dist::open_unit(rng) * n as f64;
        let i = (x as usize).min(n - 1);
        let v = x - i as f64;
        if v < self.prob[i] {
            i as KeyId
        } else {
            KeyId::from(self.alias[i])
        }
    }
}

/// Walker/Vose alias sampler over an explicit non-negative weight
/// vector: one uniform and two array reads per draw, regardless of the
/// weight shape.
///
/// This is the general-purpose sibling of the private Zipf alias table:
/// it powers conditional key populations (e.g. the keys a single server
/// owns under consistent-hash routing, see
/// [`crate::routing::RoutedKeyspace`]) where the weights are an
/// arbitrary subset of a pmf rather than a full Zipf law. Construction
/// does not touch the [`alias_builds`] counter — that counter audits the
/// multi-megabyte full-keyspace tables only.
///
/// # Examples
///
/// ```
/// use memlat_workload::WeightedAlias;
/// use rand::SeedableRng;
///
/// let table = WeightedAlias::new(&[3.0, 1.0]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let i = table.sample(&mut rng);
/// assert!(i < 2);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedAlias {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl WeightedAlias {
    /// Builds the table from raw weights in `O(n)`; weights need not be
    /// normalized.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `weights` is empty, holds a negative or
    /// non-finite entry, sums to zero, or exceeds `u32::MAX` entries.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("alias weights must be non-empty"));
        }
        if weights.len() > u32::MAX as usize {
            return Err(ParamError::new("alias table limited to u32::MAX cells"));
        }
        let mut total = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(ParamError::new("alias weights must be finite and >= 0"));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ParamError::new("alias weights must have positive mass"));
        }
        let n = weights.len();
        let scaled: Vec<f64> = weights.iter().map(|&w| w / total * n as f64).collect();
        let (prob, alias) = vose(scaled);
        Ok(Self { prob, alias })
    }

    /// Number of cells (= number of weights).
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has no cells (never true for a built table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a 0-based cell index from one uniform.
    #[must_use]
    pub fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let n = self.prob.len();
        let x = memlat_dist::open_unit(rng) * n as f64;
        let i = (x as usize).min(n - 1);
        let v = x - i as f64;
        if v < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// A Zipf-popular key population: rank 1 is the hottest key.
///
/// The paper's §2.1 observation — "a small percentage of values are
/// accessed quite frequently, while the rest numerous ones are accessed
/// only a handful of times" — is what this type generates. Feeding it
/// through a [`crate::Placement`] yields an emergent unbalanced `{p_j}`,
/// the simulator's alternative to imposing shares directly.
///
/// Key spaces up to 2²⁰ keys sample through a precomputed Walker alias
/// table — one uniform and two array reads per draw; larger spaces
/// (e.g. [`ZipfPopularity::facebook_etc`]) fall back to table-free
/// rejection-inversion. The two samplers realize the same pmf but
/// consume the RNG stream differently, so which one is active is a
/// function of the key space alone, never of the call site.
///
/// # Examples
///
/// ```
/// use memlat_workload::ZipfPopularity;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let pop = ZipfPopularity::new(1_000_000, 1.01)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let key = pop.sample_key(&mut rng);
/// assert!(key < 1_000_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ZipfPopularity {
    zipf: Zipf,
    alias: Option<AliasTable>,
}

impl ZipfPopularity {
    /// Creates a population of `keys` keys with Zipf exponent `skew`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for an empty key space or negative skew.
    pub fn new(keys: u64, skew: f64) -> Result<Self, ParamError> {
        let zipf = Zipf::new(keys, skew)?;
        let alias = (keys <= ALIAS_MAX_KEYS).then(|| AliasTable::build(&zipf));
        Ok(Self { zipf, alias })
    }

    /// Facebook-like preset: the ETC pool's popularity is roughly Zipf
    /// with exponent ≈ 1 over a very large key space (Atikoglu et al.).
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants (kept as `Result` for API
    /// uniformity).
    pub fn facebook_etc() -> Result<Self, ParamError> {
        Self::new(50_000_000, 1.01)
    }

    /// Key-space size.
    #[must_use]
    pub fn keys(&self) -> u64 {
        self.zipf.n()
    }

    /// The Zipf exponent.
    #[must_use]
    pub fn skew(&self) -> f64 {
        self.zipf.exponent()
    }

    /// Whether draws go through the `O(1)`-uniform alias table (small
    /// key spaces) or rejection-inversion (large ones).
    #[must_use]
    pub fn uses_alias_table(&self) -> bool {
        self.alias.is_some()
    }

    /// Samples a key; hot keys (low ids) are sampled more often.
    ///
    /// Returned ids are 0-based (`rank − 1`).
    #[must_use]
    pub fn sample_key(&self, rng: &mut dyn RngCore) -> KeyId {
        match &self.alias {
            Some(table) => table.sample(rng),
            None => self.zipf.sample(rng) - 1,
        }
    }

    /// Bulk alias sampling: appends one key id per raw `next_u64` draw in
    /// `bits` onto `out`, bit-identical to calling [`Self::sample_key`] at
    /// each original draw site. Runs through the SIMD-dispatched gather
    /// kernel on AVX2 hosts.
    ///
    /// Only the alias path can be bulk-driven (rejection-inversion consumes
    /// a data-dependent number of uniforms per key).
    ///
    /// # Panics
    ///
    /// Panics if this population does not use the alias table
    /// ([`Self::uses_alias_table`] is `false`).
    pub fn sample_keys_from_bits(&self, bits: &[u64], out: &mut Vec<KeyId>) {
        let table = self
            .alias
            .as_ref()
            .expect("bulk sampling requires the alias-table path");
        memlat_dist::simd::alias_from_bits(&table.prob, &table.alias, bits, out);
    }

    /// Probability that a single access hits the given key id.
    #[must_use]
    pub fn access_probability(&self, key: KeyId) -> f64 {
        self.zipf.pmf(key + 1)
    }

    /// Fraction of accesses landing on the hottest `n` keys.
    #[must_use]
    pub fn head_mass(&self, n: u64) -> f64 {
        self.zipf.cdf(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hot_keys_dominate() {
        let pop = ZipfPopularity::new(10_000, 1.0).unwrap();
        assert!(pop.access_probability(0) > pop.access_probability(1));
        // With exponent 1, the top 100 of 10k keys draw roughly half the
        // traffic.
        let head = pop.head_mass(100);
        assert!(head > 0.4 && head < 0.6, "head={head}");
    }

    #[test]
    fn sample_respects_bounds_and_skew() {
        let pop = ZipfPopularity::new(1000, 1.2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut hot = 0;
        let n = 50_000;
        for _ in 0..n {
            let k = pop.sample_key(&mut rng);
            assert!(k < 1000);
            if k < 10 {
                hot += 1;
            }
        }
        let frac = f64::from(hot) / f64::from(n);
        let expect = pop.head_mass(10);
        assert!((frac - expect).abs() < 0.02, "frac={frac} expect={expect}");
    }

    #[test]
    fn facebook_preset_is_large_and_skewed() {
        let pop = ZipfPopularity::facebook_etc().unwrap();
        assert!(pop.keys() >= 10_000_000);
        assert!(pop.skew() > 1.0);
        // Too large for a table: stays on rejection-inversion.
        assert!(!pop.uses_alias_table());
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        assert!(pop.sample_key(&mut rng) < pop.keys());
    }

    #[test]
    fn alias_table_reconstructs_the_pmf_exactly() {
        // The table is a redistribution of the pmf: summing each cell's
        // kept and aliased mass must give the pmf back to rounding.
        let pop = ZipfPopularity::new(10_000, 1.01).unwrap();
        assert!(pop.uses_alias_table());
        let table = pop.alias.as_ref().unwrap();
        let n = table.prob.len();
        let mut implied = vec![0.0f64; n];
        for i in 0..n {
            implied[i] += table.prob[i] / n as f64;
            implied[table.alias[i] as usize] += (1.0 - table.prob[i]) / n as f64;
        }
        for (i, &m) in implied.iter().enumerate() {
            let exact = pop.access_probability(i as u64);
            assert!(
                (m - exact).abs() <= 1e-12 + 1e-9 * exact,
                "key {i}: implied {m} vs pmf {exact}"
            );
        }
    }

    #[test]
    fn alias_sampler_matches_rejection_sampler_statistically() {
        // Same pmf, different draw mechanics: empirical head masses from
        // the alias path must agree with the rejection-inversion path.
        let pop = ZipfPopularity::new(5_000, 1.01).unwrap();
        assert!(pop.uses_alias_table());
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let n = 100_000;
        let mut head_alias = 0u32;
        for _ in 0..n {
            if pop.sample_key(&mut rng) < 50 {
                head_alias += 1;
            }
        }
        let mut head_rej = 0u32;
        for _ in 0..n {
            if pop.zipf.sample_with(&mut rng) - 1 < 50 {
                head_rej += 1;
            }
        }
        let fa = f64::from(head_alias) / f64::from(n);
        let fr = f64::from(head_rej) / f64::from(n);
        let expect = pop.head_mass(50);
        assert!((fa - expect).abs() < 0.01, "alias {fa} vs {expect}");
        assert!((fa - fr).abs() < 0.015, "alias {fa} vs rejection {fr}");
    }

    #[test]
    fn bulk_sampling_is_bit_identical_to_scalar() {
        use rand::RngCore;
        let pop = ZipfPopularity::new(5_000, 0.99).unwrap();
        for n in [0usize, 1, 3, 7, 37, 1024] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xb17 + n as u64);
            let bits: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let mut bulk = Vec::new();
            pop.sample_keys_from_bits(&bits, &mut bulk);
            let mut replay = rand::rngs::StdRng::seed_from_u64(0xb17 + n as u64);
            let scalar: Vec<u64> = (0..n).map(|_| pop.sample_key(&mut replay)).collect();
            assert_eq!(bulk, scalar, "n={n}");
        }
    }

    #[test]
    fn build_counter_increments() {
        let before = alias_builds();
        let _pop = ZipfPopularity::new(1_000, 1.0).unwrap();
        assert!(alias_builds() > before);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(ZipfPopularity::new(0, 1.0).is_err());
        assert!(ZipfPopularity::new(10, -0.5).is_err());
    }

    #[test]
    fn weighted_alias_matches_weights_statistically() {
        let weights = [5.0, 0.0, 1.0, 3.0, 1.0];
        let total: f64 = weights.iter().sum();
        let table = WeightedAlias::new(&weights).unwrap();
        assert_eq!(table.len(), weights.len());
        assert!(!table.is_empty());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
        let n = 200_000usize;
        let mut counts = [0u64; 5];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight cell must never be drawn");
        for (i, &c) in counts.iter().enumerate() {
            let expect = weights[i] / total;
            let got = c as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "cell {i}: got {got} expect {expect}"
            );
        }
    }

    #[test]
    fn weighted_alias_skips_the_build_counter() {
        // The counter audits full-keyspace Zipf tables; subset samplers
        // (one per server per routed config) must not pollute it.
        let before = alias_builds();
        let _t = WeightedAlias::new(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(alias_builds(), before);
    }

    #[test]
    fn weighted_alias_rejects_bad_weights() {
        assert!(WeightedAlias::new(&[]).is_err());
        assert!(WeightedAlias::new(&[0.0, 0.0]).is_err());
        assert!(WeightedAlias::new(&[1.0, -0.5]).is_err());
        assert!(WeightedAlias::new(&[1.0, f64::NAN]).is_err());
        assert!(WeightedAlias::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn alias_sampler_passes_chi_square_across_skews() {
        // Sharp distributional conformance: the alias path's draws
        // against the exact normalized PMF, over a small skew grid
        // spanning sub-Zipf, the paper's 0.99, and super-Zipf.
        for &skew in &[0.7, 0.99, 1.2] {
            let keys = 2_000u64;
            let pop = ZipfPopularity::new(keys, skew).unwrap();
            assert!(pop.uses_alias_table());
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xa11a5 ^ skew.to_bits());
            let n = 30_000usize;
            // Head ranks individually, tail pooled, so every expected
            // count stays well above the chi-square small-cell floor.
            let head = 30usize;
            let mut observed = vec![0u64; head + 1];
            for _ in 0..n {
                let k = pop.sample_key(&mut rng) as usize;
                observed[k.min(head)] += 1;
            }
            let mut expected: Vec<f64> = (0..head as u64)
                .map(|k| n as f64 * pop.access_probability(k))
                .collect();
            let tail: f64 = (head as u64..keys).map(|k| pop.access_probability(k)).sum();
            expected.push(n as f64 * tail);
            let test = memlat_stats::gof::chi_square(&observed, &expected, 0);
            assert!(
                test.passes(0.01),
                "skew {skew}: χ² = {:.2}, p = {:.5}",
                test.statistic,
                test.p_value
            );
        }
    }
}
