//! Key popularity — the skew behind the unbalanced load distribution.

use memlat_dist::{Discrete, ParamError, Zipf};
use rand::RngCore;

use crate::KeyId;

/// A Zipf-popular key population: rank 1 is the hottest key.
///
/// The paper's §2.1 observation — "a small percentage of values are
/// accessed quite frequently, while the rest numerous ones are accessed
/// only a handful of times" — is what this type generates. Feeding it
/// through a [`crate::Placement`] yields an emergent unbalanced `{p_j}`,
/// the simulator's alternative to imposing shares directly.
///
/// # Examples
///
/// ```
/// use memlat_workload::ZipfPopularity;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let pop = ZipfPopularity::new(1_000_000, 1.01)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let key = pop.sample_key(&mut rng);
/// assert!(key < 1_000_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ZipfPopularity {
    zipf: Zipf,
}

impl ZipfPopularity {
    /// Creates a population of `keys` keys with Zipf exponent `skew`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for an empty key space or negative skew.
    pub fn new(keys: u64, skew: f64) -> Result<Self, ParamError> {
        Ok(Self {
            zipf: Zipf::new(keys, skew)?,
        })
    }

    /// Facebook-like preset: the ETC pool's popularity is roughly Zipf
    /// with exponent ≈ 1 over a very large key space (Atikoglu et al.).
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants (kept as `Result` for API
    /// uniformity).
    pub fn facebook_etc() -> Result<Self, ParamError> {
        Self::new(50_000_000, 1.01)
    }

    /// Key-space size.
    #[must_use]
    pub fn keys(&self) -> u64 {
        self.zipf.n()
    }

    /// The Zipf exponent.
    #[must_use]
    pub fn skew(&self) -> f64 {
        self.zipf.exponent()
    }

    /// Samples a key; hot keys (low ids) are sampled more often.
    ///
    /// Returned ids are 0-based (`rank − 1`).
    #[must_use]
    pub fn sample_key(&self, rng: &mut dyn RngCore) -> KeyId {
        self.zipf.sample(rng) - 1
    }

    /// Probability that a single access hits the given key id.
    #[must_use]
    pub fn access_probability(&self, key: KeyId) -> f64 {
        self.zipf.pmf(key + 1)
    }

    /// Fraction of accesses landing on the hottest `n` keys.
    #[must_use]
    pub fn head_mass(&self, n: u64) -> f64 {
        self.zipf.cdf(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hot_keys_dominate() {
        let pop = ZipfPopularity::new(10_000, 1.0).unwrap();
        assert!(pop.access_probability(0) > pop.access_probability(1));
        // With exponent 1, the top 100 of 10k keys draw roughly half the
        // traffic.
        let head = pop.head_mass(100);
        assert!(head > 0.4 && head < 0.6, "head={head}");
    }

    #[test]
    fn sample_respects_bounds_and_skew() {
        let pop = ZipfPopularity::new(1000, 1.2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut hot = 0;
        let n = 50_000;
        for _ in 0..n {
            let k = pop.sample_key(&mut rng);
            assert!(k < 1000);
            if k < 10 {
                hot += 1;
            }
        }
        let frac = f64::from(hot) / f64::from(n);
        let expect = pop.head_mass(10);
        assert!((frac - expect).abs() < 0.02, "frac={frac} expect={expect}");
    }

    #[test]
    fn facebook_preset_is_large_and_skewed() {
        let pop = ZipfPopularity::facebook_etc().unwrap();
        assert!(pop.keys() >= 10_000_000);
        assert!(pop.skew() > 1.0);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(ZipfPopularity::new(0, 1.0).is_err());
        assert!(ZipfPopularity::new(10, -0.5).is_err());
    }
}
