//! Retry re-injection: client attempts that re-enter the arrival stream.
//!
//! When a client times out on a key (or a crashed server refuses it),
//! the retried attempt is new *traffic*: it must merge back into the
//! server's time-ordered arrival stream. [`RetryQueue`] is that merge
//! buffer — a min-heap ordered by re-injection time with FIFO
//! tie-breaking, so the replay order (and therefore the whole
//! simulation) is deterministic for a fixed seed regardless of how the
//! attempts interleave.
//!
//! [`exponential_backoff`] is the standard bounded-retry delay law:
//! `base · multiplier^(attempt−1) · (1 + jitter·U)` with `U ~ U[0, 1)`.
//! The jitter factor is only drawn when `jitter > 0`, so a jitter-free
//! policy consumes no randomness.

use rand::RngCore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The exponential-backoff delay before re-issuing attempt
/// `attempt + 1` after `attempt` failures (1-based: pass `1` after the
/// first failure).
///
/// # Panics
///
/// Panics if `base ≤ 0`, `multiplier < 1`, `jitter < 0`, or
/// `attempt == 0`.
#[must_use]
pub fn exponential_backoff(
    base: f64,
    multiplier: f64,
    jitter: f64,
    attempt: u32,
    rng: &mut dyn RngCore,
) -> f64 {
    assert!(base > 0.0, "backoff base must be positive");
    assert!(multiplier >= 1.0, "backoff multiplier must be >= 1");
    assert!(jitter >= 0.0, "backoff jitter must be non-negative");
    assert!(attempt >= 1, "attempt is 1-based");
    let raw = base * multiplier.powi(attempt as i32 - 1);
    if jitter > 0.0 {
        // U[0,1) from the top 53 bits, the conventional construction.
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        raw * (1.0 + jitter * u)
    } else {
        raw
    }
}

struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first;
        // ties break FIFO by insertion sequence.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered queue of pending retry attempts.
///
/// # Examples
///
/// ```
/// use memlat_workload::retry::RetryQueue;
///
/// let mut q = RetryQueue::new();
/// q.push(2.0, "late");
/// q.push(1.0, "early");
/// q.push(1.0, "early-too"); // same time: FIFO
/// assert_eq!(q.pop_before(1.5), Some((1.0, "early")));
/// assert_eq!(q.pop_before(1.5), Some((1.0, "early-too")));
/// assert_eq!(q.pop_before(1.5), None); // "late" not due yet
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// ```
#[derive(Default)]
pub struct RetryQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> RetryQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` for re-injection at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(time.is_finite(), "retry time must be finite");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the earliest pending attempt if it is due strictly before
    /// `deadline` (or exactly at it: retries at a batch's arrival time
    /// are replayed ahead of the batch, a fixed deterministic rule).
    pub fn pop_before(&mut self, deadline: f64) -> Option<(f64, T)> {
        if self.heap.peek().is_some_and(|e| e.time <= deadline) {
            self.pop()
        } else {
            None
        }
    }

    /// Pops the earliest pending attempt unconditionally.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Earliest pending re-injection time, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending attempts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no attempts are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = RetryQueue::new();
        q.push(3.0, 'c');
        q.push(1.0, 'a');
        q.push(3.0, 'd');
        q.push(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, ['a', 'b', 'c', 'd']);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_respects_deadline_inclusively() {
        let mut q = RetryQueue::new();
        q.push(1.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop_before(1.0), Some((1.0, 1)));
        assert_eq!(q.pop_before(1.999), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn backoff_grows_exponentially_without_jitter() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let d1 = exponential_backoff(1e-3, 2.0, 0.0, 1, &mut rng);
        let d2 = exponential_backoff(1e-3, 2.0, 0.0, 2, &mut rng);
        let d3 = exponential_backoff(1e-3, 2.0, 0.0, 3, &mut rng);
        assert_eq!((d1, d2, d3), (1e-3, 2e-3, 4e-3));
    }

    #[test]
    fn jitter_bounds_and_determinism() {
        let mut a = rand::rngs::StdRng::seed_from_u64(2);
        let mut b = rand::rngs::StdRng::seed_from_u64(2);
        for attempt in 1..=5 {
            let x = exponential_backoff(1e-3, 2.0, 0.5, attempt, &mut a);
            let y = exponential_backoff(1e-3, 2.0, 0.5, attempt, &mut b);
            assert_eq!(x, y);
            let raw = 1e-3 * 2f64.powi(attempt as i32 - 1);
            assert!(x >= raw && x < raw * 1.5);
        }
    }

    #[test]
    #[should_panic(expected = "attempt is 1-based")]
    fn backoff_rejects_zero_attempt() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let _ = exponential_backoff(1e-3, 2.0, 0.0, 0, &mut rng);
    }
}
