//! Workload substrate: the traffic the memlat simulator drives through
//! the memcached system.
//!
//! Implements the statistical workload model the paper takes from
//! Facebook's measurements (Atikoglu et al., SIGMETRICS 2012) and uses
//! via `mutilate`:
//!
//! * [`arrival`] — batch arrival processes: heavy-tailed Generalized
//!   Pareto inter-batch gaps with geometric batch sizes (the paper's
//!   `GI^X` traffic), plus Poisson/deterministic/trace variants.
//! * [`popularity`] — Zipf key popularity, the root cause of the paper's
//!   unbalanced load distribution `{p_j}`.
//! * [`placement`] — key-to-server mappings: static probabilities,
//!   hash-mod, and a consistent-hash ring with virtual nodes.
//! * [`routing`] — the Zipf stream conditioned on ring ownership: exact
//!   per-server shares `{p_j}` and conditional key samplers.
//! * [`request`] — end-user request generation (`N` keys per request).
//! * [`facebook`] — the §5.1 preset constants (`q = 0.1`, `ξ = 0.15`,
//!   `λ = 62.5 Kps`, `μ_S = 80 Kps`, …) and key/value size laws.
//! * [`retry`] — client retry re-injection: a deterministic time-ordered
//!   queue of re-issued attempts plus the exponential-backoff delay law.
//! * [`trace`] — serializable traces for record/replay.
//!
//! # Examples
//!
//! ```
//! use memlat_workload::arrival::BatchArrivals;
//! use memlat_workload::facebook;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut arrivals = facebook::batch_arrivals().unwrap();
//! let (t, batch) = arrivals.next_batch(&mut rng);
//! assert!(t > 0.0 && batch >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod facebook;
pub mod placement;
pub mod popularity;
pub mod request;
pub mod retry;
pub mod routing;
pub mod trace;

pub use arrival::{ArrivalScratch, BatchArrivals};
pub use placement::{ConsistentHashRing, HashMod, Placement, StaticProbability};
pub use popularity::{alias_builds, WeightedAlias, ZipfPopularity};
pub use request::RequestGenerator;
pub use retry::RetryQueue;
pub use routing::RoutedKeyspace;

/// A key identifier in the simulated key space.
pub type KeyId = u64;
