//! Consistent-hash key routing: the global Zipf stream conditioned on
//! server ownership.
//!
//! A memcached client hashes every key onto the ring once; each server
//! then sees the global arrival stream *thinned* to the keys it owns.
//! [`RoutedKeyspace`] precomputes that decomposition: the exact load
//! share `p_j = Σ_{k owned by j} P(k)` of every server, and a
//! per-server conditional sampler that draws owned keys with
//! probability `P(k) / p_j`.
//!
//! Sampling a server by `{p_j}` and then a key from its conditional
//! sampler is distributionally identical to sampling a global Zipf key
//! and routing it — but it keeps the simulator's per-server RNG streams
//! independent, which is what preserves 1-vs-N-thread bit-identity.
//! (Poisson thinning further guarantees each server's arrival process
//! stays the same renewal family at rate `p_j · Λ`.)
//!
//! # Examples
//!
//! ```
//! use memlat_workload::{RoutedKeyspace, ZipfPopularity};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), memlat_dist::ParamError> {
//! let pop = ZipfPopularity::new(100_000, 1.01)?;
//! let routed = RoutedKeyspace::new(&pop, 4, 128)?;
//! assert_eq!(routed.shares().len(), 4);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let key = routed.sample_key(0, &mut rng);
//! assert_eq!(routed.server_of(key), 0);
//! # Ok(())
//! # }
//! ```

use memlat_dist::ParamError;
use rand::RngCore;

use crate::placement::{ConsistentHashRing, Placement};
use crate::popularity::{WeightedAlias, ZipfPopularity};
use crate::KeyId;

/// The global Zipf key space split across servers by a consistent-hash
/// ring: exact per-server load shares plus per-server conditional key
/// samplers.
///
/// Construction walks the key space once (`O(keys)` ring lookups) and
/// builds one [`WeightedAlias`] per server over its owned keys, so it is
/// meant to be built once per configuration and shared (e.g. behind an
/// `Arc`) across workers.
#[derive(Debug)]
pub struct RoutedKeyspace {
    ring: ConsistentHashRing,
    keys: u64,
    skew: f64,
    vnodes: usize,
    shares: Vec<f64>,
    /// Per server: owned key ids, ascending; alias cells index into this.
    owned: Vec<Vec<KeyId>>,
    /// Per server: conditional sampler over `owned` (None iff no keys).
    samplers: Vec<Option<WeightedAlias>>,
}

impl RoutedKeyspace {
    /// Splits `popularity`'s key space over `servers` ring members with
    /// `vnodes` virtual nodes each.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `servers` or `vnodes` is zero, or the
    /// key space is too large to walk (bounded at 2²⁴ keys — the walk is
    /// `O(keys · log(servers · vnodes))` and the owned-key tables are
    /// ~24 bytes per key).
    pub fn new(
        popularity: &ZipfPopularity,
        servers: usize,
        vnodes: usize,
    ) -> Result<Self, ParamError> {
        if servers == 0 {
            return Err(ParamError::new("routing needs at least one server"));
        }
        if vnodes == 0 {
            return Err(ParamError::new("routing needs at least one virtual node"));
        }
        const MAX_ROUTED_KEYS: u64 = 1 << 24;
        let keys = popularity.keys();
        if keys > MAX_ROUTED_KEYS {
            return Err(ParamError::new(format!(
                "routed key space {keys} exceeds the enumeration bound {MAX_ROUTED_KEYS}"
            )));
        }
        let ring = ConsistentHashRing::new(servers, vnodes);
        let mut owned: Vec<Vec<KeyId>> = vec![Vec::new(); servers];
        let mut weights: Vec<Vec<f64>> = vec![Vec::new(); servers];
        let mut mass = vec![0.0f64; servers];
        for k in 0..keys {
            let j = ring.server_of(k);
            let w = popularity.access_probability(k);
            owned[j].push(k);
            weights[j].push(w);
            mass[j] += w;
        }
        // Normalize by the realized total so shares sum to exactly 1
        // even where the pmf's own normalization carries rounding.
        let total: f64 = mass.iter().sum();
        let shares: Vec<f64> = mass.iter().map(|&m| m / total).collect();
        let samplers: Vec<Option<WeightedAlias>> = weights
            .iter()
            .map(|w| {
                if w.is_empty() {
                    Ok(None)
                } else {
                    WeightedAlias::new(w).map(Some)
                }
            })
            .collect::<Result<_, ParamError>>()?;
        Ok(Self {
            ring,
            keys,
            skew: popularity.skew(),
            vnodes,
            shares,
            owned,
            samplers,
        })
    }

    /// Number of servers on the ring.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.shares.len()
    }

    /// Virtual nodes per server.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Size of the global key space.
    #[must_use]
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// Zipf exponent of the underlying popularity law.
    #[must_use]
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Exact load shares `{p_j}` induced by the ring on the popularity
    /// law; sums to 1.
    #[must_use]
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// The server a key routes to.
    #[must_use]
    pub fn server_of(&self, key: KeyId) -> usize {
        self.ring.server_of(key)
    }

    /// The keys a server owns, in ascending id order.
    #[must_use]
    pub fn owned_keys(&self, server: usize) -> &[KeyId] {
        &self.owned[server]
    }

    /// Draws a key from the server's conditional popularity law
    /// (`P(k) / p_j` over its owned keys), consuming exactly one
    /// `next_u64` from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the server owns no keys (its share is zero, so a
    /// correctly thinned stream never asks it for one).
    #[must_use]
    pub fn sample_key(&self, server: usize, rng: &mut dyn RngCore) -> KeyId {
        let sampler = self.samplers[server]
            .as_ref()
            .expect("zero-share server received a key draw");
        self.owned[server][sampler.sample(rng)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shares_sum_to_one_and_cover_all_keys() {
        let pop = ZipfPopularity::new(50_000, 1.2).unwrap();
        let routed = RoutedKeyspace::new(&pop, 5, 64).unwrap();
        let sum: f64 = routed.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum={sum}");
        let total_owned: usize = (0..5).map(|j| routed.owned_keys(j).len()).sum();
        assert_eq!(total_owned as u64, routed.keys());
    }

    #[test]
    fn sampled_keys_are_owned() {
        let pop = ZipfPopularity::new(10_000, 1.01).unwrap();
        let routed = RoutedKeyspace::new(&pop, 3, 32).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for j in 0..3 {
            for _ in 0..500 {
                let k = routed.sample_key(j, &mut rng);
                assert_eq!(routed.server_of(k), j, "server {j} drew foreign key {k}");
            }
        }
    }

    #[test]
    fn conditional_sampler_realizes_the_thinned_law() {
        // Composite check: P(server j via shares, then key k) must equal
        // the global pmf. Compare empirical per-key frequencies on the
        // hottest keys against pmf(k), mixing over servers.
        let pop = ZipfPopularity::new(2_000, 1.1).unwrap();
        let routed = RoutedKeyspace::new(&pop, 4, 64).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let n_per_share = 400_000f64;
        let mut counts = vec![0u64; 2_000];
        for j in 0..4 {
            let draws = (n_per_share * routed.shares()[j]).round() as usize;
            for _ in 0..draws {
                counts[routed.sample_key(j, &mut rng) as usize] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        for k in 0..20u64 {
            let got = counts[k as usize] as f64 / total as f64;
            let expect = pop.access_probability(k);
            assert!(
                (got - expect).abs() < 0.005 + 0.05 * expect,
                "key {k}: got {got} expect {expect}"
            );
        }
    }

    #[test]
    fn rejects_degenerate_params() {
        let pop = ZipfPopularity::new(1_000, 1.0).unwrap();
        assert!(RoutedKeyspace::new(&pop, 0, 16).is_err());
        assert!(RoutedKeyspace::new(&pop, 4, 0).is_err());
    }

    #[test]
    fn huge_keyspace_is_refused_not_walked() {
        let pop = ZipfPopularity::new(1 << 25, 1.01).unwrap();
        assert!(RoutedKeyspace::new(&pop, 4, 16).is_err());
    }
}
