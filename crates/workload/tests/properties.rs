//! Property-based tests for the workload substrate.

use memlat_dist::{Exponential, GeneralizedPareto};
use memlat_workload::{
    arrival::{for_each_batch_until, BatchArrivals},
    placement::{induced_shares, ConsistentHashRing, HashMod, Placement, StaticProbability},
    trace::{record, EmpiricalGaps, TraceReplay},
    ZipfPopularity,
};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batch streams are strictly increasing in time and emit positive
    /// batch sizes; the empirical key rate matches the configuration.
    #[test]
    fn batch_stream_laws(rate in 100.0f64..100_000.0, q in 0.0f64..0.6, xi in 0.0f64..0.7, seed in 0u64..500) {
        let gaps = GeneralizedPareto::facebook(xi, (1.0 - q) * rate).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), q).unwrap();
        prop_assert!((s.key_rate() - rate).abs() < 1e-6 * rate);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut prev = 0.0;
        for _ in 0..200 {
            let (t, b) = s.next_batch(&mut rng);
            prop_assert!(t > prev);
            prop_assert!(b >= 1);
            prev = t;
        }
    }

    /// Every placement maps every key to a valid server, and mappings
    /// are stable.
    #[test]
    fn placements_are_total_and_stable(m in 1usize..32, key in 0u64..1_000_000) {
        let placements: Vec<Box<dyn Placement>> = vec![
            Box::new(HashMod::new(m)),
            Box::new(ConsistentHashRing::new(m, 64)),
            Box::new(StaticProbability::new(&vec![1.0 / m as f64; m]).unwrap()),
        ];
        for p in placements {
            let s = p.server_of(key);
            prop_assert!(s < p.servers());
            prop_assert_eq!(s, p.server_of(key));
        }
    }

    /// Induced shares are a probability vector.
    #[test]
    fn induced_shares_sum_to_one(m in 2usize..16, seed in 0u64..100) {
        let ring = ConsistentHashRing::new(m, 64);
        let mut k = seed;
        let shares = induced_shares(&ring, move || {
            k = k.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            k
        }, 5_000);
        prop_assert_eq!(shares.len(), m);
        prop_assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Trace record → replay preserves count, order and rate.
    #[test]
    fn trace_round_trip(rate in 1_000.0f64..50_000.0, seed in 0u64..200) {
        let gaps = Exponential::new(rate).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = record(&mut s, 0, 0.2, &mut rng);
        prop_assume!(t.len() >= 2);
        let mut replay = TraceReplay::new(t.clone()).unwrap();
        let mut n = 0;
        let mut prev = 0.0;
        while let Some(r) = replay.next_batch() {
            prop_assert!(r.time >= prev);
            prev = r.time;
            n += 1;
        }
        prop_assert_eq!(n, t.len());
        // Empirical gap distribution has the right mean (±20% for short
        // traces).
        let e = EmpiricalGaps::from_trace(&t).unwrap();
        use memlat_dist::Continuous;
        prop_assert!((e.mean() * rate - 1.0).abs() < 0.4, "mean {} rate {rate}", e.mean());
    }

    /// Zipf popularity: head mass is monotone in n and skew.
    #[test]
    fn zipf_head_mass_monotone(keys in 100u64..100_000, skew in 0.2f64..1.5) {
        let pop = ZipfPopularity::new(keys, skew).unwrap();
        let h10 = pop.head_mass(10);
        let h100 = pop.head_mass(100.min(keys));
        prop_assert!(h100 >= h10);
        let flatter = ZipfPopularity::new(keys, skew * 0.5).unwrap();
        prop_assert!(pop.head_mass(10) >= flatter.head_mass(10) - 1e-12);
    }

    /// for_each_batch_until returns exactly the keys it reported.
    #[test]
    fn batch_counting_consistent(rate in 1_000.0f64..20_000.0, seed in 0u64..100) {
        let gaps = Exponential::new(rate).unwrap();
        let mut s = BatchArrivals::new(Box::new(gaps), 0.2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut manual = 0u64;
        let reported = for_each_batch_until(&mut s, 0.5, &mut rng, |_, b| manual += b);
        prop_assert_eq!(manual, reported);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The alias-table sampler realizes the same pmf as the
    /// rejection-inversion sampler it replaces on small key spaces:
    /// empirical masses of the head and the lower half both sit within
    /// binomial noise of the exact Zipf values.
    #[test]
    fn alias_sampler_empirical_pmf_matches_exact(
        keys in 2u64..2_000,
        skew in 0.0f64..1.4,
        seed in 0u64..100_000,
    ) {
        let pop = ZipfPopularity::new(keys, skew).unwrap();
        prop_assert!(pop.uses_alias_table());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let draws = 20_000u32;
        let head_cut = (keys / 4).max(1);
        let half_cut = (keys / 2).max(1);
        let (mut head, mut half) = (0u32, 0u32);
        for _ in 0..draws {
            let k = pop.sample_key(&mut rng);
            prop_assert!(k < keys);
            if k < head_cut {
                head += 1;
            }
            if k < half_cut {
                half += 1;
            }
        }
        // 5σ binomial slack at p = 1/2, n = 20 000 is ~0.018.
        let tol = 0.02;
        let head_frac = f64::from(head) / f64::from(draws);
        let half_frac = f64::from(half) / f64::from(draws);
        prop_assert!(
            (head_frac - pop.head_mass(head_cut)).abs() < tol,
            "head {} vs {}", head_frac, pop.head_mass(head_cut)
        );
        prop_assert!(
            (half_frac - pop.head_mass(half_cut)).abs() < tol,
            "half {} vs {}", half_frac, pop.head_mass(half_cut)
        );
    }

    /// The alias table and a direct inverse-CDF sampler draw from the
    /// same law: a chi-square homogeneity test over head ranks plus a
    /// pooled tail cannot tell their samples apart. The significance
    /// level is extreme (1e-6) because proptest explores random
    /// parameters each run — a sound sampler must never trip it, while
    /// a wrong alias construction fails it by orders of magnitude.
    #[test]
    fn alias_and_inverse_cdf_samplers_agree(
        keys in 50u64..1_500,
        skew in 0.0f64..1.4,
        seed in 0u64..100_000,
    ) {
        let pop = ZipfPopularity::new(keys, skew).unwrap();
        prop_assert!(pop.uses_alias_table());
        // Cumulative PMF for the inverse-CDF draw: cum[k] = P(X ≤ k).
        let mut cum = Vec::with_capacity(keys as usize);
        let mut acc = 0.0;
        for k in 0..keys {
            acc += pop.access_probability(k);
            cum.push(acc);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1ce_cdf);
        let draws = 4_000usize;
        let head = (keys as usize / 4).clamp(1, 25);
        let mut via_alias = vec![0u64; head + 1];
        let mut via_inverse = vec![0u64; head + 1];
        for _ in 0..draws {
            let a = pop.sample_key(&mut rng) as usize;
            via_alias[a.min(head)] += 1;
            let u = memlat_dist::open_unit(&mut rng);
            let i = cum.partition_point(|&c| c < u).min(keys as usize - 1);
            via_inverse[i.min(head)] += 1;
        }
        let test = memlat_stats::gof::chi_square_homogeneity(&via_alias, &via_inverse);
        prop_assert!(
            test.passes(1e-6),
            "χ² = {:.2}, p = {:.2e} over {} bins", test.statistic, test.p_value, head + 1
        );
    }
}
