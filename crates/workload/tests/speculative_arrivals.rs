//! Property-based proof that the speculative block arrival pipeline is
//! bit-identical to the scalar gap recurrence under random parameters.
//!
//! The unit tests in `arrival.rs` pin a handful of configurations; these
//! properties let proptest roam the (rate, q, ξ, seed, horizon) space and
//! assert the three invariants the block reformulation rests on:
//!
//! 1. **Prefix-sum carry exactness** — batch times produced across many
//!    speculative blocks match the scalar `clock += gap` recurrence bit
//!    for bit, including the carried clock at every block boundary.
//! 2. **Horizon-trim determinism** — the block size (`min_keys`) is
//!    invisible: any block size yields the same kept batches, the same
//!    final clock, and the same RNG stream position.
//! 3. **RNG-position equivalence** — after the horizon crossing the RNG
//!    sits exactly where the scalar loop would leave it, so everything
//!    downstream of arrival generation is unperturbed.

use memlat_dist::{Exponential, GapLaw, GeneralizedPareto};
use memlat_workload::{ArrivalScratch, BatchArrivals};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};

fn law(rate: f64, q: f64, xi: f64, exponential: u8) -> GapLaw {
    let batch_rate = (1.0 - q) * rate;
    if exponential == 1 {
        GapLaw::from(Exponential::new(batch_rate).unwrap())
    } else {
        GapLaw::from(GeneralizedPareto::facebook(xi, batch_rate).unwrap())
    }
}

/// The scalar reference: `next_batch_with` until the horizon, with
/// `key_draws` raw u64s banked per key in stream order. Returns the kept
/// `(time, size)` batches, the banked key bits, the final clock, and the
/// RNG's next draw.
fn scalar_reference(
    law: &GapLaw,
    q: f64,
    horizon: f64,
    key_draws: usize,
    seed: u64,
) -> (Vec<(f64, u64)>, Vec<u64>, f64, u64) {
    let mut s = BatchArrivals::new(law.clone(), q).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut batches = Vec::new();
    let mut key_bits = Vec::new();
    loop {
        let (t, b) = s.next_batch_with(&mut rng);
        if t >= horizon {
            break;
        }
        batches.push((t, b));
        for _ in 0..b as usize * key_draws {
            key_bits.push(rng.next_u64());
        }
    }
    (batches, key_bits, s.clock(), rng.next_u64())
}

/// Drives the speculative pipeline to exhaustion at one block size.
fn speculative_run(
    law: &GapLaw,
    q: f64,
    horizon: f64,
    min_keys: usize,
    key_draws: usize,
    seed: u64,
) -> (Vec<(f64, u64)>, Vec<u64>, f64, u64) {
    let mut s = BatchArrivals::new(law.clone(), q).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut scratch = ArrivalScratch::new();
    let mut batches = Vec::new();
    let mut key_bits = Vec::new();
    loop {
        let done = s.fill_block_speculative(
            &mut rng,
            horizon,
            min_keys,
            key_draws,
            &mut scratch,
            |b, r| {
                for _ in 0..b as usize * key_draws {
                    key_bits.push(r.next_u64());
                }
            },
        );
        batches.extend(
            scratch
                .times()
                .iter()
                .copied()
                .zip(scratch.sizes().iter().copied()),
        );
        if done {
            break;
        }
    }
    // Key bits banked for the speculated-past-horizon batches are junk by
    // construction — the caller truncates to the kept keys, exactly as
    // the cluster simulator's block loop does.
    let kept: usize = batches.iter().map(|&(_, b)| b as usize).sum();
    key_bits.truncate(kept * key_draws);
    (batches, key_bits, s.clock(), rng.next_u64())
}

fn assert_runs_match(
    a: &(Vec<(f64, u64)>, Vec<u64>, f64, u64),
    b: &(Vec<(f64, u64)>, Vec<u64>, f64, u64),
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.0.len(), b.0.len(), "{}: batch count", label);
    for (i, ((ta, ba), (tb, bb))) in a.0.iter().zip(&b.0).enumerate() {
        prop_assert_eq!(ta.to_bits(), tb.to_bits(), "{}: batch {} time", label, i);
        prop_assert_eq!(ba, bb, "{}: batch {} size", label, i);
    }
    prop_assert_eq!(&a.1, &b.1, "{}: key bits", label);
    prop_assert_eq!(a.2.to_bits(), b.2.to_bits(), "{}: final clock", label);
    prop_assert_eq!(a.3, b.3, "{}: RNG position", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants 1 and 3: the speculative pipeline reproduces the scalar
    /// recurrence bit for bit — times, sizes, interleaved key draws, the
    /// carried clock, and the RNG stream position after the crossing.
    #[test]
    fn speculative_pipeline_is_bit_identical_to_scalar(
        rate in 2_000.0f64..30_000.0,
        q in 0.0f64..0.5,
        xi in 0.0f64..0.7,
        exponential in 0u8..2,
        key_draws in 0usize..3,
        min_keys in 1usize..512,
        seed in 0u64..10_000,
    ) {
        let law = law(rate, q, xi, exponential);
        let horizon = 0.01;
        let scalar = scalar_reference(&law, q, horizon, key_draws, seed);
        prop_assume!(!scalar.0.is_empty());
        let spec = speculative_run(&law, q, horizon, min_keys, key_draws, seed);
        assert_runs_match(&scalar, &spec, "vs scalar")?;
    }

    /// Invariant 2: the block size is invisible — every `min_keys`,
    /// including the degenerate one-batch-at-a-time block and blocks far
    /// larger than the horizon holds, yields the same kept batches, key
    /// bits, clock, and RNG position.
    #[test]
    fn horizon_trim_is_deterministic_across_block_sizes(
        rate in 2_000.0f64..30_000.0,
        q in 0.0f64..0.5,
        xi in 0.0f64..0.7,
        exponential in 0u8..2,
        key_draws in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let law = law(rate, q, xi, exponential);
        let horizon = 0.01;
        let reference = speculative_run(&law, q, horizon, 1, key_draws, seed);
        for min_keys in [37usize, 256, 1024] {
            let run = speculative_run(&law, q, horizon, min_keys, key_draws, seed);
            assert_runs_match(&reference, &run, &format!("block {min_keys}"))?;
        }
    }
}
