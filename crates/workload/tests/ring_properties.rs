//! Property tests for the consistent-hash ring: balance across server
//! counts and the monotonicity that makes it "consistent" — growing or
//! shrinking the ring by one server remaps only keys that touch that
//! server.

use memlat_workload::{ConsistentHashRing, Placement, RoutedKeyspace, ZipfPopularity};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Key balance: with enough virtual nodes, every server's share of a
    /// uniform key stream stays within a generous band of 1/m. The band
    /// is wide (consistent hashing is only statistically balanced: the
    /// per-server arc length has relative deviation ~ 1/√vnodes) but
    /// tight enough to catch a broken ring walk or point hash.
    #[test]
    fn ring_balances_within_tolerance(m in 2usize..16, vnodes in 64usize..256) {
        let ring = ConsistentHashRing::new(m, vnodes);
        let keys = 20_000u64;
        let mut counts = vec![0u64; m];
        for k in 0..keys {
            counts[ring.server_of(k)] += 1;
        }
        let mean = keys as f64 / m as f64;
        for (j, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / mean;
            prop_assert!(
                (0.2..=3.5).contains(&ratio),
                "server {j}/{m} vnodes {vnodes}: share ratio {ratio:.3} ({counts:?})"
            );
        }
    }

    /// Monotonicity, growing: adding one server moves keys only *onto*
    /// the new server — every key either keeps its owner or routes to
    /// the newcomer, and some keys do move.
    #[test]
    fn adding_a_server_only_captures_keys(m in 1usize..12, vnodes in 8usize..192) {
        let before = ConsistentHashRing::new(m, vnodes);
        let after = ConsistentHashRing::new(m + 1, vnodes);
        let mut moved = 0u64;
        for k in 0..8_000u64 {
            let old = before.server_of(k);
            let new = after.server_of(k);
            if new != old {
                prop_assert_eq!(
                    new, m,
                    "key {} moved {} -> {} instead of onto the new server {}",
                    k, old, new, m
                );
                moved += 1;
            }
        }
        prop_assert!(moved > 0, "growing {m} -> {} moved no keys", m + 1);
    }

    /// Monotonicity, shrinking: removing one server moves keys only
    /// *off* that server — survivors keep every key they had.
    #[test]
    fn removing_a_server_only_releases_its_keys(m in 2usize..12, vnodes in 8usize..192, victim_seed in 0usize..64) {
        let ring = ConsistentHashRing::new(m, vnodes);
        let victim = victim_seed % m;
        let smaller = ring.without_server(victim);
        let mut moved = 0u64;
        for k in 0..8_000u64 {
            let old = ring.server_of(k);
            let new = smaller.server_of(k);
            prop_assert!(new != victim, "key {} still routes to removed server", k);
            if new != old {
                prop_assert_eq!(
                    old, victim,
                    "key {} moved {} -> {} without leaving the victim {}",
                    k, old, new, victim
                );
                moved += 1;
            }
        }
        prop_assert!(moved > 0, "removing {victim} of {m} moved no keys");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The routed keyspace's exact shares agree with the ring: each
    /// share is the popularity mass of exactly the keys the ring assigns
    /// to that server, and the conditional samplers cover the key space
    /// with no overlap.
    #[test]
    fn routed_shares_match_ring_ownership(m in 2usize..8, vnodes in 16usize..128, skew_milli in 800u64..1400) {
        let skew = skew_milli as f64 / 1000.0;
        let keys = 5_000u64;
        let pop = ZipfPopularity::new(keys, skew).unwrap();
        let routed = RoutedKeyspace::new(&pop, m, vnodes).unwrap();
        let ring = ConsistentHashRing::new(m, vnodes);
        let mut seen = vec![false; keys as usize];
        for j in 0..m {
            let mut mass = 0.0;
            for &k in routed.owned_keys(j) {
                prop_assert_eq!(ring.server_of(k), j);
                prop_assert!(!seen[k as usize], "key {} owned twice", k);
                seen[k as usize] = true;
                mass += pop.access_probability(k);
            }
            prop_assert!(
                (routed.shares()[j] - mass).abs() < 1e-9,
                "server {}: share {} vs mass {}", j, routed.shares()[j], mass
            );
        }
        prop_assert!(seen.iter().all(|&s| s), "some key unowned");
    }
}
