//! Delayed-hits experiment: what per-key fetch coalescing buys in the
//! database path, across fetch-latency × Zipf-skew × cache-size regimes.
//!
//! Classic cache analysis charges every miss one independent fetch. In a
//! real memcached deployment the backing store is slow enough that many
//! misses for a *hot* key arrive while its fetch is still outstanding —
//! the "delayed hits" of Atre et al. (SIGCOMM 2020). A coalescing relay
//! parks those requests on the in-flight fetch instead of dispatching
//! duplicates, which (a) resolves them after only the fetch's residual
//! and (b) sheds load from the database, shrinking its queues for
//! everyone.
//!
//! One row per regime; both relays run on the same seed with the same
//! explicitly-sized database, so columns are pathwise comparable:
//!
//! * **independent** — the legacy relay: every miss dispatches.
//! * **coalesced** — first miss per key dispatches; concurrent same-key
//!   misses wait out the residual.
//!
//! The database is sized from a short calibration run to sit at ~90%
//! utilization under the *independent* relay's dispatch rate, the regime
//! where queueing dominates and duplicate suppression is worth the most.
//! Closed-form gating of the coalescing machinery against the Jiang & Ma
//! (arXiv 2505.15531) expressions lives in the conformance harness; this
//! sweep maps the engineering win.

use memlat_cluster::{
    CacheBackedConfig, CacheRouting, ClusterSim, MissMode, MissRelay, Retention, SimConfig,
    SimScratch,
};
use memlat_model::ModelParams;

use crate::{parallel_sweep_with, sim_duration, ExpResult};

const SEED: u64 = 0xde1a;
const WARMUP: f64 = 0.1;
/// Zipf keyspace shared by every regime; the cache sizes sweep the
/// fraction of its ~60 MB working set that fits.
const KEYSPACE: u64 = 200_000;
const MEAN_VALUE_BYTES: f64 = 300.0;
/// Target database utilization under the independent relay.
const TARGET_RHO: f64 = 0.9;

/// One sweep regime: mean fetch latency, popularity skew, cache memory.
struct Regime {
    fetch_us: f64,
    skew: f64,
    mem_mb: usize,
}

fn base_cfg(r: &Regime, params: ModelParams) -> SimConfig {
    SimConfig::new(params)
        .duration(sim_duration())
        .warmup(WARMUP)
        .seed(SEED)
        .retention(Retention::Summary)
        .miss_mode(MissMode::CacheBacked(CacheBackedConfig {
            memory_bytes: r.mem_mb << 20,
            keyspace: KEYSPACE,
            skew: r.skew,
            mean_value_bytes: MEAN_VALUE_BYTES,
            routing: CacheRouting::Independent,
        }))
}

/// Delayed-hits sweep — fetch latency × skew × cache size, independent
/// vs coalesced relay on identical seeds and database sizing.
#[must_use]
pub fn delayed_hits() -> ExpResult {
    let regimes: Vec<Regime> = {
        let mut v = Vec::new();
        for &fetch_us in &[200.0, 2_000.0] {
            for &skew in &[0.9, 1.2] {
                for &mem_mb in &[2usize, 16] {
                    v.push(Regime {
                        fetch_us,
                        skew,
                        mem_mb,
                    });
                }
            }
        }
        v
    };

    let rows = parallel_sweep_with(regimes, SimScratch::new, |scratch, r| {
        let mu_d = 1e6 / r.fetch_us;
        let params = ModelParams::builder()
            .db_service_rate(mu_d)
            .build()
            .expect("valid sweep point");
        let total_key_rate = params.total_key_rate();

        // Calibration: the emergent miss ratio depends only on the
        // server-side stream (cache size, skew, seed), not the relay or
        // the database, so a short independent run pins it — and with it
        // the shard count that puts the database at ~TARGET_RHO under
        // one-fetch-per-miss dispatching.
        let cal_cfg = base_cfg(&r, params.clone()).duration(sim_duration().min(0.5));
        let cal = ClusterSim::run_with(&cal_cfg, scratch).expect("calibration run");
        let miss_rate = cal.miss_ratio() * total_key_rate;
        let shards = ((miss_rate / (TARGET_RHO * mu_d)).ceil() as usize).max(1);

        let cfg = base_cfg(&r, params).db_shards(shards);
        let independent = ClusterSim::run_with(&cfg, scratch).expect("independent run");
        let coalesced =
            ClusterSim::run_with(&cfg.clone().miss_relay(MissRelay::Coalesced), scratch)
                .expect("coalesced run");

        let c = coalesced.coalesce();
        let db_keys = coalesced.db_latency_stats().count();
        let ind_dispatches = independent.db_latency_stats().count();
        let dispatch_reduction = if ind_dispatches == 0 {
            0.0
        } else {
            100.0 * (ind_dispatches - c.dispatched) as f64 / ind_dispatches as f64
        };
        let mean_wait_us = if c.delayed_hits == 0 {
            0.0
        } else {
            c.wait_time / c.delayed_hits as f64 * 1e6
        };
        vec![
            r.fetch_us,
            r.skew,
            r.mem_mb as f64,
            coalesced.miss_ratio() * 100.0,
            shards as f64,
            c.dispatched as f64,
            c.delayed_hits as f64,
            100.0 * c.delayed_fraction(),
            dispatch_reduction,
            independent.db_latency_stats().mean() * 1e6,
            coalesced.db_latency_stats().mean() * 1e6,
            independent.db_latency_sketch().quantile(0.99) * 1e6,
            coalesced.db_latency_sketch().quantile(0.99) * 1e6,
            mean_wait_us,
            db_keys as f64,
        ]
    });

    let mut r = ExpResult::new(
        "delayed_hits",
        "Delayed hits — per-key fetch coalescing vs independent relay, by regime",
        &[
            "fetch_us",
            "skew",
            "mem_mb",
            "miss_pct",
            "db_shards",
            "dispatched",
            "delayed_hits",
            "delayed_pct",
            "dispatch_reduction_pct",
            "ind_db_mean_us",
            "coal_db_mean_us",
            "ind_db_p99_us",
            "coal_db_p99_us",
            "mean_wait_us",
            "db_keys",
        ],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note(format!(
        "database sharded for ~{:.0}% utilization under the independent relay \
         (calibrated per regime from the emergent miss ratio); both relays share \
         seed {SEED:#x} and the sharding, so columns are pathwise comparable",
        TARGET_RHO * 100.0
    ));
    r.note(
        "delayed_pct = delayed hits / database-path keys; dispatch_reduction_pct = \
         fetches the coalescing relay shed relative to one-fetch-per-miss",
    );
    r.note(
        "the win concentrates where fetches are slow and popularity is skewed: \
         long outstanding windows × hot keys ⇒ many same-key misses coalesce, \
         cutting both the mean and the p99 of the database path",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() {
        std::env::set_var("MEMLAT_QUICK", "1");
    }

    #[test]
    fn delayed_hits_story_holds() {
        quick();
        let f = delayed_hits();
        assert_eq!(f.rows.len(), 8);
        let fetch = f.column("fetch_us").unwrap();
        let skew = f.column("skew").unwrap();
        let mem_mb = f.column("mem_mb").unwrap();
        let delayed_pct = f.column("delayed_pct").unwrap();
        let reduction = f.column("dispatch_reduction_pct").unwrap();
        let ind_mean = f.column("ind_db_mean_us").unwrap();
        let coal_mean = f.column("coal_db_mean_us").unwrap();
        let ind_p99 = f.column("ind_db_p99_us").unwrap();
        let coal_p99 = f.column("coal_db_p99_us").unwrap();
        let dispatched = f.column("dispatched").unwrap();
        let delayed = f.column("delayed_hits").unwrap();
        let db_keys = f.column("db_keys").unwrap();
        for i in 0..f.rows.len() {
            // Conservation survives into the report.
            assert_eq!(dispatched[i] + delayed[i], db_keys[i]);
            // Coalescing can only shed fetches, never add them.
            assert!(reduction[i] >= 0.0);
            // The headline regime: slow fetches × hot keys × small
            // cache ⇒ material coalescing that beats the independent
            // relay on mean AND p99 of the database path. (The large
            // cache absorbs most hot-key re-references before they can
            // miss, so its delayed fraction stays fractional.)
            if fetch[i] >= 1_000.0 && skew[i] >= 1.2 && mem_mb[i] <= 2.0 {
                assert!(
                    delayed_pct[i] > 1.0,
                    "slow/hot regime barely coalesced: {}% (row {i})",
                    delayed_pct[i]
                );
                assert!(
                    coal_mean[i] < ind_mean[i],
                    "coalescing failed to cut the mean: {} !< {} (row {i})",
                    coal_mean[i],
                    ind_mean[i]
                );
                assert!(
                    coal_p99[i] < ind_p99[i],
                    "coalescing failed to cut the p99: {} !< {} (row {i})",
                    coal_p99[i],
                    ind_p99[i]
                );
            }
        }
        // More skew ⇒ more coalescing, within each (fetch, mem) pair.
        for i in 0..f.rows.len() {
            for j in 0..f.rows.len() {
                if fetch[i] == fetch[j]
                    && f.rows[i][2] == f.rows[j][2]
                    && skew[i] < skew[j]
                    && delayed_pct[j] > 0.5
                {
                    assert!(
                        delayed_pct[j] > delayed_pct[i],
                        "skew {} did not coalesce more than {} (rows {i},{j})",
                        skew[j],
                        skew[i]
                    );
                }
            }
        }
    }
}
