//! Regenerates the paper's table3. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::table3().emit();
}
