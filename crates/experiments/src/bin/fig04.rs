//! Regenerates the paper's fig04. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig04().emit();
}
