//! Regenerates the paper's fig06. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig06().emit();
}
