//! Regenerates every table and figure of the paper in order.
fn main() {
    let start = std::time::Instant::now();
    for result in memlat_experiments::experiments::all() {
        result.emit();
        println!();
    }
    println!("total: {:.1}s", start.elapsed().as_secs_f64());
}
