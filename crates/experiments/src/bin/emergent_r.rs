//! Emergent miss ratio sweep: consistent-hash + LRU fleet, propagated
//! through the paper's Table 3 latency pipeline.

fn main() {
    memlat_experiments::emergent_r::emergent_r().emit();
}
