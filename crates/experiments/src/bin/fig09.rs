//! Regenerates the paper's fig09. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig09().emit();
}
