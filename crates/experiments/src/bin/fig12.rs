//! Regenerates the paper's fig12. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig12().emit();
}
