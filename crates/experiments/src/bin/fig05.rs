//! Regenerates the paper's fig05. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig05().emit();
}
