//! Regenerates the delayed-hits coalescing sweep. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::delayed_hits::delayed_hits().emit();
}
