//! Regenerates the paper's fig07. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig07().emit();
}
