//! Regenerates the paper's table4. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::table4().emit();
}
