//! Regenerates the paper's fig13. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig13().emit();
}
