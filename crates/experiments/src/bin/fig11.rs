//! Regenerates the paper's fig11. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig11().emit();
}
