//! Regenerates the paper's fig10. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig10().emit();
}
