//! Regenerates the paper's fig08. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::experiments::fig08().emit();
}
