//! Regenerates the fault-tolerance sweep. See EXPERIMENTS.md.
fn main() {
    memlat_experiments::fault::fault_sweep().emit();
}
