//! Runs the ablation/extension experiments. See EXPERIMENTS.md.
fn main() {
    for result in memlat_experiments::ablations::all() {
        result.emit();
        println!();
    }
}
