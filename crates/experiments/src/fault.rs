//! Fault-tolerance experiment: fault intensity vs tail latency.
//!
//! The paper models a healthy memcached deployment; this extension
//! sweeps what its latency picture looks like when one server degrades
//! or dies, and what the standard client defenses (bounded retries,
//! hedged requests — "The Tail at Scale") buy back.
//!
//! One row per fault intensity level; three scenarios per row, all on
//! the same seeds so columns are pathwise comparable:
//!
//! * **degraded** — server 0 slowed by `factor` over the whole measured
//!   window, passive client: the pooled p99 strictly grows with the
//!   factor (same draws, scaled service).
//! * **hedged** — same fault, plus hedged duplicates to the replica
//!   after a healthy-p95 delay: the p99 collapses back toward the
//!   healthy tail (a pathwise min can only help).
//! * **outage** — server 0 crashed for a window that grows with the
//!   intensity, clients retry with exponential backoff: refusals,
//!   retries, and keys forced through to the database scale with the
//!   downtime.

use memlat_cluster::{
    ClientPolicy, ClusterSim, FaultPlan, Retention, RetryPolicy, SimConfig, SimScratch,
};

use crate::{parallel_sweep_with, sim_duration, ExpResult};

use super::experiments::base_params;

const SEED: u64 = 0xfa5e;
const WARMUP: f64 = 0.2;

fn cfg() -> SimConfig {
    SimConfig::new(base_params())
        .duration(sim_duration())
        .warmup(WARMUP)
        .seed(SEED)
        .retention(Retention::Summary)
}

/// Fault sweep — slowdown factor and outage length vs tail latency and
/// resilience counters.
#[must_use]
pub fn fault_sweep() -> ExpResult {
    let duration = sim_duration();
    let horizon = WARMUP + duration;
    // The hedge triggers at the healthy run's p95 — the classic choice.
    let healthy = ClusterSim::run(&cfg()).expect("healthy base run");
    let hedge_delay = healthy.server_latency_quantile(0.95);

    let factors: Vec<f64> = vec![1.0, 1.5, 2.0, 3.0, 5.0, 8.0];
    let inputs: Vec<(usize, f64)> = factors.into_iter().enumerate().collect();
    let rows = parallel_sweep_with(inputs, SimScratch::new, |scratch, (i, factor)| {
        // Scenario 1: one slowed server, passive client.
        let slow_plan = FaultPlan::none().slowdown(0, WARMUP, horizon, factor);
        let degraded = ClusterSim::run_with(&cfg().fault_plan(slow_plan.clone()), scratch)
            .expect("degraded run");
        // Scenario 2: same fault, hedging on.
        let hedged = ClusterSim::run_with(
            &cfg()
                .fault_plan(slow_plan)
                .client(ClientPolicy::none().hedge(hedge_delay)),
            scratch,
        )
        .expect("hedged run");
        // Scenario 3: an outage growing with the intensity, retried.
        let crash_len = duration * i as f64 / 10.0;
        let mut outage_cfg = cfg().client(ClientPolicy::none().retry(RetryPolicy::default()));
        if crash_len > 0.0 {
            outage_cfg =
                outage_cfg.fault_plan(FaultPlan::none().crash(0, WARMUP, WARMUP + crash_len));
        }
        let outage = ClusterSim::run_with(&outage_cfg, scratch).expect("outage run");
        let res = outage.resilience();
        vec![
            factor,
            degraded.server_latency_quantile(0.50) * 1e6,
            degraded.server_latency_quantile(0.99) * 1e6,
            hedged.server_latency_quantile(0.99) * 1e6,
            hedged.resilience().hedges_sent as f64,
            hedged.resilience().hedges_won as f64,
            crash_len,
            res.refused as f64,
            res.retries as f64,
            res.forced_misses as f64,
            res.downtime,
            outage.forced_miss_ratio() * 100.0,
        ]
    });

    let mut r = ExpResult::new(
        "fault_sweep",
        "Fault sweep — one faulty server: slowdown factor / outage length vs tail latency",
        &[
            "slow_factor",
            "degraded_p50_us",
            "degraded_p99_us",
            "hedged_p99_us",
            "hedges_sent",
            "hedges_won",
            "crash_len_s",
            "refused",
            "retries",
            "forced_misses",
            "downtime_s",
            "forced_miss_pct",
        ],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note(format!(
        "hedge delay = healthy p95 = {:.1} µs; replica of server j is server (j+1) mod M",
        hedge_delay * 1e6
    ));
    r.note(
        "degraded_p99 grows monotonically with the slowdown factor (pathwise: same draws, \
         scaled service); hedging pulls the tail back toward the healthy p99",
    );
    r.note(
        "outage rows: crash window grows 0 → 50% of the measured duration; refused attempts \
         retry (2 retries, 500 µs base backoff) and surviving failures fall through to the \
         database as forced misses",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() {
        std::env::set_var("MEMLAT_QUICK", "1");
    }

    #[test]
    fn fault_sweep_tells_a_monotone_story() {
        quick();
        let f = fault_sweep();
        assert_eq!(f.rows.len(), 6);
        let p99 = f.column("degraded_p99_us").unwrap();
        // Tail latency strictly degrades as the slowdown intensifies:
        // same seed, same draws, scaled service times.
        for w in p99.windows(2) {
            assert!(w[1] > w[0], "p99 not strictly increasing: {p99:?}");
        }
        // Hedging can only help, and under a materially slow server it
        // must pull the p99 well below the unhedged tail.
        let hedged = f.column("hedged_p99_us").unwrap();
        for (h, p) in hedged.iter().zip(&p99) {
            assert!(h <= p, "hedged p99 {h} above plain {p}");
        }
        let won = f.column("hedges_won").unwrap();
        assert!(*hedged.last().unwrap() < *p99.last().unwrap() / 2.0);
        assert!(*won.last().unwrap() > 0.0);
        // The outage scenario: no faults at intensity 0, then counters
        // scale with the scheduled downtime.
        let down = f.column("downtime_s").unwrap();
        let crash_len = f.column("crash_len_s").unwrap();
        let refused = f.column("refused").unwrap();
        let forced = f.column("forced_misses").unwrap();
        let retries = f.column("retries").unwrap();
        for i in 0..f.rows.len() {
            assert!((down[i] - crash_len[i]).abs() < 1e-9);
            if i == 0 {
                assert_eq!(refused[i], 0.0);
                assert_eq!(forced[i], 0.0);
                assert_eq!(retries[i], 0.0);
            } else {
                assert!(refused[i] > 0.0);
                assert!(forced[i] > 0.0);
                assert!(retries[i] > 0.0);
                // Longer outages refuse and force more.
                assert!(refused[i] > refused[i - 1]);
                assert!(forced[i] > forced[i - 1]);
            }
        }
    }
}
