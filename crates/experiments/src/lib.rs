//! Experiment harness: regenerates every table and figure of
//! *Modeling and Analyzing Latency in the Memcached system* (ICDCS 2017).
//!
//! Each experiment lives in [`experiments`] as a function returning an
//! [`ExpResult`] (named columns + rows + notes); the `src/bin/*` binaries
//! are thin wrappers that print the ASCII table and write a CSV under
//! `results/`. `cargo run --release -p memlat-experiments --bin all`
//! regenerates everything.
//!
//! Two run profiles control cost:
//!
//! * default — publication-quality sample counts (seconds per figure in
//!   release mode);
//! * `MEMLAT_QUICK=1` — ~10× cheaper, used by the test suite and the
//!   scaled-down Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

pub mod ablations;
pub mod delayed_hits;
pub mod emergent_r;
pub mod experiments;
pub mod fault;

/// One regenerated table/figure: a column-labeled numeric table plus
/// free-form notes (what the paper shows, how to compare).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpResult {
    /// Short identifier, e.g. `"fig07"`.
    pub id: String,
    /// Human title, e.g. `"Fig. 7 — E[T_S(N)] vs arrival rate"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (one `f64` per column).
    pub rows: Vec<Vec<f64>>,
    /// Notes printed under the table (paper comparison, caveats).
    pub notes: Vec<String>,
}

impl ExpResult {
    /// Creates an empty result with headers.
    #[must_use]
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the ASCII table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(12)).collect();
        for (c, w) in self.columns.iter().zip(&widths) {
            let _ = write!(out, "{c:>w$} ", w = w);
        }
        let _ = writeln!(out);
        for row in &self.rows {
            for (v, w) in row.iter().zip(&widths) {
                let _ = write!(out, "{} ", format_cell(*v, *w));
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Renders CSV content.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV under `results/<id>.csv` (relative to the workspace
    /// root when run via cargo) and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Prints the table and saves the CSV (the standard binary epilogue).
    pub fn emit(&self) {
        println!("{}", self.render());
        match self.save_csv() {
            Ok(p) => println!("  csv: {}", p.display()),
            Err(e) => eprintln!("  csv write failed: {e}"),
        }
    }

    /// A column's values, by header name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }
}

fn format_cell(v: f64, w: usize) -> String {
    let s = if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    };
    format!("{s:>w$}")
}

/// The `results/` directory: workspace-root-relative when available.
#[must_use]
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/experiments → ../../results.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .map(|p| p.join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

/// Whether the cheap profile is requested (`MEMLAT_QUICK=1`).
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("MEMLAT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Simulated seconds per sweep point for the current profile.
#[must_use]
pub fn sim_duration() -> f64 {
    if quick_mode() {
        0.4
    } else {
        4.0
    }
}

/// Synthetic requests to assemble per point for the current profile.
#[must_use]
pub fn request_count() -> usize {
    if quick_mode() {
        5_000
    } else {
        60_000
    }
}

/// Runs sweep points in parallel with scoped threads, preserving order.
pub fn parallel_sweep<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    parallel_sweep_with(inputs, || (), |(), input| f(input))
}

/// Worker count for figure sweeps: `MEMLAT_SWEEP_THREADS` when set to a
/// positive integer, otherwise the available core count.
///
/// Every sweep point is an independent deterministic simulation with a
/// fixed seed and the outputs are written back by input position, so the
/// thread count changes wall-clock only — regenerated CSVs are
/// byte-identical at any setting (the CI figure smoke diffs 1 vs 2).
#[must_use]
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("MEMLAT_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs sweep points on a bounded worker pool (one worker per available
/// core — or [`sweep_threads`]'s override — at most one per input),
/// preserving input order.
///
/// Each worker builds its own state once via `make_state` and threads it
/// through every point it handles — simulation sweeps pass
/// `memlat_cluster::SimScratch::new` here so the per-key buffers are
/// allocated once per worker and reused across sweep points instead of
/// reallocated at every point. Worker `k` handles inputs `k`, `k + T`,
/// `k + 2T`, … so a slow region of the sweep does not serialize one
/// chunk.
pub fn parallel_sweep_with<I, O, S, M, F>(inputs: Vec<I>, make_state: M, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, I) -> O + Sync,
{
    let threads = sweep_threads().clamp(1, inputs.len().max(1));
    let mut outputs: Vec<Option<O>> = Vec::new();
    outputs.resize_with(inputs.len(), || None);
    if threads <= 1 {
        let mut state = make_state();
        for (input, slot) in inputs.into_iter().zip(outputs.iter_mut()) {
            *slot = Some(f(&mut state, input));
        }
    } else {
        let mut lanes: Vec<Vec<(I, &mut Option<O>)>> = Vec::new();
        lanes.resize_with(threads, Vec::new);
        for (k, pair) in inputs.into_iter().zip(outputs.iter_mut()).enumerate() {
            lanes[k % threads].push(pair);
        }
        std::thread::scope(|scope| {
            for lane in lanes {
                let (f, make_state) = (&f, &make_state);
                scope.spawn(move || {
                    let mut state = make_state();
                    for (input, slot) in lane {
                        *slot = Some(f(&mut state, input));
                    }
                });
            }
        });
    }
    outputs
        .into_iter()
        .map(|o| o.expect("sweep slot unfilled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_table_round_trip() {
        let mut r = ExpResult::new("t", "Test", &["a", "b"]);
        r.push_row(vec![1.0, 2.0]);
        r.push_row(vec![3.5, 4.25]);
        r.note("hello");
        let rendered = r.render();
        assert!(rendered.contains("Test"));
        assert!(rendered.contains("hello"));
        let csv = r.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(r.column("b"), Some(vec![2.0, 4.25]));
        assert_eq!(r.column("missing"), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = ExpResult::new("t", "Test", &["a", "b"]);
        r.push_row(vec![1.0]);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let out = parallel_sweep((0..32).collect(), |i: i32| i * i);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_sweep_with_threads_state_through_workers() {
        // Every worker starts its state at zero and bumps it per point;
        // outputs stay in input order and each point sees a live state.
        let out = parallel_sweep_with(
            (0..64).collect::<Vec<i32>>(),
            || 0u32,
            |calls, i| {
                *calls += 1;
                (i * 2, *calls)
            },
        );
        assert_eq!(out.len(), 64);
        for (idx, &(v, calls)) in out.iter().enumerate() {
            assert_eq!(v, idx as i32 * 2);
            assert!(calls >= 1);
        }
    }

    #[test]
    fn sweep_threads_env_override() {
        // Tests run in one process; only exercise the override when the
        // ambient environment leaves the variable free to mutate.
        if std::env::var_os("MEMLAT_SWEEP_THREADS").is_some() {
            return;
        }
        assert!(sweep_threads() >= 1);
        std::env::set_var("MEMLAT_SWEEP_THREADS", "3");
        assert_eq!(sweep_threads(), 3);
        // Zero and garbage fall back to auto-detection.
        std::env::set_var("MEMLAT_SWEEP_THREADS", "0");
        assert!(sweep_threads() >= 1);
        std::env::remove_var("MEMLAT_SWEEP_THREADS");
    }
}
