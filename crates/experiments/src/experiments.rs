//! One function per table/figure of the paper's evaluation (§5).
//!
//! Conventions:
//!
//! * "model" columns come from `memlat-model` (Theorem 1 and friends);
//! * "sim" columns come from `memlat-cluster` (the discrete-event
//!   testbed substitute);
//! * latencies are reported in µs unless the column name says otherwise;
//! * every function is deterministic given the ambient profile
//!   (seeds are fixed constants).

use memlat_cluster::{assembly::assemble_requests, ClusterSim, Retention, SimConfig, SimScratch};
use memlat_model::{
    cliff, database, ArrivalPattern, LoadDistribution, ModelParams, ServerLatencyModel,
};
use memlat_workload::facebook;
use rand::SeedableRng;

use crate::{
    parallel_sweep, parallel_sweep_with, quick_mode, request_count, sim_duration, ExpResult,
};

/// The paper's §5.1 base configuration.
#[must_use]
pub fn base_params() -> ModelParams {
    ModelParams::builder()
        .build()
        .expect("paper defaults are valid")
}

fn with_key_rate(lam: f64) -> ModelParams {
    ModelParams::builder()
        .key_rate_per_server(lam)
        .build()
        .expect("valid sweep point")
}

/// Measured `E[T_S(N)]` (µs) for a parameter set via the simulator's
/// pooled-quantile estimator.
///
/// Sweeps only need the pooled quantile, so the run keeps streaming
/// summaries instead of per-key buffers ([`Retention::Summary`]): memory
/// stays flat however long the simulated duration. The caller's
/// [`SimScratch`] is reused across its sweep points.
fn ts_sim_us(params: &ModelParams, n: u64, seed: u64, scratch: &mut SimScratch) -> f64 {
    let cfg = SimConfig::new(params.clone())
        .duration(sim_duration())
        .warmup(0.2)
        .seed(seed)
        .retention(Retention::Summary);
    let out = ClusterSim::run_with(&cfg, scratch).expect("stable sweep point");
    out.expected_server_latency(n) * 1e6
}

/// Model `E[T_S(N)]` (µs): product-form upper estimate (the curve the
/// paper plots), plus bounds.
fn ts_model_us(params: &ModelParams, n: u64) -> (f64, f64) {
    let m = ServerLatencyModel::new(params).expect("stable sweep point");
    let b = m.product_form_bounds(n);
    (b.lower * 1e6, b.upper * 1e6)
}

/// Table 3 — basic validation under the Facebook workload.
///
/// Rows: `T_N(N)`, `T_S(N)`, `T_D(N)`, `T(N)`; columns give the paper's
/// Theorem-1 band and measurement next to ours.
#[must_use]
pub fn table3() -> ExpResult {
    let params = base_params();
    let est = params.estimate().expect("base config is stable");

    let cfg = SimConfig::new(params.clone())
        .duration(sim_duration())
        .warmup(0.2)
        .seed(0x7ab1e3);
    let out = ClusterSim::run(&cfg).expect("base config simulates");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7ab1e3);
    let stats = assemble_requests(&out, params.keys_per_request(), request_count(), &mut rng);

    let mut r = ExpResult::new(
        "table3",
        "Table 3 — basic validation (Facebook workload, N=150)",
        &[
            "row",
            "paper_model_lo_us",
            "paper_model_hi_us",
            "paper_meas_us",
            "model_lo_us",
            "model_hi_us",
            "sim_us",
            "sim_ci_lo_us",
            "sim_ci_hi_us",
        ],
    );
    // Paper's Table 3 values.
    let paper = [
        (20.0, 20.0, 20.0),
        (351.0, 366.0, 368.0),
        (836.0, 836.0, 867.0),
        (836.0, 1222.0, 1144.0),
    ];
    let model = [
        (est.network * 1e6, est.network * 1e6),
        (est.server.lower * 1e6, est.server.upper * 1e6),
        (est.database * 1e6, est.database_exact * 1e6),
        (est.total.lower * 1e6, est.total.upper * 1e6),
    ];
    let sim = [
        (
            stats.network * 1e6,
            stats.network * 1e6,
            stats.network * 1e6,
        ),
        (
            stats.ts.mean * 1e6,
            stats.ts.lower * 1e6,
            stats.ts.upper * 1e6,
        ),
        (
            stats.td.mean * 1e6,
            stats.td.lower * 1e6,
            stats.td.upper * 1e6,
        ),
        (
            stats.total.mean * 1e6,
            stats.total.lower * 1e6,
            stats.total.upper * 1e6,
        ),
    ];
    for i in 0..4 {
        r.push_row(vec![
            i as f64, paper[i].0, paper[i].1, paper[i].2, model[i].0, model[i].1, sim[i].0,
            sim[i].1, sim[i].2,
        ]);
    }
    r.note("rows: 0=T_N(N) 1=T_S(N) 2=T_D(N) 3=T(N)");
    r.note(
        "model T_D row shows eq.23 (lo) and the within-model exact binomial×harmonic value (hi); \
         eq.23 underestimates by ~23% at this point — the simulation tracks the exact value",
    );
    if let Ok(law) = memlat_model::RequestLatencyLaw::new(&params) {
        r.note(format!(
            "exact-in-model E[T(N)] = {:.1} µs (closed-form law; exceeds the eq.23-based \
             Theorem-1 upper bound — see EXPERIMENTS.md), p99 = {:.1} µs, p999 = {:.1} µs",
            law.mean() * 1e6,
            law.quantile(0.99) * 1e6,
            law.quantile(0.999) * 1e6,
        ));
    }
    r
}

/// Fig. 4 — per-key processing-latency quantiles vs the eq. (9) band.
#[must_use]
pub fn fig04() -> ExpResult {
    let params = base_params();
    let model = ServerLatencyModel::new(&params).expect("stable");
    let cfg = SimConfig::new(params)
        .duration(sim_duration())
        .warmup(0.2)
        .seed(0xf14)
        .retention(Retention::Summary);
    let out = ClusterSim::run(&cfg).expect("stable");
    let sketch = out.pooled_latency_sketch();

    let mut r = ExpResult::new(
        "fig04",
        "Fig. 4 — k-th quantile of per-key latency T_S vs eq. (9) bounds",
        &["k", "eq9_lower_us", "eq9_upper_us", "sim_us"],
    );
    for i in 1..20 {
        let k = i as f64 / 20.0;
        let (lo, hi) = model.single_key_quantile_bounds(k);
        r.push_row(vec![k, lo * 1e6, hi * 1e6, sketch.quantile(k) * 1e6]);
    }
    for k in [0.97, 0.99] {
        let (lo, hi) = model.single_key_quantile_bounds(k);
        r.push_row(vec![k, lo * 1e6, hi * 1e6, sketch.quantile(k) * 1e6]);
    }
    r.note("paper Fig. 4: measured quantiles tightly sandwiched by the eq. (9) band up to ~300 µs");
    r
}

/// Fig. 5 — `E[T_S(N)]` vs concurrency probability `q ∈ [0, 0.5]`.
#[must_use]
pub fn fig05() -> ExpResult {
    let qs: Vec<f64> = vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let rows = parallel_sweep_with(qs, SimScratch::new, |scratch, q| {
        let params = ModelParams::builder()
            .concurrency(q)
            .build()
            .expect("valid q");
        let (lo, hi) = ts_model_us(&params, 150);
        let sim = ts_sim_us(&params, 150, 0xf15 + (q * 100.0) as u64, scratch);
        vec![q, lo, hi, sim]
    });
    let mut r = ExpResult::new(
        "fig05",
        "Fig. 5 — E[T_S(N)] vs concurrent probability q (N=150)",
        &["q", "model_lo_us", "model_hi_us", "sim_us"],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note("paper Fig. 5: ~350 µs at q=0.1 rising to ~650 µs at q=0.5; growth ∝ 1/(1−q)");
    r
}

/// Fig. 6 — `E[T_S(N)]` vs burst degree `ξ ∈ [0, 0.6]`.
#[must_use]
pub fn fig06() -> ExpResult {
    let xis: Vec<f64> = vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let rows = parallel_sweep_with(xis, SimScratch::new, |scratch, xi| {
        let params = ModelParams::builder()
            .arrival(ArrivalPattern::GeneralizedPareto { xi })
            .build()
            .expect("valid xi");
        let (lo, hi) = ts_model_us(&params, 150);
        let sim = ts_sim_us(&params, 150, 0xf16 + (xi * 100.0) as u64, scratch);
        vec![xi, lo, hi, sim]
    });
    let mut r = ExpResult::new(
        "fig06",
        "Fig. 6 — E[T_S(N)] vs burst degree ξ (N=150)",
        &["xi", "model_lo_us", "model_hi_us", "sim_us"],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note("paper Fig. 6: latency grows steeply with ξ, exceeding 1 ms by ξ=0.6");
    r
}

/// Fig. 7 — `E[T_S(N)]` vs per-server arrival rate `λ ∈ [10, 75] Kps`.
#[must_use]
pub fn fig07() -> ExpResult {
    let lams: Vec<f64> = vec![10e3, 20e3, 30e3, 40e3, 50e3, 55e3, 60e3, 65e3, 70e3, 75e3];
    let rows = parallel_sweep_with(lams, SimScratch::new, |scratch, lam| {
        let params = with_key_rate(lam);
        let (lo, hi) = ts_model_us(&params, 150);
        let sim = ts_sim_us(&params, 150, 0xf17 + (lam / 1e3) as u64, scratch);
        vec![lam / 1e3, lo, hi, sim]
    });
    let mut r = ExpResult::new(
        "fig07",
        "Fig. 7 — E[T_S(N)] vs arrival rate λ (µ_S=80 Kps, ξ=0.15, N=150)",
        &["lambda_kps", "model_lo_us", "model_hi_us", "sim_us"],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note("paper Fig. 7: gentle growth below 50 Kps, sharp cliff past ~60 Kps (ρ_S ≈ 75%)");
    r
}

/// Fig. 8 — model-only: `E[T_S(N)]` vs λ for ξ ∈ {0, 0.6, 0.8}.
#[must_use]
pub fn fig08() -> ExpResult {
    let mut r = ExpResult::new(
        "fig08",
        "Fig. 8 — model E[T_S(N)] vs λ for ξ ∈ {0, 0.6, 0.8} (µ_S=80 Kps)",
        &["lambda_kps", "ts_xi00_us", "ts_xi06_us", "ts_xi08_us"],
    );
    let mut lam = 10e3;
    while lam <= 75e3 + 1.0 {
        let mut row = vec![lam / 1e3];
        for xi in [0.0, 0.6, 0.8] {
            let params = ModelParams::builder()
                .arrival(ArrivalPattern::GeneralizedPareto { xi })
                .key_rate_per_server(lam)
                .build()
                .expect("valid");
            row.push(ts_model_us(&params, 150).1);
        }
        r.push_row(row);
        lam += 5e3;
    }
    r.note("paper Fig. 8: cliffs at ≈65/45/30 Kps for ξ=0/0.6/0.8 (ρ_S ≈ 80/55/40%)");
    r
}

/// Fig. 9 — model-only: `E[T_S(N)]` vs `µ_S` for ξ ∈ {0, 0.6, 0.8}.
#[must_use]
pub fn fig09() -> ExpResult {
    let mut r = ExpResult::new(
        "fig09",
        "Fig. 9 — model E[T_S(N)] vs µ_S for ξ ∈ {0, 0.6, 0.8} (λ=62.5 Kps)",
        &["mu_kps", "ts_xi00_us", "ts_xi06_us", "ts_xi08_us"],
    );
    let mut mu = 65e3;
    while mu <= 200e3 + 1.0 {
        let mut row = vec![mu / 1e3];
        for xi in [0.0, 0.6, 0.8] {
            let params = ModelParams::builder()
                .arrival(ArrivalPattern::GeneralizedPareto { xi })
                .service_rate(mu)
                .build()
                .expect("valid");
            row.push(ts_model_us(&params, 150).1);
        }
        r.push_row(row);
        mu += 7.5e3;
    }
    r.note("paper Fig. 9: cliffs delayed to µ_S ≈ 85/110/160 Kps for ξ=0/0.6/0.8");
    r
}

/// Table 4 — cliff utilization `ρ_S(ξ)` (Proposition 2).
#[must_use]
pub fn table4() -> ExpResult {
    let mut r = ExpResult::new(
        "table4",
        "Table 4 — cliff utilization ρ_S(ξ) (fixed-δ* criterion, δ*=0.80)",
        &["xi", "paper_rho", "model_rho", "abs_err"],
    );
    let mut sse = 0.0;
    for &(xi, paper) in cliff::TABLE4_PAPER.iter() {
        let mine = cliff::cliff_utilization(xi, facebook::CONCURRENCY_Q).expect("solvable");
        let err = (mine - paper).abs();
        sse += err * err;
        r.push_row(vec![xi, paper, mine, err]);
    }
    r.note(format!(
        "rmse = {:.4} utilization points; the paper never states its cliff criterion — \
         ours is δ(ρ,ξ) = δ* with δ* = {} least-squares calibrated (see DESIGN.md)",
        (sse / 20.0f64).sqrt(),
        cliff::DELTA_STAR
    ));
    r
}

/// Fig. 10 — `E[T_S(N)]` vs largest load ratio `p1 ∈ [0.3, 0.9]`.
#[must_use]
pub fn fig10() -> ExpResult {
    let p1s: Vec<f64> = vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9];
    let rows = parallel_sweep_with(p1s, SimScratch::new, |scratch, p1| {
        let params = ModelParams::builder()
            .load(LoadDistribution::HotServer { p1 })
            .total_key_rate(80_000.0)
            .build()
            .expect("valid p1");
        let model = ServerLatencyModel::new(&params).expect("stable (p1<1)");
        let wide = model.theorem1_bounds(150);
        let tight = model.product_form_bounds(150);
        let sim = ts_sim_us(&params, 150, 0xf1a + (p1 * 100.0) as u64, scratch);
        vec![
            p1,
            wide.lower * 1e6,
            wide.upper * 1e6,
            tight.upper * 1e6,
            sim,
        ]
    });
    let mut r = ExpResult::new(
        "fig10",
        "Fig. 10 — E[T_S(N)] vs largest load ratio p1 (Λ=80 Kps, µ_S=80 Kps)",
        &["p1", "thm1_lo_us", "thm1_hi_us", "product_us", "sim_us"],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note("paper Fig. 10: cliff at p1 = 0.75 (hot server at 60 Kps / 75% utilization)");
    r.note("product_us is this reproduction's tighter product-form estimate (extension)");
    r
}

/// Fig. 11 — `E[T_D(N)]` vs miss ratio for small and large `N`.
#[must_use]
pub fn fig11() -> ExpResult {
    let ns: [u64; 6] = [1, 4, 10, 100, 1_000, 10_000];
    let rs = [1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1];
    let requests = if quick_mode() { 20_000 } else { 200_000 };
    let mut r = ExpResult::new(
        "fig11",
        "Fig. 11 — E[T_D(N)] (ms) vs cache miss ratio r (1/µ_D = 1 ms)",
        &[
            "r",
            "n1_model_ms",
            "n1_sim_ms",
            "n4_model_ms",
            "n4_sim_ms",
            "n10_model_ms",
            "n10_sim_ms",
            "n100_model_ms",
            "n100_sim_ms",
            "n1000_model_ms",
            "n1000_sim_ms",
            "n10000_model_ms",
            "n10000_sim_ms",
        ],
    );
    let rows = parallel_sweep(rs.to_vec(), |miss| {
        let mut row = vec![miss];
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xf1b ^ (miss * 1e6) as u64);
        for n in ns {
            let model = database::db_latency_mean(n, miss, facebook::DB_SERVICE_RATE);
            let sim = memlat_cluster::database::db_only_experiment(
                n,
                miss,
                facebook::DB_SERVICE_RATE,
                0.01,
                requests,
                &mut rng,
            );
            row.push(model * 1e3);
            row.push(sim.mean_td * 1e3);
        }
        row
    });
    for row in rows {
        r.push_row(row);
    }
    r.note("paper Fig. 11: Θ(r) growth for small N (left panel), Θ(log r) for large N (right)");
    r.note(
        "sim exceeds eq. 23 systematically for moderate N·r — the ln(K+1) bias (EXPERIMENTS.md)",
    );
    r
}

/// Fig. 12 — `E[T_S(N)]` vs number of keys `N ∈ [1, 10⁴]`.
#[must_use]
pub fn fig12() -> ExpResult {
    let params = base_params();
    let model = ServerLatencyModel::new(&params).expect("stable");
    // One long simulation pooled across all N (the quantile estimator
    // reuses the same per-key population, exactly like the paper's
    // measurement methodology).
    // N = 10⁴ needs the 0.9999-quantile: bursty (GPD) arrivals correlate
    // tail samples, so the run must be long for the estimate to settle.
    let dur = if quick_mode() { 1.0 } else { 20.0 };
    // The long run is exactly where per-key buffers hurt: Summary
    // retention answers every quantile from the constant-size sketch.
    let cfg = SimConfig::new(params)
        .duration(dur)
        .warmup(0.2)
        .seed(0xf1c)
        .retention(Retention::Summary);
    let out = ClusterSim::run(&cfg).expect("stable");
    let sketch = out.pooled_latency_sketch();

    let ns: &[u64] = if quick_mode() {
        &[1, 10, 100, 1_000]
    } else {
        &[1, 3, 10, 30, 100, 300, 1_000, 3_000, 10_000]
    };
    let mut r = ExpResult::new(
        "fig12",
        "Fig. 12 — E[T_S(N)] vs number of keys N (Θ(log N) growth)",
        &["n", "model_lo_us", "model_hi_us", "sim_us"],
    );
    for &n in ns {
        let b = model.product_form_bounds(n);
        let k = memlat_stats::max_order_quantile(n);
        r.push_row(vec![
            n as f64,
            b.lower * 1e6,
            b.upper * 1e6,
            sketch.quantile(k) * 1e6,
        ]);
    }
    r.note("paper Fig. 12: logarithmic growth, ~150 µs at N=1 to ~600 µs at N=10⁴");
    r.note("the N=10⁴ sim point estimates an extreme (0.9999) quantile under bursty arrivals; expect a few % of upward noise");
    r
}

/// Fig. 13 — `E[T_D(N)]` vs number of keys `N ∈ [1, 10⁶]`.
#[must_use]
pub fn fig13() -> ExpResult {
    let ns: &[u64] = if quick_mode() {
        &[1, 100, 10_000, 1_000_000]
    } else {
        &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000]
    };
    let requests = if quick_mode() { 2_000 } else { 20_000 };
    let mut r = ExpResult::new(
        "fig13",
        "Fig. 13 — E[T_D(N)] (ms) vs number of keys N (r=0.01, Θ(log N) growth)",
        &["n", "model_ms", "model_exact_ms", "sim_ms"],
    );
    let rows = parallel_sweep(ns.to_vec(), |n| {
        let model = database::db_latency_mean(n, 0.01, facebook::DB_SERVICE_RATE);
        let exact = database::db_latency_mean_exact(n, 0.01, facebook::DB_SERVICE_RATE);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xf1d ^ n);
        let sim = memlat_cluster::database::db_only_experiment(
            n,
            0.01,
            facebook::DB_SERVICE_RATE,
            0.01,
            requests,
            &mut rng,
        );
        vec![n as f64, model * 1e3, exact * 1e3, sim.mean_td * 1e3]
    });
    for row in rows {
        r.push_row(row);
    }
    r.note("paper Fig. 13: ~0 at N=1 rising logarithmically to ~10 ms at N=10⁶");
    r
}

/// Every experiment: the paper's figures in order, then the
/// fault-tolerance extension sweep.
#[must_use]
pub fn all() -> Vec<ExpResult> {
    vec![
        table3(),
        fig04(),
        fig05(),
        fig06(),
        fig07(),
        fig08(),
        fig09(),
        table4(),
        fig10(),
        fig11(),
        fig12(),
        fig13(),
        crate::fault::fault_sweep(),
        crate::delayed_hits::delayed_hits(),
        crate::emergent_r::emergent_r(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test suite always uses the quick profile.
    fn quick() {
        std::env::set_var("MEMLAT_QUICK", "1");
    }

    #[test]
    fn table3_columns_consistent() {
        quick();
        let t = table3();
        assert_eq!(t.rows.len(), 4);
        // Model T_S row brackets the paper's band loosely.
        let lo = t.rows[1][4];
        let hi = t.rows[1][5];
        assert!(lo > 300.0 && hi < 450.0, "({lo}, {hi})");
        // Sim T_S mean within 25% of the paper's 368 µs.
        assert!(
            (t.rows[1][6] / 368.0 - 1.0).abs() < 0.25,
            "{}",
            t.rows[1][6]
        );
    }

    #[test]
    fn fig07_shows_the_cliff() {
        quick();
        let f = fig07();
        let model = f.column("model_hi_us").unwrap();
        let sim = f.column("sim_us").unwrap();
        // Latency at 75 Kps is many times the 10 Kps value, and the jump
        // from 60→75 exceeds the whole 10→50 rise: a cliff.
        assert!(model.last().unwrap() / model[0] > 5.0);
        assert!(sim.last().unwrap() / sim[0] > 4.0);
        let rise_low = model[4] - model[0]; // 10→50 Kps
        let rise_high = model[9] - model[7]; // 65→75 Kps
        assert!(rise_high > rise_low, "{rise_high} vs {rise_low}");
    }

    #[test]
    fn fig08_burstier_cliffs_earlier() {
        quick();
        let f = fig08();
        let xi0 = f.column("ts_xi00_us").unwrap();
        let xi8 = f.column("ts_xi08_us").unwrap();
        // At every λ, burstier arrivals mean higher latency.
        for (a, b) in xi0.iter().zip(&xi8) {
            assert!(b > a);
        }
        // ξ=0.8 has already exploded at 40 Kps (4× its 10 Kps value);
        // ξ=0 has not.
        let idx40 = 6; // 10 + 5*6 = 40 Kps
        assert!(xi8[idx40] / xi8[0] > 4.0, "{} {}", xi8[idx40], xi8[0]);
        assert!(xi0[idx40] / xi0[0] < 2.5);
    }

    #[test]
    fn fig11_regimes() {
        quick();
        let f = fig11();
        let r_col = f.column("r").unwrap();
        let n4 = f.column("n4_model_ms").unwrap();
        let n10k = f.column("n10000_model_ms").unwrap();
        // Small N: 10× the miss ratio ⇒ ~10× the latency (Θ(r)).
        let ratio_small = n4[2] / n4[0]; // r=1e-3 vs 1e-4
        assert!(ratio_small > 7.0 && ratio_small < 11.0, "{ratio_small}");
        // Large N, once N·r ≫ 1: 10× the miss ratio moves latency by a
        // ~constant step (Θ(log r)), far below 10×.
        let ratio_large = n10k[4] / n10k[2]; // r=1e-2 vs 1e-3
        assert!(ratio_large < 3.0, "{ratio_large}");
        assert_eq!(r_col.len(), 7);
    }

    #[test]
    fn fig13_logarithmic() {
        quick();
        let f = fig13();
        let model = f.column("model_ms").unwrap();
        let sim = f.column("sim_ms").unwrap();
        // Equal decade steps of N (quick: 1→100→10⁴→10⁶) add roughly
        // equal latency once N·r ≫ 1.
        let d1 = model[2] - model[1];
        let d2 = model[3] - model[2];
        assert!((d2 / d1 - 1.0).abs() < 0.3, "{d1} {d2}");
        // Sim tracks the exact column better than eq. 23 at mid N.
        let exact = f.column("model_exact_ms").unwrap();
        for i in 1..sim.len() {
            assert!(
                (sim[i] / exact[i] - 1.0).abs() < 0.25,
                "i={i}: {} vs {}",
                sim[i],
                exact[i]
            );
        }
    }

    #[test]
    fn table4_close_to_paper() {
        let t = table4();
        let err = t.column("abs_err").unwrap();
        assert!(err.iter().all(|&e| e < 0.09), "{err:?}");
    }
}
