//! Emergent-miss-ratio sweep: the Table 3 latency pipeline re-run with
//! `r` as an *output* of consistent-hash routing + LRU servers instead
//! of the paper's exogenous 1% constant.
//!
//! Each regime runs in two phases on fixed seeds:
//!
//! 1. **Emerge** — a routed, cache-backed cluster (128-vnode ring, one
//!    slab/LRU store per server, Zipf keyspace of 1 M) is simulated on a
//!    rate-compressed clock until the fleet warms, and its miss ratio
//!    *emerges* from memory budget × skew. The Ji/Quan/Tan asymptotic
//!    (arXiv 1801.02436) and the finite-size Che solution are evaluated
//!    at the measured occupancy for reference — the conformance harness
//!    gates these, the sweep reports them.
//! 2. **Propagate** — the paper's own Table 3 machinery (default
//!    parameters, `N = 150` fan-out, request assembly) is re-run with
//!    the emergent `r` in place of the constant, giving the simulated
//!    `E[T_S(N)]`/`E[T_D(N)]`/`E[T(N)]` the fleet would actually see.
//!    Columns compare the constant-`r` closed form (eq. 23 at 1%)
//!    against both the emergent-`r` closed form and the emergent-`r`
//!    simulation: where they split is where the paper's constant-`r`
//!    assumption breaks.

use memlat_cluster::{
    run_replications, CacheBackedConfig, CacheRouting, ClusterSim, MissMode, Retention, SimConfig,
};
use memlat_model::asymptotics::{che_miss_ratio, lru_miss_ratio_asymptotic};
use memlat_model::ModelParams;

use crate::ExpResult;
use crate::{parallel_sweep, quick_mode, request_count, sim_duration};

const SEED: u64 = 0xE44E;
/// Zipf key-space of the routed fleet.
const KEYSPACE: u64 = 1_000_000;
/// Virtual nodes per server on the ring.
const VNODES: usize = 128;
const MEAN_VALUE_BYTES: f64 = 1_000.0;

/// One sweep regime: per-server memory budget × popularity skew.
struct Regime {
    mem_mib: usize,
    skew: f64,
}

/// Phase 1: emerge the miss ratio on a rate-compressed clock (key and
/// service rates scaled together leave `r` untouched but let the LRU
/// warm through its fill phase; 4× service headroom keeps the ring's
/// hottest server — which owns the Zipf head — stationary).
fn emerge(r: &Regime, seed: u64) -> (u64, f64) {
    let params = ModelParams::builder()
        .key_rate_per_server(200_000.0)
        .service_rate(800_000.0)
        .db_service_rate(50_000.0)
        .build()
        .expect("valid emerge-phase params");
    let (warmup, duration) = if quick_mode() {
        (0.6, 0.3)
    } else {
        (1.5, 0.75)
    };
    let cfg = SimConfig::new(params)
        .duration(duration)
        .warmup(warmup)
        .seed(seed)
        .db_shards(64)
        .retention(Retention::Summary)
        .miss_mode(MissMode::CacheBacked(CacheBackedConfig {
            memory_bytes: r.mem_mib << 20,
            keyspace: KEYSPACE,
            skew: r.skew,
            mean_value_bytes: MEAN_VALUE_BYTES,
            routing: CacheRouting::ConsistentHash { vnodes: VNODES },
        }));
    let out = ClusterSim::run(&cfg).expect("emerge-phase run");
    (out.cached_items(), out.miss_ratio())
}

/// Emergent-r sweep — memory budget × skew, each regime's emergent miss
/// ratio propagated through the paper's Table 3 pipeline.
#[must_use]
pub fn emergent_r() -> ExpResult {
    let regimes: Vec<Regime> = {
        let mut v = Vec::new();
        for &skew in &[1.3, 1.4, 1.5] {
            for &mem_mib in &[4usize, 8, 16] {
                v.push(Regime { mem_mib, skew });
            }
        }
        v
    };

    let rows = parallel_sweep(regimes, |r| {
        let seed = SEED ^ ((r.mem_mib as u64) << 8) ^ (r.skew * 100.0) as u64;
        let (cached_items, emergent) = emerge(&r, seed);
        let x = cached_items as f64;
        let jqt = lru_miss_ratio_asymptotic(KEYSPACE, r.skew, x).expect("skew > 1");
        let che = che_miss_ratio(KEYSPACE, r.skew, x).expect("valid Che point");

        // Phase 2: the paper's operating point with the emergent r.
        let base = ModelParams::builder().build().expect("paper defaults");
        let n = base.keys_per_request();
        let with_r = base
            .with_miss_ratio(emergent)
            .expect("emergent r is a valid ratio");
        let td_const = base.estimate().expect("paper estimate").database;
        let td_emergent = with_r.estimate().expect("emergent estimate").database;
        let reps = if quick_mode() { 2 } else { 4 };
        let cfg = SimConfig::new(with_r)
            .duration(sim_duration().min(1.5))
            .warmup(0.1)
            .seed(seed ^ 0xF00D);
        let stats = run_replications(&cfg, n, reps, request_count()).expect("propagate-phase run");

        vec![
            r.mem_mib as f64,
            r.skew,
            cached_items as f64,
            emergent * 100.0,
            jqt * 100.0,
            che * 100.0,
            stats.ts.mean * 1e6,
            stats.td.mean * 1e6,
            stats.total.mean * 1e6,
            td_const * 1e6,
            td_emergent * 1e6,
            100.0 * (td_const / stats.td.mean - 1.0),
            100.0 * (td_emergent / stats.td.mean - 1.0),
        ]
    });

    let mut r = ExpResult::new(
        "emergent_r",
        "Emergent miss ratio — consistent-hash + LRU fleet, propagated through Table 3",
        &[
            "mem_mib",
            "skew",
            "cached_items",
            "emergent_r_pct",
            "jqt_r_pct",
            "che_r_pct",
            "ts_sim_us",
            "td_sim_us",
            "total_sim_us",
            "td_const_us",
            "td_emergent_us",
            "const_td_err_pct",
            "emergent_td_err_pct",
        ],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note(format!(
        "phase 1: 4-server ring ({VNODES} vnodes/server), Zipf keyspace {KEYSPACE}, \
         per-server slab/LRU of mem_mib; r emerges and is read off with the fleet \
         occupancy (cached_items = the x both predictions use)"
    ));
    r.note(
        "jqt_r = Ji/Quan/Tan asymptotic (c/α)·Γ(1−1/α)^α·x^{−(α−1)}; che_r = \
         finite-size Che reference; the conformance harness gates these, the sweep \
         maps them",
    );
    r.note(
        "phase 2: the paper's Table 3 point re-simulated with miss_ratio = emergent r; \
         td_const is eq. 23 at the paper's constant 1% — const_td_err_pct is how far \
         the constant-r prediction sits from the emergent-r fleet's simulated E[T_D(N)], \
         emergent_td_err_pct how far eq. 23 sits once fed the emergent r",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() {
        std::env::set_var("MEMLAT_QUICK", "1");
    }

    #[test]
    fn emergent_r_story_holds() {
        quick();
        let f = emergent_r();
        assert_eq!(f.rows.len(), 9, "3 skews × 3 memory budgets");
        let mem = f.column("mem_mib").unwrap();
        let skew = f.column("skew").unwrap();
        let cached = f.column("cached_items").unwrap();
        let r_pct = f.column("emergent_r_pct").unwrap();
        let jqt = f.column("jqt_r_pct").unwrap();
        let che = f.column("che_r_pct").unwrap();
        let td_sim = f.column("td_sim_us").unwrap();
        let const_err = f.column("const_td_err_pct").unwrap();
        let emergent_err = f.column("emergent_td_err_pct").unwrap();
        for i in 0..f.rows.len() {
            assert!(cached[i] > 1_000.0, "row {i}: cold cache");
            assert!(r_pct[i] > 0.0 && r_pct[i] < 50.0, "row {i}: {}", r_pct[i]);
            assert!(td_sim[i] > 0.0);
            // The asymptotic tracks the emergent ratio to within its
            // documented finite-size bias envelope.
            assert!(
                (r_pct[i] / jqt[i] - 1.0).abs() < 0.5,
                "row {i}: emergent {} vs jqt {}",
                r_pct[i],
                jqt[i]
            );
            assert!(
                (r_pct[i] / che[i] - 1.0).abs() < 0.25,
                "row {i}: emergent {} vs che {}",
                r_pct[i],
                che[i]
            );
            // Where the emergent ratio leaves the paper's 1% materially,
            // feeding eq. 23 the emergent r must beat the constant.
            if (r_pct[i] / 1.0 - 1.0).abs() > 0.5 {
                assert!(
                    emergent_err[i].abs() < const_err[i].abs(),
                    "row {i}: emergent-r closed form ({}%) no better than \
                     constant-r ({}%) at r = {}%",
                    emergent_err[i],
                    const_err[i],
                    r_pct[i]
                );
            }
        }
        // More memory ⇒ fewer misses, within each skew.
        for i in 0..f.rows.len() {
            for j in 0..f.rows.len() {
                if skew[i] == skew[j] && mem[i] < mem[j] {
                    assert!(
                        r_pct[j] < r_pct[i],
                        "mem {} did not miss less than {} at skew {}",
                        mem[j],
                        mem[i],
                        skew[i]
                    );
                    assert!(cached[j] > cached[i]);
                }
            }
        }
    }
}
