//! Ablation and extension experiments beyond the paper's figures.
//!
//! Run with `cargo run --release -p memlat-experiments --bin ablations`.
//! Each returns an [`ExpResult`] like the paper artifacts do; findings
//! are summarized in EXPERIMENTS.md.

use memlat_cluster::{
    assembly::{assemble_requests, assemble_requests_replicated},
    e2e, ClusterSim, SimConfig, SimScratch,
};
use memlat_model::{database, LoadDistribution, ModelParams, ServerLatencyModel};
use rand::SeedableRng;

use crate::{parallel_sweep, parallel_sweep_with, quick_mode, sim_duration, ExpResult};

/// Redundancy trade-off ("low latency via redundancy", the paper's
/// related work \[12\]): dispatch every key to `R` replicas and keep the
/// fastest — which multiplies every server's load by `R`.
///
/// For each base per-server rate `λ₀`, compares plain operation against
/// duplicated operation at the doubled load, exposing the crossover: at
/// low utilization redundancy wins, near the cliff the extra load
/// dominates.
#[must_use]
pub fn ablation_redundancy() -> ExpResult {
    let lams: Vec<f64> = vec![10e3, 15e3, 20e3, 25e3, 30e3, 35e3];
    let n = 150;
    let requests = if quick_mode() { 4_000 } else { 20_000 };
    let rows = parallel_sweep_with(lams, SimScratch::new, |scratch, lam0| {
        let run = |rate: f64, seed: u64, scratch: &mut SimScratch| {
            let params = ModelParams::builder()
                .key_rate_per_server(rate)
                .build()
                .unwrap();
            ClusterSim::run_with(
                &SimConfig::new(params)
                    .duration(sim_duration())
                    .warmup(0.2)
                    .seed(seed),
                scratch,
            )
            .unwrap()
        };
        // Plain: load λ₀, one copy per key.
        let plain_out = run(lam0, 0xab1, scratch);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xab2);
        let plain = assemble_requests(&plain_out, n, requests, &mut rng).ts.mean;
        // Redundant: load 2λ₀ (every key stored and queried twice),
        // min-of-2 per key.
        let dup_out = run(2.0 * lam0, 0xab3, scratch);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xab4);
        let dup = assemble_requests_replicated(&dup_out, n, requests, 2, &mut rng)
            .ts
            .mean;
        vec![
            lam0 / 1e3,
            plain * 1e6,
            dup * 1e6,
            if dup < plain { 1.0 } else { 0.0 },
        ]
    });
    let mut r = ExpResult::new(
        "ablation_redundancy",
        "Ablation — duplicate-to-2-replicas vs plain (E[T_S(N)], load doubled by redundancy)",
        &["lambda0_kps", "plain_us", "redundant_us", "redundancy_wins"],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note(
        "redundancy wins while 2λ₀ stays well below the cliff; past it the extra load dominates",
    );
    r
}

/// Bound tightness: the paper's closed-form Theorem 1 band (Prop. 1 via
/// the heaviest server) vs this reproduction's product-form estimate vs
/// simulation, across load imbalance.
#[must_use]
pub fn ablation_bound_tightness() -> ExpResult {
    let p1s: Vec<f64> = vec![0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85];
    let rows = parallel_sweep_with(p1s, SimScratch::new, |scratch, p1| {
        let params = ModelParams::builder()
            .load(if p1 <= 0.25 {
                LoadDistribution::Balanced
            } else {
                LoadDistribution::HotServer { p1 }
            })
            .total_key_rate(80_000.0)
            .build()
            .unwrap();
        let model = ServerLatencyModel::new(&params).unwrap();
        let wide = model.theorem1_bounds(150);
        let tight = model.product_form_bounds(150);
        let cfg = SimConfig::new(params)
            .duration(sim_duration())
            .warmup(0.2)
            .seed(0xab5);
        let sim = ClusterSim::run_with(&cfg, scratch)
            .unwrap()
            .expected_server_latency(150);
        vec![
            p1,
            wide.width() / wide.upper,
            tight.width() / tight.upper,
            (tight.upper / sim - 1.0).abs(),
        ]
    });
    let mut r = ExpResult::new(
        "ablation_bounds",
        "Ablation — relative width of Theorem-1 band vs product form, and product-vs-sim error",
        &[
            "p1",
            "thm1_rel_width",
            "product_rel_width",
            "product_vs_sim_err",
        ],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note("the product form stays within a few % of simulation at every imbalance; the closed form widens with p1");
    r
}

/// Database estimators: eq. 23 vs the exact binomial×harmonic value
/// across the `N·r` axis that controls the approximation error.
#[must_use]
pub fn ablation_db_estimators() -> ExpResult {
    let mut r = ExpResult::new(
        "ablation_db",
        "Ablation — eq. 23 vs exact E[T_D(N)] (ms) across N·r",
        &["n", "r", "n_times_r", "eq23_ms", "exact_ms", "rel_gap"],
    );
    for (n, miss) in [
        (10u64, 1e-3),
        (10, 1e-2),
        (100, 1e-3),
        (100, 1e-2),
        (150, 1e-2),
        (1_000, 1e-3),
        (1_000, 1e-2),
        (10_000, 1e-2),
        (100_000, 1e-2),
    ] {
        let eq23 = database::db_latency_mean(n, miss, 1_000.0);
        let exact = database::db_latency_mean_exact(n, miss, 1_000.0);
        r.push_row(vec![
            n as f64,
            miss,
            n as f64 * miss,
            eq23 * 1e3,
            exact * 1e3,
            (exact - eq23) / exact,
        ]);
    }
    r.note("the gap peaks (~30–45%) around N·r ≈ 0.1–1 and fades as N·r grows (both → ln(N·r)+γ)");
    r
}

/// Independence-assumption error (eq. 10): end-to-end (true fan-out
/// correlation) over assembly (independent draws), as the fan-out
/// concentration `N/M` varies.
#[must_use]
pub fn ablation_independence() -> ExpResult {
    let ms: Vec<usize> = vec![4, 8, 16, 32];
    let n = 150;
    let requests = if quick_mode() { 3_000 } else { 12_000 };
    let rows = parallel_sweep_with(ms, SimScratch::new, |scratch, m| {
        let params = ModelParams::builder()
            .servers(m)
            .key_rate_per_server(62_500.0)
            .build()
            .unwrap();
        let out = ClusterSim::run_with(
            &SimConfig::new(params.clone())
                .duration(sim_duration())
                .warmup(0.2)
                .seed(0xab6),
            scratch,
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xab7);
        let indep = assemble_requests(&out, n, requests, &mut rng).ts.mean;
        let corr = e2e::run_e2e(&e2e::E2eConfig::new(params).requests(requests).seed(0xab8))
            .unwrap()
            .ts
            .mean;
        vec![
            m as f64,
            n as f64 / m as f64,
            indep * 1e6,
            corr * 1e6,
            corr / indep,
        ]
    });
    let mut r = ExpResult::new(
        "ablation_independence",
        "Ablation — true fan-out (e2e) vs independent-draw assembly, E[T_S(N)]",
        &[
            "servers",
            "keys_per_server_per_req",
            "assembly_us",
            "e2e_us",
            "ratio",
        ],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note("the model's independence assumption costs a factor ~N/M·q-ish in burst: ratio falls toward 1 as M grows");
    r
}

/// Eviction-policy ablation: slab/LRU vs Greedy-Dual cost-aware caching
/// (the paper's related work \[19\], GD-Wheel) under heterogeneous
/// database refetch costs.
///
/// Workload: Zipf(1.01) keys; 10% of keys ("hot-cost") take 10× the
/// database time. Both caches see the identical key sequence and byte
/// budget; the metric that matters for latency is the **mean refetch
/// cost per lookup** (the database stage's contribution), not the raw
/// miss ratio.
#[must_use]
pub fn ablation_eviction_policy() -> ExpResult {
    use memlat_cache::{CostAwareCache, Store, StoreConfig};
    use memlat_dist::Discrete;

    let keyspace = 200_000u64;
    let zipf = memlat_dist::Zipf::new(keyspace, 1.01).unwrap();
    let accesses = if quick_mode() {
        300_000usize
    } else {
        2_000_000
    };
    let value_size = 300usize;
    // Per-key refetch cost (ms): keys whose hash lands in the top decile
    // are served by a slow backend.
    let cost_of = |key: u64| {
        if memlat_workload::placement::mix64(key).is_multiple_of(10) {
            10.0
        } else {
            1.0
        }
    };

    let budgets_mb = [4usize, 16, 64];
    let rows = parallel_sweep(budgets_mb.to_vec(), |mb| {
        let budget = mb << 20;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xab9 + mb as u64);
        let mut lru = Store::new(StoreConfig::with_memory(budget)).unwrap();
        let mut gdw = CostAwareCache::new(budget).unwrap();
        let mut lru_misses = 0u64;
        let mut lru_cost = 0.0f64;
        for _ in 0..accesses {
            let key = zipf.sample(&mut rng) - 1;
            let cost = cost_of(key);
            // LRU path (manual cost accounting).
            if lru.get(key, 0.0).is_miss() {
                lru_misses += 1;
                lru_cost += cost;
                let _ = lru.set(key, value_size, None, 0.0);
            }
            // Greedy-Dual path.
            if !gdw.get(key, cost) {
                gdw.insert(key, value_size + 80, cost);
            }
        }
        let lru_miss_ratio = lru_misses as f64 / accesses as f64;
        let lru_cost_per_lookup = lru_cost / accesses as f64;
        let g = gdw.stats();
        vec![
            mb as f64,
            lru_miss_ratio,
            g.miss_ratio(),
            lru_cost_per_lookup,
            g.cost_per_lookup(),
            lru_cost_per_lookup / g.cost_per_lookup().max(1e-12),
        ]
    });
    let mut r = ExpResult::new(
        "ablation_eviction",
        "Ablation — LRU vs Greedy-Dual (cost-aware) eviction, heterogeneous db costs",
        &[
            "budget_mb",
            "lru_miss_ratio",
            "gdw_miss_ratio",
            "lru_cost_ms_per_lookup",
            "gdw_cost_ms_per_lookup",
            "lru_over_gdw_cost",
        ],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note("GDW may miss slightly MORE often yet cost LESS per lookup — the related-work claim that miss *cost*, not count, drives E[T_D]");
    r
}

/// Validates the closed-form law of `T(N)`
/// (`memlat_model::RequestLatencyLaw`) against simulated request samples
/// via the Kolmogorov–Smirnov distance, across miss ratios.
#[must_use]
pub fn ablation_request_law() -> ExpResult {
    use memlat_model::RequestLatencyLaw;
    let rs = [0.0f64, 0.001, 0.01, 0.05];
    let requests = if quick_mode() { 4_000 } else { 30_000 };
    let rows = parallel_sweep_with(rs.to_vec(), SimScratch::new, |scratch, miss| {
        let params = ModelParams::builder().miss_ratio(miss).build().unwrap();
        let law = RequestLatencyLaw::new(&params).unwrap();
        let out = ClusterSim::run_with(
            &SimConfig::new(params.clone())
                .duration(sim_duration())
                .warmup(0.2)
                .seed(0xaba),
            scratch,
        )
        .unwrap();
        // Raw request samples (not just means): draw totals directly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xabb);
        let mut samples = Vec::with_capacity(requests);
        let shares = out.shares().to_vec();
        use rand::RngCore;
        for _ in 0..requests {
            let counts =
                memlat_dist::multinomial_counts(params.keys_per_request(), &shares, &mut rng)
                    .unwrap();
            let mut worst = 0.0f64;
            for (j, &c) in counts.iter().enumerate() {
                let recs = out.records(j);
                for _ in 0..c {
                    let (s, d) = recs.get((rng.next_u64() % recs.len() as u64) as usize);
                    worst = worst.max(f64::from(s) + f64::from(d));
                }
            }
            samples.push(params.network_latency() + worst);
        }
        let ecdf = memlat_stats::Ecdf::from_samples(&samples);
        let ks = ecdf.ks_distance(|t| law.cdf(t));
        let mean_err = (ecdf.mean() / law.mean() - 1.0).abs();
        vec![miss, law.mean() * 1e6, ecdf.mean() * 1e6, ks, mean_err]
    });
    let mut r = ExpResult::new(
        "ablation_request_law",
        "Ablation — closed-form T(N) law vs simulated request samples (KS distance)",
        &[
            "miss_ratio",
            "law_mean_us",
            "sim_mean_us",
            "ks_distance",
            "rel_mean_err",
        ],
    );
    for row in rows {
        r.push_row(row);
    }
    r.note("small KS ⇒ the analytic distribution (not just the mean) matches the simulated one");
    r.note(
        "KS shrinks as r grows: the (exactly iid-exponential) database maxima dominate; at r=0 \
            the residual is finite-sample burst correlation in the server records",
    );
    r
}

/// All ablations.
#[must_use]
pub fn all() -> Vec<ExpResult> {
    vec![
        ablation_redundancy(),
        ablation_bound_tightness(),
        ablation_db_estimators(),
        ablation_independence(),
        ablation_eviction_policy(),
        ablation_request_law(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() {
        std::env::set_var("MEMLAT_QUICK", "1");
    }

    #[test]
    fn db_ablation_gap_shape() {
        let t = ablation_db_estimators();
        let gaps = t.column("rel_gap").unwrap();
        let nxr = t.column("n_times_r").unwrap();
        // All gaps positive (eq. 23 underestimates) and the largest gap
        // occurs at small-to-moderate N·r.
        assert!(gaps.iter().all(|&g| g > 0.0));
        let (mut max_gap, mut argmax) = (0.0, 0.0);
        for (&g, &x) in gaps.iter().zip(&nxr) {
            if g > max_gap {
                max_gap = g;
                argmax = x;
            }
        }
        assert!(argmax <= 1.0, "peak gap at N·r={argmax}");
        assert!(max_gap > 0.25 && max_gap < 0.5, "{max_gap}");
        // Gap at the largest N·r is the smallest of the high-N·r rows.
        assert!(*gaps.last().unwrap() < 0.1);
    }

    #[test]
    fn redundancy_crossover_exists() {
        quick();
        let t = ablation_redundancy();
        let wins = t.column("redundancy_wins").unwrap();
        // Redundancy wins at the lightest load and loses at the heaviest.
        assert_eq!(wins[0], 1.0, "redundancy should win at 10 Kps");
        assert_eq!(
            *wins.last().unwrap(),
            0.0,
            "redundancy should lose at 35 Kps (70 Kps doubled)"
        );
    }

    #[test]
    fn cost_aware_eviction_beats_lru_on_cost() {
        quick();
        let t = ablation_eviction_policy();
        let advantage = t.column("lru_over_gdw_cost").unwrap();
        // At every budget, GDW's cost per lookup is at most LRU's (ratio
        // ≥ 1), and strictly better at the tight budgets.
        assert!(advantage.iter().all(|&a| a > 0.95), "{advantage:?}");
        assert!(
            advantage[0] > 1.02,
            "no cost advantage at the tightest budget: {advantage:?}"
        );
    }

    #[test]
    fn independence_ratio_falls_with_servers() {
        quick();
        let t = ablation_independence();
        let ratio = t.column("ratio").unwrap();
        assert!(ratio[0] > ratio[ratio.len() - 1], "{ratio:?}");
        assert!(ratio[0] > 1.5);
    }
}
