//! Probe: far-tail of simulated per-key latency vs GI/M/1 law.
use memlat_cluster::{ClusterSim, SimConfig};
use memlat_model::{ArrivalPattern, ModelParams, ServerLatencyModel};

fn run(pattern: ArrivalPattern, label: &str) {
    let params = ModelParams::builder().arrival(pattern).build().unwrap();
    let model = ServerLatencyModel::new(&params).unwrap();
    let q1 = model.heaviest_queue();
    let cfg = SimConfig::new(params).duration(20.0).warmup(0.5).seed(77);
    let out = ClusterSim::run(&cfg).unwrap();
    let ecdf = out.server_latency_ecdf();
    println!("{label}: delta={:.5} samples={}", q1.delta(), ecdf.len());
    for k in [0.99, 0.999, 0.9995, 0.9999] {
        let (lo, hi) = q1.key_latency_quantile_bounds(k);
        let sim = ecdf.quantile(k);
        println!(
            "  k={k}: band=({:.1},{:.1})us sim={:.1}us",
            lo * 1e6,
            hi * 1e6,
            sim * 1e6
        );
    }
}

fn main() {
    run(ArrivalPattern::Poisson, "poisson");
    run(ArrivalPattern::GeneralizedPareto { xi: 0.15 }, "gpd015");
}
