//! Goodness-of-fit tests: Kolmogorov–Smirnov and chi-square.
//!
//! The conformance harness needs to answer one question many times:
//! *does this stream of simulator samples actually follow the law the
//! analytical model claims?* These primitives turn a sample set plus a
//! closed-form CDF/PMF into a statistic and an asymptotic p-value, so a
//! sampler bug fails a `p ≥ α` assertion instead of silently skewing a
//! latency sweep.
//!
//! # Examples
//!
//! ```
//! use memlat_stats::gof::ks_one_sample;
//! // 1000 points of an exact uniform grid against the U(0,1) CDF.
//! let xs: Vec<f64> = (1..=1000).map(|i| f64::from(i) / 1001.0).collect();
//! let t = ks_one_sample(&xs, |x| x.clamp(0.0, 1.0));
//! assert!(t.p_value > 0.99);
//! ```

use crate::ecdf::Ecdf;

/// Outcome of a goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GofTest {
    /// The test statistic (KS sup-distance `D`, or the chi-square sum).
    pub statistic: f64,
    /// Asymptotic p-value: probability under H₀ of a statistic at least
    /// this extreme. Small values reject the null.
    pub p_value: f64,
}

impl GofTest {
    /// Whether the test *fails to reject* the null at significance
    /// `alpha` (i.e. the sample is consistent with the model law).
    #[must_use]
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`, clamped to `[0, 1]`.
///
/// This is the asymptotic null law of `√n·D_n`; the series converges in
/// a handful of terms for any λ of practical interest.
#[must_use]
pub fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    if lambda < 0.2 {
        // Below the support of interest the alternating series needs
        // many terms; the probability is 1 to double precision anyway.
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let k = f64::from(k);
        let term = (-2.0 * k * k * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample Kolmogorov–Smirnov test of `samples` against the model
/// CDF, with the Stephens small-sample correction
/// `λ = (√n + 0.12 + 0.11/√n)·D` feeding the asymptotic p-value.
///
/// For a *discrete* model law the p-value is conservative (the true
/// rejection probability is smaller), so `passes(α)` stays a sound
/// acceptance check.
///
/// # Panics
///
/// Panics if `samples` is empty (after NaN filtering, per
/// [`Ecdf::from_samples`]).
#[must_use]
pub fn ks_one_sample(samples: &[f64], model_cdf: impl Fn(f64) -> f64) -> GofTest {
    let ecdf = Ecdf::from_samples(samples);
    ks_from_ecdf(&ecdf, model_cdf)
}

/// One-sample KS test directly from an already-built [`Ecdf`].
#[must_use]
pub fn ks_from_ecdf(ecdf: &Ecdf, model_cdf: impl Fn(f64) -> f64) -> GofTest {
    let d = ecdf.ks_distance(model_cdf);
    let n = ecdf.len() as f64;
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    GofTest {
        statistic: d,
        p_value: kolmogorov_survival(lambda),
    }
}

/// Two-sample Kolmogorov–Smirnov test: are `a` and `b` draws from the
/// same (unknown) distribution? Uses the effective sample size
/// `n_e = n_a·n_b/(n_a+n_b)` in the asymptotic p-value.
///
/// Ties are handled by advancing both empirical CDFs through the full
/// tied group before comparing, so heavily discrete samples (e.g. two
/// Zipf key streams) get the exact sup-distance of the step functions.
///
/// # Panics
///
/// Panics if either sample is empty after NaN filtering.
#[must_use]
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> GofTest {
    let ea = Ecdf::from_samples(a);
    let eb = Ecdf::from_samples(b);
    let (xa, xb) = (ea.as_sorted(), eb.as_sorted());
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xa.len() || j < xb.len() {
        // Next sample point; advance through the whole tied group in
        // both samples before evaluating the gap.
        let x = match (xa.get(i), xb.get(j)) {
            (Some(&u), Some(&v)) => u.min(v),
            (Some(&u), None) => u,
            (None, Some(&v)) => v,
            (None, None) => unreachable!("loop condition"),
        };
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = na * nb / (na + nb);
    GofTest {
        statistic: d,
        p_value: kolmogorov_survival(ne.sqrt() * d),
    }
}

/// Pearson chi-square test of observed category counts against expected
/// counts, with `len − 1 − ddof` degrees of freedom (`ddof` = number of
/// model parameters estimated from the data, usually 0 here since the
/// model laws are fully specified).
///
/// The p-value is the upper tail of the χ²_df law, computed from the
/// regularized incomplete gamma. Categories with `expected ≤ 0` are
/// rejected — merge sparse tail bins before calling (the usual rule of
/// thumb wants expected ≥ 5 per bin for the asymptotics to hold).
///
/// # Panics
///
/// Panics if the slices differ in length, fewer than `2 + ddof`
/// categories remain, or any expected count is nonpositive.
#[must_use]
pub fn chi_square(observed: &[u64], expected: &[f64], ddof: usize) -> GofTest {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed/expected length mismatch"
    );
    assert!(
        observed.len() >= 2 + ddof,
        "chi-square needs at least {} categories, got {}",
        2 + ddof,
        observed.len()
    );
    let mut stat = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        assert!(e > 0.0, "expected count must be positive, got {e}");
        let diff = o as f64 - e;
        stat += diff * diff / e;
    }
    let df = (observed.len() - 1 - ddof) as f64;
    GofTest {
        statistic: stat,
        p_value: memlat_numerics::special::gamma_q(df / 2.0, stat / 2.0),
    }
}

/// Chi-square homogeneity test: do two count vectors over the same
/// categories come from the same underlying distribution?
///
/// Standard 2×k contingency-table statistic with `k − 1` degrees of
/// freedom; categories empty in *both* samples are skipped.
///
/// # Panics
///
/// Panics if the slices differ in length, either total is zero, or
/// fewer than two non-empty categories remain.
#[must_use]
pub fn chi_square_homogeneity(a: &[u64], b: &[u64]) -> GofTest {
    assert_eq!(a.len(), b.len(), "category count mismatch");
    let ta: u64 = a.iter().sum();
    let tb: u64 = b.iter().sum();
    assert!(ta > 0 && tb > 0, "both samples must be non-empty");
    let (ta, tb) = (ta as f64, tb as f64);
    let total = ta + tb;
    let mut stat = 0.0;
    let mut cats = 0usize;
    for (&oa, &ob) in a.iter().zip(b) {
        let col = (oa + ob) as f64;
        if col == 0.0 {
            continue;
        }
        cats += 1;
        let ea = col * ta / total;
        let eb = col * tb / total;
        stat += (oa as f64 - ea).powi(2) / ea + (ob as f64 - eb).powi(2) / eb;
    }
    assert!(cats >= 2, "need at least two occupied categories");
    let df = (cats - 1) as f64;
    GofTest {
        statistic: stat,
        p_value: memlat_numerics::special::gamma_q(df / 2.0, stat / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn exp_samples(rate: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| -(1.0 - rng.gen::<f64>()).max(1e-15).ln() / rate)
            .collect()
    }

    #[test]
    fn kolmogorov_survival_reference() {
        // Q(λ) table values: Q(0.5) ≈ 0.9639, Q(1.0) ≈ 0.2700,
        // Q(1.358) ≈ 0.05 (the classic 5% critical value), Q(2) ≈ 6.7e-4.
        assert!((kolmogorov_survival(0.5) - 0.9639).abs() < 5e-4);
        assert!((kolmogorov_survival(1.0) - 0.2700).abs() < 5e-4);
        assert!((kolmogorov_survival(1.358) - 0.05).abs() < 5e-4);
        assert!(kolmogorov_survival(2.0) < 1e-3);
        assert_eq!(kolmogorov_survival(0.0), 1.0);
        assert_eq!(kolmogorov_survival(-1.0), 1.0);
    }

    #[test]
    fn ks_accepts_correct_law() {
        let xs = exp_samples(2.0, 3000, 42);
        let t = ks_one_sample(&xs, |x| 1.0 - (-2.0 * x).exp());
        assert!(t.passes(0.01), "p={} d={}", t.p_value, t.statistic);
    }

    #[test]
    fn ks_rejects_wrong_law() {
        let xs = exp_samples(2.0, 3000, 43);
        // Claim rate 3 instead of 2: decisively rejected.
        let t = ks_one_sample(&xs, |x| 1.0 - (-3.0 * x).exp());
        assert!(t.p_value < 1e-6, "p={}", t.p_value);
        assert!(!t.passes(0.01));
    }

    #[test]
    fn ks_two_sample_same_vs_different() {
        let a = exp_samples(1.0, 2000, 1);
        let b = exp_samples(1.0, 2500, 2);
        let same = ks_two_sample(&a, &b);
        assert!(same.passes(0.01), "p={}", same.p_value);

        let c = exp_samples(1.35, 2500, 3);
        let diff = ks_two_sample(&a, &c);
        assert!(diff.p_value < 1e-4, "p={}", diff.p_value);
    }

    #[test]
    fn ks_two_sample_handles_ties() {
        // Identical heavily-tied discrete samples: D = 0, p = 1.
        let a: Vec<f64> = (0..900).map(|i| f64::from(i % 3)).collect();
        let b: Vec<f64> = (0..600).map(|i| f64::from(i % 3)).collect();
        let t = ks_two_sample(&a, &b);
        assert_eq!(t.statistic, 0.0);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn chi_square_fair_die() {
        // 6000 rolls of a fair die, near-uniform counts.
        let observed = [1005u64, 998, 1003, 989, 1011, 994];
        let expected = [1000.0; 6];
        let t = chi_square(&observed, &expected, 0);
        assert!(t.statistic < 1.0);
        assert!(t.p_value > 0.9);
    }

    #[test]
    fn chi_square_rejects_biased_die() {
        let observed = [1500u64, 900, 900, 900, 900, 900];
        let expected = [1000.0; 6];
        let t = chi_square(&observed, &expected, 0);
        assert!(t.p_value < 1e-10, "p={}", t.p_value);
    }

    #[test]
    fn chi_square_df_reference() {
        // A statistic equal to the 95th percentile of χ²_5 (≈ 11.0705)
        // must give p ≈ 0.05.
        let observed = [0u64; 6]; // counts unused below; build stat directly
        let _ = observed;
        let p = memlat_numerics::special::gamma_q(2.5, 11.0705 / 2.0);
        assert!((p - 0.05).abs() < 1e-4, "p={p}");
    }

    #[test]
    fn homogeneity_accepts_and_rejects() {
        let a = [500u64, 300, 200, 0];
        let b = [1010u64, 590, 400, 0];
        let same = chi_square_homogeneity(&a, &b);
        assert!(same.passes(0.01), "p={}", same.p_value);

        let c = [200u64, 300, 500, 0];
        let diff = chi_square_homogeneity(&a, &c);
        assert!(diff.p_value < 1e-10, "p={}", diff.p_value);
    }

    #[test]
    #[should_panic(expected = "expected count must be positive")]
    fn chi_square_rejects_zero_expected() {
        let _ = chi_square(&[1, 2, 3], &[1.0, 0.0, 2.0], 0);
    }
}
