//! One-pass mean/variance accumulation (Welford).

/// Streaming mean, variance, min and max over `f64` samples.
///
/// Uses Welford's algorithm, which is numerically stable for the long
/// accumulation runs the simulator produces (10⁶–10⁸ samples).
///
/// # Examples
///
/// ```
/// use memlat_stats::StreamingStats;
///
/// let mut s = StreamingStats::new();
/// s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a block of samples — bit-identical to pushing each element in
    /// order (Welford's recurrence is inherently sequential, so the win is
    /// one call and one bounds check per block instead of per sample).
    #[inline]
    pub fn push_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`/n`); 0 when fewer than two samples.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`/(n−1)`); 0 when fewer than two samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for StreamingStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s: StreamingStats = [5.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn textbook_variance() {
        let s: StreamingStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.population_variance(), 4.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let whole: StreamingStats = xs.iter().copied().collect();
        let mut a: StreamingStats = xs[..300].iter().copied().collect();
        let b: StreamingStats = xs[300..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: StreamingStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&StreamingStats::new());
        assert_eq!(s, before);
        let mut e = StreamingStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerical_stability_with_large_offset() {
        // Welford keeps precision where naive Σx² fails.
        let offset = 1e9;
        let s: StreamingStats = (0..10_000).map(|i| offset + (i % 7) as f64).collect();
        assert!((s.mean() - (offset + 3.0)).abs() < 1e-3);
        assert!(s.population_variance() > 3.9 && s.population_variance() < 4.1);
    }
}
