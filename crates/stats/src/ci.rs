//! Confidence intervals for sample means.

use std::fmt;

use crate::streaming::StreamingStats;

/// A two-sided confidence interval for a mean.
///
/// The paper's Table 3 quotes confidence intervals for each measured
/// latency; the simulator reports the same.
///
/// # Examples
///
/// ```
/// use memlat_stats::{ConfidenceInterval, StreamingStats};
/// let s: StreamingStats = (0..10_000).map(|i| (i % 100) as f64).collect();
/// let ci = ConfidenceInterval::for_mean(&s, 0.95);
/// assert!(ci.contains(49.5));
/// assert!(ci.half_width() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Lower endpoint.
    pub lower: f64,
    /// Upper endpoint.
    pub upper: f64,
    /// Confidence level in `(0, 1)`, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Builds a normal-approximation CI for the mean of the accumulated
    /// samples: `mean ± z · s/√n`.
    ///
    /// Valid for the large sample counts the simulator produces (CLT);
    /// for `n < 2` the interval degenerates to the point estimate.
    ///
    /// # Panics
    ///
    /// Panics unless `level ∈ (0, 1)`.
    #[must_use]
    pub fn for_mean(stats: &StreamingStats, level: f64) -> Self {
        assert!(
            level > 0.0 && level < 1.0,
            "level must be in (0,1), got {level}"
        );
        let mean = stats.mean();
        let half = z_value(level) * stats.std_error();
        Self {
            mean,
            lower: mean - half,
            upper: mean + half,
            level,
        }
    }

    /// Builds a Student-t CI for the mean of the accumulated samples:
    /// `mean ± t_{n−1} · s/√n`.
    ///
    /// This is the right interval when `n` is the handful of independent
    /// *replications* the conformance harness runs (t_{2} at 95% is 4.30
    /// vs the normal 1.96 — the normal interval would claim far more
    /// precision than three replications deliver). For `n < 2` the
    /// interval degenerates to the point estimate.
    ///
    /// # Panics
    ///
    /// Panics unless `level ∈ (0, 1)`.
    #[must_use]
    pub fn for_mean_t(stats: &StreamingStats, level: f64) -> Self {
        assert!(
            level > 0.0 && level < 1.0,
            "level must be in (0,1), got {level}"
        );
        let mean = stats.mean();
        let half = if stats.count() < 2 {
            0.0
        } else {
            t_value(level, stats.count() - 1) * stats.std_error()
        };
        Self {
            mean,
            lower: mean - half,
            upper: mean + half,
            level,
        }
    }

    /// Half-width of the interval.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        0.5 * (self.upper - self.lower)
    }

    /// Half-width relative to the point estimate's magnitude
    /// (0 when the mean is 0) — the mechanical tolerance-widening term
    /// the conformance harness adds to its declared relative tolerances.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.half_width() / self.mean.abs()
        }
    }

    /// Whether `x` lies inside the interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower && x <= self.upper
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} [{:.6}, {:.6}] @{:.0}%",
            self.mean,
            self.lower,
            self.upper,
            self.level * 100.0
        )
    }
}

/// Two-sided standard-normal critical value `z` with
/// `P{|Z| ≤ z} = level`.
///
/// Uses Acklam's rational approximation of the normal quantile
/// (|ε| < 1.15e-9), which is plenty for reporting CIs.
///
/// # Panics
///
/// Panics unless `level ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// let z = memlat_stats::ci::z_value(0.95);
/// assert!((z - 1.959_964).abs() < 1e-4);
/// ```
#[must_use]
pub fn z_value(level: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "level must be in (0,1), got {level}"
    );
    normal_quantile(0.5 + level / 2.0)
}

/// Two-sided Student-t critical value with `df` degrees of freedom:
/// the `t` with `P{|T_df| ≤ t} = level`.
///
/// Computed by bisecting the exact t CDF
/// `F(t) = 1 − ½·I_{df/(df+t²)}(df/2, ½)` (regularized incomplete
/// beta), so it is accurate at the tiny `df` replication counts
/// produce — where the normal approximation is badly overconfident.
/// Converges to [`z_value`] as `df → ∞`.
///
/// # Panics
///
/// Panics unless `level ∈ (0, 1)` and `df ≥ 1`.
///
/// # Examples
///
/// ```
/// let t = memlat_stats::ci::t_value(0.95, 2);
/// assert!((t - 4.302_653).abs() < 1e-4);
/// ```
#[must_use]
pub fn t_value(level: f64, df: u64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "level must be in (0,1), got {level}"
    );
    assert!(df >= 1, "t_value requires df >= 1");
    let nu = df as f64;
    // P{|T| ≤ t} = 1 − I_{ν/(ν+t²)}(ν/2, 1/2).
    let two_sided =
        |t: f64| 1.0 - memlat_numerics::special::beta_inc(nu / 2.0, 0.5, nu / (nu + t * t));
    // Bracket: the t quantile is at least the normal one; double until
    // the CDF crosses the level (df=1 at 99.9% is ~636, so start wide).
    let mut lo = 0.0;
    let mut hi = z_value(level).max(1.0);
    while two_sided(hi) < level {
        lo = hi;
        hi *= 2.0;
        assert!(hi.is_finite(), "t_value bracket diverged");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if two_sided(mid) < level {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Acklam's inverse normal CDF approximation.
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_reference_values() {
        assert!((z_value(0.90) - 1.644_854).abs() < 1e-4);
        assert!((z_value(0.95) - 1.959_964).abs() < 1e-4);
        assert!((z_value(0.99) - 2.575_829).abs() < 1e-4);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for p in [0.01, 0.1, 0.3] {
            assert!(
                (normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9,
                "p={p}"
            );
        }
        assert!(normal_quantile(0.5).abs() < 1e-9);
    }

    #[test]
    fn t_reference_values() {
        // Classic t-table entries (two-sided).
        assert!((t_value(0.95, 1) - 12.7062).abs() < 1e-3);
        assert!((t_value(0.95, 2) - 4.30265).abs() < 1e-4);
        assert!((t_value(0.95, 4) - 2.77645).abs() < 1e-4);
        assert!((t_value(0.95, 9) - 2.26216).abs() < 1e-4);
        assert!((t_value(0.99, 4) - 4.60409).abs() < 1e-4);
        assert!((t_value(0.90, 7) - 1.89458).abs() < 1e-4);
    }

    #[test]
    fn t_converges_to_normal() {
        for level in [0.90, 0.95, 0.99] {
            let t = t_value(level, 1_000_000);
            assert!((t - z_value(level)).abs() < 1e-3, "level={level}");
        }
    }

    #[test]
    fn t_interval_wider_than_normal_at_small_n() {
        let s: StreamingStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        let z = ConfidenceInterval::for_mean(&s, 0.95);
        let t = ConfidenceInterval::for_mean_t(&s, 0.95);
        assert_eq!(z.mean, t.mean);
        assert!(t.half_width() > 1.5 * z.half_width());
        assert!(t.relative_half_width() > 0.0);
        // Degenerate single sample.
        let one: StreamingStats = [5.0].into_iter().collect();
        assert_eq!(ConfidenceInterval::for_mean_t(&one, 0.95).half_width(), 0.0);
    }

    #[test]
    fn ci_width_shrinks_with_samples() {
        let small: StreamingStats = (0..100).map(|i| (i % 10) as f64).collect();
        let large: StreamingStats = (0..10_000).map(|i| (i % 10) as f64).collect();
        let ci_s = ConfidenceInterval::for_mean(&small, 0.95);
        let ci_l = ConfidenceInterval::for_mean(&large, 0.95);
        assert!(ci_l.half_width() < ci_s.half_width());
        assert!(ci_s.contains(4.5));
        assert!(ci_l.contains(4.5));
    }

    #[test]
    fn degenerate_for_single_sample() {
        let one: StreamingStats = [7.0].into_iter().collect();
        let ci = ConfidenceInterval::for_mean(&one, 0.95);
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half_width(), 0.0);
        assert!(!ci.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "level must be in")]
    fn rejects_bad_level() {
        let s = StreamingStats::new();
        let _ = ConfidenceInterval::for_mean(&s, 1.0);
    }
}
