//! Mergeable logarithmic quantile sketch (DDSketch-style).
//!
//! The cluster simulator used to keep every per-key latency sample in
//! memory so experiments could ask for p95/p99 afterwards. This sketch
//! replaces those buffers with a constant-size summary: values are
//! counted in geometrically-spaced bins, so any quantile of the inserted
//! positive values can be answered with **relative error at most
//! `alpha`** (default 1%), and two sketches built from disjoint streams
//! merge by plain counter addition — exactly associative and
//! commutative, which is what makes the parallel per-server simulation
//! bit-identical to the sequential one.
//!
//! # Accuracy contract
//!
//! For any `p`, [`QuantileSketch::quantile`] returns a value `q̂` such
//! that the exact order statistic `q` (the same `ceil(p·n)` rank
//! convention as [`crate::Ecdf::quantile`]) satisfies
//! `|q̂ − q| ≤ alpha · q` whenever `q ≥ MIN_POSITIVE`. Values below
//! [`MIN_POSITIVE`] (including zero) are collapsed into one underflow
//! bin represented by the exact minimum seen there.
//!
//! # Examples
//!
//! ```
//! use memlat_stats::QuantileSketch;
//! let mut s = QuantileSketch::new();
//! for i in 1..=1000 {
//!     s.push(f64::from(i));
//! }
//! let p95 = s.quantile(0.95);
//! assert!((p95 - 950.0).abs() <= 0.01 * 950.0);
//! ```

/// Positive values below this threshold share one underflow bin.
///
/// Simulated latencies are on the order of 1e-6..1e-1 seconds, far above
/// this, so in practice the underflow bin only ever holds exact zeros.
pub const MIN_POSITIVE: f64 = 1e-12;

/// Default relative-error bound (1%).
pub const DEFAULT_ALPHA: f64 = 0.01;

/// `raw.ceil()` clamped into `i32`, without the libm `ceil` call.
///
/// On the baseline x86-64 target `f64::ceil` is a libm call, and this
/// runs once per pushed sample. `as i64` truncates toward zero
/// (saturating), so rounding up exactly when the truncation landed
/// below `raw` reproduces `raw.ceil()` — including at the saturation
/// edges — before the clamp that guards pathological alpha-near-1
/// configurations.
#[inline]
fn ceil_clamp(raw: f64) -> i32 {
    let t = raw as i64;
    let t = t.saturating_add(i64::from(raw > t as f64));
    t.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32
}

/// A mergeable quantile sketch over nonnegative samples with bounded
/// relative error.
///
/// Bin `i` covers `(γ^(i−1), γ^i]` with `γ = (1+α)/(1−α)`; the bin
/// representative `2γ^i/(1+γ)` is within `α` (relative) of every value
/// in the bin. Memory is `O(log(max/min)/α)` — a few hundred `u64`
/// counters for any realistic latency range — independent of the number
/// of samples.
///
/// Counters live in one dense `Vec` indexed from `base` (the lowest bin
/// seen so far) rather than a tree map, so the simulator's per-key
/// `push` is an array increment with no allocation or pointer chasing
/// once the latency range has been seen. The vector grows only when a
/// new minimum or maximum bin appears — a handful of times per run.
///
/// Equality ([`PartialEq`]) compares the *logical* contents (occupied
/// bins and their counts), not the backing storage, so two sketches
/// that saw the same samples in different orders compare equal even if
/// their vectors grew differently.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    alpha: f64,
    ln_gamma: f64,
    /// Log-bin index of `bins[0]`.
    base: i32,
    bins: Vec<u64>,
    /// Samples in `(-inf, MIN_POSITIVE)`: zeros, and negatives clamped up.
    underflow: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Creates an empty sketch with the default `alpha` of 1%.
    #[must_use]
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_ALPHA)
    }

    /// Creates an empty sketch with relative-error bound `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    #[must_use]
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            ln_gamma: gamma.ln(),
            base: 0,
            bins: Vec::new(),
            underflow: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The documented relative-error bound.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of samples inserted (non-finite samples are dropped and
    /// not counted).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any sample has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum inserted sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sketch.
    #[must_use]
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty sketch");
        self.min
    }

    /// Exact maximum inserted sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sketch.
    #[must_use]
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty sketch");
        self.max
    }

    /// Number of log-spaced bins currently occupied (memory footprint).
    #[must_use]
    pub fn bin_count(&self) -> usize {
        self.bins.iter().filter(|&&c| c != 0).count() + usize::from(self.underflow > 0)
    }

    /// Inserts one sample.
    ///
    /// Non-finite inputs (NaN and ±∞) are dropped and not counted —
    /// NaNs mirror [`crate::Ecdf::from_samples`], and an infinity has
    /// no log-bin (before this was explicit, `push(f64::INFINITY)`
    /// saturated `Self::bin_index` to `i32::MAX` and the dense bin
    /// array tried to grow to 2³¹ counters). Finite values below
    /// [`MIN_POSITIVE`] — zeros, subnormals, and negatives — collapse
    /// into the underflow bin with the exact minimum preserved.
    #[inline]
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x < MIN_POSITIVE {
            self.underflow += 1;
        } else {
            let idx = self.bin_index(x);
            *self.slot(idx) += 1;
        }
    }

    /// Inserts a block of samples — bit-identical to pushing each element
    /// in order.
    ///
    /// The expensive part of a push is the logarithm behind the bin
    /// index; here it is hoisted out of the per-element loop and
    /// computed four lanes at a time by
    /// [`memlat_dist::simd::sketch_bins`] over a small stack chunk. The
    /// kernel is the same deterministic `dln` the scalar path uses, op
    /// for op, so chunked insertion is bit-identical to repeated
    /// [`Self::push`] under every dispatch mode. Out-of-domain elements
    /// (non-finite, or below [`MIN_POSITIVE`]) get a placeholder lane
    /// value that the scalar epilogue never reads — it routes them to
    /// the drop/underflow paths first, exactly as `push` does.
    #[inline]
    pub fn push_slice(&mut self, xs: &[f64]) {
        const CHUNK: usize = 256;
        let mut raw = [0.0f64; CHUNK];
        for chunk in xs.chunks(CHUNK) {
            let raw = &mut raw[..chunk.len()];
            memlat_dist::simd::sketch_bins(chunk, self.ln_gamma, MIN_POSITIVE, raw);
            for (&x, &r) in chunk.iter().zip(raw.iter()) {
                if !x.is_finite() {
                    continue;
                }
                self.count += 1;
                self.min = self.min.min(x);
                self.max = self.max.max(x);
                if x < MIN_POSITIVE {
                    self.underflow += 1;
                } else {
                    *self.slot(ceil_clamp(r)) += 1;
                }
            }
        }
    }

    /// The counter for log-bin `idx`, growing the dense array when the
    /// bin lies outside the current `[base, base + len)` window.
    #[inline]
    fn slot(&mut self, idx: i32) -> &mut u64 {
        if self.bins.is_empty() {
            self.base = idx;
            self.bins.push(0);
        } else if idx < self.base {
            // New minimum bin: shift existing counters up. Rare (a few
            // times per run), so exact growth beats headroom bookkeeping.
            let grow = (self.base - idx) as usize;
            self.bins.splice(0..0, std::iter::repeat_n(0, grow));
            self.base = idx;
        } else if (idx - self.base) as usize >= self.bins.len() {
            self.bins.resize((idx - self.base) as usize + 1, 0);
        }
        &mut self.bins[(idx - self.base) as usize]
    }

    /// Folds another sketch into this one by counter addition.
    ///
    /// Merging is exactly associative and commutative: any merge order
    /// over the same set of per-stream sketches yields a bit-identical
    /// state (and therefore identical quantile answers).
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were built with different `alpha`.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            (self.alpha - other.alpha).abs() < f64::EPSILON,
            "cannot merge sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        for (i, &c) in other.bins.iter().enumerate() {
            if c != 0 {
                *self.slot(other.base + i as i32) += c;
            }
        }
        self.underflow += other.underflow;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `p`-th quantile with the same rank convention as
    /// [`crate::Ecdf::quantile`]: the (clamped) `ceil(p·n)`-th order
    /// statistic, answered to within `alpha` relative error.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]` or the sketch is empty.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile requires p in [0,1], got {p}"
        );
        assert!(self.count > 0, "quantile of empty sketch");
        let rank = if p <= 0.0 {
            1
        } else {
            ((p * self.count as f64).ceil() as u64).clamp(1, self.count)
        };
        let mut cum = self.underflow;
        if cum >= rank {
            // All-underflow prefix: the exact minimum is the best
            // representative we have (in practice these are zeros).
            return self.min;
        }
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return self
                    .representative(self.base + i as i32)
                    .clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Log-bin index for a value `≥ MIN_POSITIVE`: the smallest `i` with
    /// `γ^i ≥ x`.
    ///
    /// Callers must route non-finite and below-`MIN_POSITIVE` values to
    /// the underflow/drop paths first ([`Self::push`] does): an index
    /// computed from those would either saturate or land below the
    /// first representable bin.
    fn bin_index(&self, x: f64) -> i32 {
        debug_assert!(
            x.is_finite() && x >= MIN_POSITIVE,
            "bin_index expects a finite value >= MIN_POSITIVE, got {x}"
        );
        // `dln`, not libm `ln`: the block path ([`Self::push_slice`])
        // computes this same quotient four lanes at a time with the
        // AVX2 twin of `dln`, and scalar-vs-block bit-identity requires
        // the one-at-a-time path to use the identical log. (`dln` and
        // libm agree to ≤1 ulp, so the α-relative accuracy contract is
        // unaffected; bins can shift only for values within a ulp of a
        // bin edge, which the contract already permits.)
        ceil_clamp(memlat_dist::simd::dln(x) / self.ln_gamma)
    }

    /// Midpoint representative of bin `(γ^(i−1), γ^i]`; within `alpha`
    /// relative error of every value in the bin.
    fn representative(&self, idx: i32) -> f64 {
        let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
        2.0 * (f64::from(idx) * self.ln_gamma).exp() / (1.0 + gamma)
    }
}

/// Logical equality: same error bound, same exact extremes, and the
/// same occupied bins with the same counts. Backing-array `base` and
/// zero padding (which depend on insertion order) are ignored.
impl PartialEq for QuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        fn occupied(base: i32, bins: &[u64]) -> (i32, &[u64]) {
            match bins.iter().position(|&c| c != 0) {
                None => (0, &[]),
                Some(first) => {
                    let last = bins.iter().rposition(|&c| c != 0).expect("nonzero exists");
                    (base + first as i32, &bins[first..=last])
                }
            }
        }
        let (self_base, self_bins) = occupied(self.base, &self.bins);
        let (other_base, other_bins) = occupied(other.base, &other.bins);
        self.alpha == other.alpha
            && self.count == other.count
            && self.underflow == other.underflow
            && self.min == other.min
            && self.max == other.max
            && self_base == other_base
            && self_bins == other_bins
    }
}

impl Extend<f64> for QuantileSketch {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ecdf;

    #[test]
    fn integer_ceil_matches_float_ceil() {
        // The cast-based ceil in `bin_index` must agree with the libm
        // formula for every reachable input, including the edges.
        let s = QuantileSketch::new();
        let float_version = |x: f64| -> i32 {
            let raw = (memlat_dist::simd::dln(x) / s.ln_gamma).ceil();
            raw.clamp(f64::from(i32::MIN), f64::from(i32::MAX)) as i32
        };
        // Only the domain `push` routes here: finite and ≥ MIN_POSITIVE
        // (non-finite and underflow values never reach bin_index).
        let mut probes: Vec<f64> = vec![MIN_POSITIVE, 1.0, f64::MAX];
        for e in -11..40 {
            let b = 10.0f64.powi(e);
            probes.extend([b, b * (1.0 + 1e-15), b * std::f64::consts::E]);
        }
        // Values sitting exactly on bin boundaries (integer raw),
        // staying above the MIN_POSITIVE underflow threshold.
        for i in [-1300i32, -1, 0, 1, 5000] {
            let v = (f64::from(i) * s.ln_gamma).exp();
            if v >= MIN_POSITIVE {
                probes.push(v);
            }
        }
        for x in probes {
            assert_eq!(s.bin_index(x), float_version(x), "x={x:e}");
        }
    }

    #[test]
    fn push_slice_is_bit_identical_to_push() {
        // The chunked lane path must be indistinguishable from scalar
        // insertion — same counts, same bins, same exact extremes —
        // under both dispatch modes, including chunk-boundary-straddling
        // lengths and the drop/underflow edge cases inside a chunk.
        let mut xs: Vec<f64> = (0u32..1000)
            .map(|i| {
                // Latency-shaped spread across the sketch's range plus a
                // pseudo-random mantissa wiggle (no RNG dependency here).
                let wiggle = f64::from(i.wrapping_mul(2_654_435_761u32) >> 16) * 1e-9;
                1e-6 * 1.02f64.powi(i as i32 % 600) * (1.0 + wiggle)
            })
            .collect();
        xs[3] = 0.0;
        xs[100] = f64::NAN;
        xs[255] = f64::INFINITY;
        xs[256] = MIN_POSITIVE / 2.0;
        xs[511] = f64::NEG_INFINITY;
        xs[512] = -1.0;
        for forced_scalar in [false, true] {
            memlat_dist::simd::set_forced_scalar(forced_scalar);
            for len in [0usize, 1, 7, 255, 256, 257, 1000] {
                let mut scalar = QuantileSketch::new();
                for &x in &xs[..len] {
                    scalar.push(x);
                }
                let mut block = QuantileSketch::new();
                block.push_slice(&xs[..len]);
                assert_eq!(scalar, block, "len={len} forced_scalar={forced_scalar}");
                assert_eq!(scalar.count(), block.count());
                if scalar.count() > 0 {
                    assert_eq!(scalar.min().to_bits(), block.min().to_bits());
                    assert_eq!(scalar.max().to_bits(), block.max().to_bits());
                }
            }
        }
        memlat_dist::simd::set_forced_scalar(false);
    }

    #[test]
    fn quantiles_within_alpha_of_exact() {
        let samples: Vec<f64> = (1..=5000).map(|i| f64::from(i) * 1e-6).collect();
        let mut s = QuantileSketch::new();
        s.extend(samples.iter().copied());
        let e = Ecdf::from_samples(&samples);
        for p in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = e.quantile(p);
            let approx = s.quantile(p);
            assert!(
                (approx - exact).abs() <= s.alpha() * exact,
                "p={p}: approx={approx} exact={exact}"
            );
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = QuantileSketch::new();
        let mut parts: Vec<QuantileSketch> = (0..4).map(|_| QuantileSketch::new()).collect();
        for i in 0..4000u32 {
            let x = f64::from(i % 997) + 0.5;
            all.push(x);
            parts[(i % 4) as usize].push(x);
        }
        let mut merged = QuantileSketch::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, all);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut c = QuantileSketch::new();
        for i in 0..300 {
            a.push(f64::from(i) + 1.0);
            b.push(f64::from(i) * 2.0 + 0.25);
            c.push(1e-3 * f64::from(i + 1));
        }
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, cba);
    }

    #[test]
    fn zeros_and_min_max_are_exact() {
        let mut s = QuantileSketch::new();
        s.push(0.0);
        s.push(0.0);
        s.push(3.0);
        s.push(7.0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 7.0);
        // Rank 1 and 2 are zeros (underflow bin → exact min).
        assert_eq!(s.quantile(0.25), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.quantile(1.0).max(7.0), s.max());
    }

    #[test]
    fn nan_dropped() {
        let mut s = QuantileSketch::new();
        s.push(f64::NAN);
        s.push(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), 1.0);
    }

    #[test]
    fn infinities_dropped() {
        // Regression: +∞ used to saturate bin_index to i32::MAX and ask
        // the dense bin array for 2³¹ counters; −∞ poisoned `min`.
        let mut s = QuantileSketch::new();
        s.push(f64::INFINITY);
        s.push(f64::NEG_INFINITY);
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        s.push(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 2.0);
        assert_eq!(s.bin_count(), 1);
    }

    #[test]
    fn below_first_bin_goes_to_underflow() {
        // Negatives, zeros, and sub-MIN_POSITIVE positives all share the
        // underflow bin; min stays exact so low quantiles are honest.
        let mut s = QuantileSketch::new();
        s.push(-3.0);
        s.push(0.0);
        s.push(1e-15); // positive but below MIN_POSITIVE
        s.push(5.0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), -3.0);
        // Ranks 1..3 are underflow: reported as the exact minimum.
        assert_eq!(s.quantile(0.25), -3.0);
        assert_eq!(s.quantile(0.75), -3.0);
        // Rank 4 is the real sample.
        let q = s.quantile(1.0);
        assert!((q - 5.0).abs() <= s.alpha() * 5.0, "q={q}");
        // Underflow counts as one occupied bin.
        assert_eq!(s.bin_count(), 2);
    }

    #[test]
    fn merged_sketch_keeps_alpha_error_bound() {
        // The documented contract — |q̂ − q| ≤ α·q — must survive a
        // merge of sketches built from disjoint shards, mixed with
        // underflow values and out-of-order inserts.
        let samples: Vec<f64> = (1..=6000).map(|i| f64::from(i) * 1e-6).collect();
        let mut shards: Vec<QuantileSketch> = (0..5).map(|_| QuantileSketch::new()).collect();
        for (i, &x) in samples.iter().enumerate() {
            shards[i % 5].push(x);
        }
        let mut merged = QuantileSketch::new();
        for sh in &shards {
            merged.merge(sh);
        }
        assert_eq!(merged.count(), samples.len() as u64);
        let exact = Ecdf::from_samples(&samples);
        for p in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let q = exact.quantile(p);
            let approx = merged.quantile(p);
            assert!(
                (approx - q).abs() <= merged.alpha() * q,
                "p={p}: approx={approx} exact={q}"
            );
        }
        // Extremes are exact, not binned.
        assert_eq!(merged.min(), 1e-6);
        assert_eq!(merged.max(), 6e-3);
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merge_alpha_mismatch_panics() {
        let mut a = QuantileSketch::with_alpha(0.01);
        let b = QuantileSketch::with_alpha(0.02);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "empty sketch")]
    fn empty_quantile_panics() {
        let _ = QuantileSketch::new().quantile(0.5);
    }

    #[test]
    fn insertion_order_does_not_affect_equality() {
        // Ascending vs descending pushes grow the dense array from
        // opposite ends; the sketches must still compare equal.
        let values: Vec<f64> = (1..=400).map(|i| 1e-6 * f64::from(i)).collect();
        let mut asc = QuantileSketch::new();
        let mut desc = QuantileSketch::new();
        for &v in &values {
            asc.push(v);
        }
        for &v in values.iter().rev() {
            desc.push(v);
        }
        assert_eq!(asc, desc);
        for p in [0.01, 0.5, 0.99] {
            assert_eq!(asc.quantile(p).to_bits(), desc.quantile(p).to_bits());
        }
    }

    #[test]
    fn front_growth_preserves_counts() {
        let mut s = QuantileSketch::new();
        s.push(1.0);
        s.push(1e-3); // forces a front extension
        s.push(1e3); // and a back extension
        assert_eq!(s.count(), 3);
        assert_eq!(s.bin_count(), 3);
        // Rank 1 of 3 is the small value; rank 2 is 1.0.
        let q1 = s.quantile(0.2);
        assert!((q1 - 1e-3).abs() <= s.alpha() * 1e-3, "q1={q1}");
        let q2 = s.quantile(0.5);
        assert!((q2 - 1.0).abs() <= s.alpha(), "q2={q2}");
    }

    #[test]
    fn constant_memory() {
        let mut s = QuantileSketch::new();
        for i in 0..200_000u32 {
            s.push(1e-6 * (1.0 + f64::from(i % 10_000)));
        }
        // ~log(1e4)/log(gamma) ≈ 460 bins max for a 1e4 dynamic range.
        assert!(s.bin_count() < 1000, "bins={}", s.bin_count());
    }
}
