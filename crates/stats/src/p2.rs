//! The P² (Jain & Chlamtac) streaming quantile estimator.

/// Estimates a single quantile online with O(1) memory (five markers).
///
/// Used where the simulator cannot afford to keep every sample — e.g.
/// tracking the `N/(N+1)`-quantile of per-key latency over tens of
/// millions of keys.
///
/// # Examples
///
/// ```
/// use memlat_stats::P2Quantile;
///
/// let mut p2 = P2Quantile::new(0.5);
/// for i in 1..=10_001 {
///     p2.push(i as f64);
/// }
/// let est = p2.estimate().unwrap();
/// assert!((est / 5_001.0 - 1.0).abs() < 0.02, "est={est}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-th quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 1)`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "P² requires p in (0,1), got {p}");
        Self {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The tracked probability `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(f64::total_cmp);
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Locate the cell containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for pos in self.positions.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust interior markers with parabolic (or linear) moves.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate; `None` until five samples have arrived.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            // Fall back to the exact small-sample quantile.
            let mut v = self.initial.clone();
            v.sort_by(f64::total_cmp);
            let idx = ((self.p * v.len() as f64).ceil() as usize).clamp(1, v.len());
            return Some(v[idx - 1]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn small_samples_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), None);
        p2.push(3.0);
        p2.push(1.0);
        p2.push(2.0);
        assert_eq!(p2.estimate(), Some(2.0));
    }

    #[test]
    fn uniform_median() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut p2 = P2Quantile::new(0.5);
        for _ in 0..100_000 {
            p2.push(rng.gen::<f64>());
        }
        let est = p2.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "est={est}");
    }

    #[test]
    fn exponential_p99() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut p2 = P2Quantile::new(0.99);
        for _ in 0..200_000 {
            let u: f64 = rng.gen();
            p2.push(-(1.0 - u).ln());
        }
        let est = p2.estimate().unwrap();
        let exact = -(0.01f64).ln(); // ≈ 4.605
        assert!((est / exact - 1.0).abs() < 0.05, "est={est} exact={exact}");
    }

    #[test]
    fn against_exact_quantile_on_skewed_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.gen::<f64>().powi(4)).collect();
        let mut p2 = P2Quantile::new(0.9);
        for &x in &xs {
            p2.push(x);
        }
        let exact = crate::Ecdf::from_samples(&xs).quantile(0.9);
        let est = p2.estimate().unwrap();
        assert!((est / exact - 1.0).abs() < 0.05, "est={est} exact={exact}");
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn rejects_extreme_p() {
        let _ = P2Quantile::new(1.0);
    }
}
