//! Measurement substrate for the memlat simulator and experiments.
//!
//! Everything the experiments need to turn raw latency samples into the
//! numbers the paper reports:
//!
//! * [`streaming`] — Welford mean/variance accumulators (one pass, stable).
//! * [`ecdf`] — empirical CDFs with exact quantiles and
//!   Kolmogorov–Smirnov distances against model CDFs.
//! * [`gof`] — goodness-of-fit tests (one/two-sample KS with asymptotic
//!   p-values, chi-square) backing the conformance harness.
//! * [`histogram`] — log-bucketed latency histograms for cheap
//!   high-volume percentile estimation.
//! * [`p2`] — the P² streaming quantile estimator (constant memory).
//! * [`sketch`] — mergeable log-binned quantile sketch (bounded relative
//!   error, exact merge) backing the parallel simulator's streaming
//!   summaries.
//! * [`ci`] — confidence intervals, normal-approximation for large
//!   sample counts and Student-t for small replication counts (the
//!   paper quotes 95% CIs in Table 3).
//! * [`maxstat`] — max-statistics helpers: `E[max of N] ≈ (N/(N+1))`-th
//!   quantile, the approximation at the heart of the paper's eq. 12.
//!
//! # Examples
//!
//! ```
//! use memlat_stats::{Ecdf, StreamingStats};
//!
//! let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
//! let mut s = StreamingStats::new();
//! for &x in &samples {
//!     s.push(x);
//! }
//! assert_eq!(s.mean(), 3.0);
//!
//! let e = Ecdf::from_samples(&samples);
//! assert_eq!(e.quantile(0.5), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod ecdf;
pub mod gof;
pub mod histogram;
pub mod maxstat;
pub mod p2;
pub mod sketch;
pub mod streaming;

pub use ci::ConfidenceInterval;
pub use ecdf::Ecdf;
pub use gof::GofTest;
pub use histogram::LogHistogram;
pub use maxstat::max_order_quantile;
pub use p2::P2Quantile;
pub use sketch::QuantileSketch;
pub use streaming::StreamingStats;
