//! Log-bucketed latency histograms.

/// A histogram with logarithmically spaced buckets, tuned for latency
/// distributions spanning several orders of magnitude (microseconds to
/// seconds).
///
/// Quantile estimates are exact to within one bucket's relative width
/// (default configuration: ~2.3% with 100 buckets per decade), using a
/// fraction of the memory an [`crate::Ecdf`] needs — the simulator's
/// high-volume recorder.
///
/// # Examples
///
/// ```
/// use memlat_stats::LogHistogram;
/// # fn main() {
/// let mut h = LogHistogram::new(1e-7, 10.0, 100);
/// for i in 1..=1000 {
///     h.record(i as f64 * 1e-5);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((p50 / 5e-3 - 1.0).abs() < 0.05, "p50={p50}");
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    min_value: f64,
    buckets_per_decade: usize,
    counts: Vec<u64>,
    /// Precomputed bucket edges: `edges[i]` is the lower bound of bucket
    /// `i`, with one extra entry past the last bucket. Memoizes the
    /// `min · 10^(i/bpd)` bound so quantile scans stop paying a `powf`
    /// per bucket probed — the values are bit-identical to computing the
    /// expression on the fly.
    edges: Vec<f64>,
    underflow: u64,
    overflow: u64,
    total: u64,
    sum: f64,
}

impl LogHistogram {
    /// Creates a histogram covering `[min_value, max_value]` with the
    /// given number of buckets per decade.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_value < max_value` and
    /// `buckets_per_decade > 0`.
    #[must_use]
    pub fn new(min_value: f64, max_value: f64, buckets_per_decade: usize) -> Self {
        assert!(
            min_value > 0.0 && min_value < max_value,
            "need 0 < min < max"
        );
        assert!(
            buckets_per_decade > 0,
            "need at least one bucket per decade"
        );
        let decades = (max_value / min_value).log10();
        let n = (decades * buckets_per_decade as f64).ceil() as usize + 1;
        let edges = (0..=n)
            .map(|i| min_value * 10f64.powf(i as f64 / buckets_per_decade as f64))
            .collect();
        Self {
            min_value,
            buckets_per_decade,
            counts: vec![0; n],
            edges,
            underflow: 0,
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// Default latency histogram: 10 ns to 100 s, 100 buckets per decade.
    #[must_use]
    pub fn for_latencies() -> Self {
        Self::new(1e-8, 100.0, 100)
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < self.min_value {
            return None;
        }
        let idx = ((x / self.min_value).log10() * self.buckets_per_decade as f64).floor() as usize;
        (idx < self.counts.len()).then_some(idx)
    }

    /// Lower edge of bucket `i` — a table lookup, not a `powf`.
    fn bucket_lo(&self, i: usize) -> f64 {
        self.edges[i]
    }

    /// Records one value.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        self.sum += x;
        match self.bucket_of(x) {
            Some(i) => self.counts[i] += 1,
            None if x < self.min_value => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of recorded values.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Quantile estimate: the geometric midpoint of the bucket containing
    /// the `p`-th order statistic.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]` or the histogram is empty.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile requires p in [0,1], got {p}"
        );
        assert!(self.total > 0, "quantile of empty histogram");
        let target = (p * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return self.min_value;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Geometric midpoint of the bucket.
                return (self.bucket_lo(i) * self.bucket_lo(i + 1)).sqrt();
            }
        }
        self.bucket_lo(self.counts.len())
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.min_value, other.min_value, "geometry mismatch");
        assert_eq!(
            self.buckets_per_decade, other.buckets_per_decade,
            "geometry mismatch"
        );
        assert_eq!(self.counts.len(), other.counts.len(), "geometry mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = LogHistogram::new(1e-6, 1.0, 10);
        h.record(1e-3);
        h.record(2e-3);
        h.record(1e-9); // underflow
        h.record(100.0); // overflow
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = LogHistogram::for_latencies();
        // Exponential-ish spread of values.
        for i in 1..=100_000u64 {
            h.record(1e-6 * (1.0 + (i % 1000) as f64));
        }
        let q = h.quantile(0.5);
        // True median ≈ 501e-6.
        assert!((q / 501e-6 - 1.0).abs() < 0.05, "q={q}");
    }

    #[test]
    fn extreme_quantiles() {
        let mut h = LogHistogram::new(1e-6, 1.0, 50);
        for x in [1e-5, 1e-4, 1e-3] {
            h.record(x);
        }
        assert!(h.quantile(0.0) <= h.quantile(1.0));
        assert!((h.quantile(1.0) / 1e-3 - 1.0).abs() < 0.05);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new(1e-6, 1.0, 10);
        h.record(0.001);
        h.record(0.003);
        assert!((h.mean() - 0.002).abs() < 1e-15);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new(1e-6, 1.0, 10);
        let mut b = LogHistogram::new(1e-6, 1.0, 10);
        a.record(1e-4);
        b.record(1e-2);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - (1e-4 + 1e-2) / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = LogHistogram::new(1e-6, 1.0, 10);
        let b = LogHistogram::new(1e-6, 1.0, 20);
        a.merge(&b);
    }

    #[test]
    fn edge_table_is_bit_identical_to_powf() {
        for (min, bpd) in [(1e-8, 100usize), (1e-6, 7), (0.3, 1)] {
            let h = LogHistogram::new(min, 100.0, bpd);
            assert_eq!(h.edges.len(), h.counts.len() + 1);
            for (i, &e) in h.edges.iter().enumerate() {
                let direct = min * 10f64.powf(i as f64 / bpd as f64);
                assert_eq!(e.to_bits(), direct.to_bits(), "edge {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn empty_quantile_panics() {
        let h = LogHistogram::new(1e-6, 1.0, 10);
        let _ = h.quantile(0.5);
    }
}
