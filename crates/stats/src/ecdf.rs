//! Empirical cumulative distribution functions.

/// An empirical CDF over a sorted sample set.
///
/// Provides exact order-statistic quantiles (inverse-CDF convention:
/// the smallest sample `x` with `F̂(x) ≥ p`) and the Kolmogorov–Smirnov
/// distance against a model CDF — the tool used to compare simulated
/// per-key latency against the paper's eq. (9) band (Fig. 4).
///
/// # Examples
///
/// ```
/// use memlat_stats::Ecdf;
/// let e = Ecdf::from_samples(&[3.0, 1.0, 2.0]);
/// assert_eq!(e.quantile(0.0), 1.0);
/// assert_eq!(e.quantile(0.99), 3.0);
/// assert!((e.cdf(2.0) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (copied and sorted; NaNs are dropped).
    ///
    /// # Panics
    ///
    /// Panics if no finite samples remain.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        assert!(!sorted.is_empty(), "ECDF needs at least one finite sample");
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Builds an ECDF from an already-sorted vector (takes ownership, no
    /// copy).
    ///
    /// # Panics
    ///
    /// Panics if `sorted` is empty or not sorted.
    #[must_use]
    pub fn from_sorted(sorted: Vec<f64>) -> Self {
        assert!(!sorted.is_empty(), "ECDF needs at least one sample");
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "from_sorted requires sorted input"
        );
        Self { sorted }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F̂(x)`: fraction of samples `≤ x`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-th quantile (inverse CDF): smallest sample with
    /// `F̂ ≥ p`; `p ∈ [0, 1]` (1 returns the maximum).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile requires p in [0,1], got {p}"
        );
        let n = self.sorted.len();
        if p <= 0.0 {
            return self.sorted[0];
        }
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[idx - 1]
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        memlat_numerics::kahan::compensated_sum(&self.sorted) / self.sorted.len() as f64
    }

    /// Minimum sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Kolmogorov–Smirnov statistic `sup_x |F̂(x) − F(x)|` against a model
    /// CDF.
    #[must_use]
    pub fn ks_distance(&self, model_cdf: impl Fn(f64) -> f64) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = model_cdf(x);
            let lo = i as f64 / n;
            let hi = (i + 1) as f64 / n;
            d = d.max((f - lo).abs()).max((hi - f).abs());
        }
        d
    }

    /// Draws one sample uniformly from the stored values (bootstrap
    /// resampling).
    #[must_use]
    pub fn resample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let idx = (rng.next_u64() % self.sorted.len() as u64) as usize;
        self.sorted[idx]
    }

    /// A view of the sorted samples.
    #[must_use]
    pub fn as_sorted(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_panics() {
        let _ = Ecdf::from_samples(&[]);
    }

    #[test]
    fn nan_filtered() {
        let e = Ecdf::from_samples(&[1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn cdf_step_values() {
        let e = Ecdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(10.0), 1.0);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let e = Ecdf::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(e.quantile(0.2), 1.0);
        assert_eq!(e.quantile(0.21), 2.0);
        assert_eq!(e.quantile(0.5), 3.0);
        assert_eq!(e.quantile(1.0), 5.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 5.0);
    }

    #[test]
    fn ks_distance_of_perfect_uniform_sample() {
        // Samples at i/(n+1): KS vs U(0,1) is small.
        let n = 1000;
        let xs: Vec<f64> = (1..=n).map(|i| i as f64 / (n + 1) as f64).collect();
        let e = Ecdf::from_samples(&xs);
        let d = e.ks_distance(|x| x.clamp(0.0, 1.0));
        assert!(d < 0.01, "d={d}");
    }

    #[test]
    fn ks_distance_detects_mismatch() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64 / 101.0).collect();
        let e = Ecdf::from_samples(&xs);
        // Compare against Exp(1): grossly different from U(0,1).
        let d = e.ks_distance(|x| 1.0 - (-x).exp());
        assert!(d > 0.2, "d={d}");
    }

    #[test]
    fn exponential_sample_matches_model() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let lam = 2.0;
        let xs: Vec<f64> = (0..20_000)
            .map(|_| {
                let u = rng.next_u64() as f64 / u64::MAX as f64;
                -(1.0 - u).max(1e-12).ln() / lam
            })
            .collect();
        let e = Ecdf::from_samples(&xs);
        let d = e.ks_distance(|x| 1.0 - (-lam * x).exp());
        assert!(d < 0.02, "d={d}");
    }

    #[test]
    fn resample_stays_in_support() {
        let e = Ecdf::from_samples(&[1.0, 2.0, 3.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = e.resample(&mut rng);
            assert!([1.0, 2.0, 3.0].contains(&x));
        }
    }

    #[test]
    fn mean_matches_arithmetic() {
        let e = Ecdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.mean(), 2.5);
    }
}
