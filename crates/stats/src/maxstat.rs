//! Max-statistics helpers — the approximation behind the paper's eq. 12.

use crate::ecdf::Ecdf;

/// The quantile level used to approximate the expectation of the maximum
/// of `n` i.i.d. draws: `E[max] ≈ F⁻¹(n/(n+1))` (paper eq. 12, after
/// Casella & Berger).
///
/// # Examples
///
/// ```
/// assert_eq!(memlat_stats::max_order_quantile(1), 0.5);
/// assert_eq!(memlat_stats::max_order_quantile(150), 150.0 / 151.0);
/// ```
#[must_use]
pub fn max_order_quantile(n: u64) -> f64 {
    let n = n.max(1) as f64;
    n / (n + 1.0)
}

/// Estimates `E[max of n i.i.d. samples]` from an empirical distribution
/// using the max-order-quantile approximation.
///
/// This is how the experiments turn a pooled per-key latency sample into
/// an "`E[T_S(N)]` measured" value, mirroring how the paper's testbed
/// numbers are produced.
#[must_use]
pub fn expected_max_from_ecdf(ecdf: &Ecdf, n: u64) -> f64 {
    ecdf.quantile(max_order_quantile(n))
}

/// Monte-Carlo ground truth for `E[max of n]` by resampling the ECDF
/// (used in tests and the Fig. 12/13 experiments to validate the
/// approximation itself).
#[must_use]
pub fn expected_max_resampled(
    ecdf: &Ecdf,
    n: u64,
    reps: usize,
    rng: &mut dyn rand::RngCore,
) -> f64 {
    let mut acc = 0.0;
    for _ in 0..reps {
        let mut best = f64::NEG_INFINITY;
        for _ in 0..n {
            best = best.max(ecdf.resample(rng));
        }
        acc += best;
    }
    acc / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quantile_levels() {
        assert_eq!(max_order_quantile(0), 0.5); // clamped to n = 1
        assert_eq!(max_order_quantile(9), 0.9);
        assert!((max_order_quantile(999) - 0.999).abs() < 1e-12);
    }

    #[test]
    fn exponential_max_approximation() {
        // For Exp(1), E[max of n] = H_n; the approximation gives
        // -ln(1 - n/(n+1)) = ln(n+1). Check both against resampling.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..200_000)
            .map(|_| -(1.0 - rng.gen::<f64>()).max(1e-15).ln())
            .collect();
        let e = Ecdf::from_samples(&xs);
        let n = 50;
        let approx = expected_max_from_ecdf(&e, n);
        assert!((approx - 51f64.ln()).abs() < 0.15, "approx={approx}");
        let mc = expected_max_resampled(&e, n, 4_000, &mut rng);
        let exact = memlat_numerics::special::harmonic(n);
        assert!((mc - exact).abs() < 0.2, "mc={mc} exact={exact}");
        // The quantile approximation has a known downward bias of
        // ≈ γ/ln n (≈ 15% at n = 50): E[max] = ln n + γ, approx = ln(n+1).
        assert!(approx < exact);
        assert!(
            (approx / exact - 1.0).abs() < 0.2,
            "approx={approx} exact={exact}"
        );
    }

    #[test]
    fn max_estimate_is_monotone_in_n() {
        let xs: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let e = Ecdf::from_samples(&xs);
        let mut prev = 0.0;
        for n in [1, 10, 100, 1_000] {
            let v = expected_max_from_ecdf(&e, n);
            assert!(v >= prev);
            prev = v;
        }
    }
}
