//! Property-based tests for the measurement substrate.

use memlat_stats::{
    ConfidenceInterval, Ecdf, LogHistogram, P2Quantile, QuantileSketch, StreamingStats,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming statistics agree with direct computation.
    #[test]
    fn streaming_matches_batch(xs in proptest::collection::vec(-1e3f64..1e3, 2..300)) {
        let s: StreamingStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert!((s.sample_variance() - var).abs() < 1e-6 * (1.0 + var));
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging arbitrary splits equals one-pass accumulation.
    #[test]
    fn merge_associative(xs in proptest::collection::vec(-100f64..100.0, 2..200), cut in 0usize..200) {
        let cut = cut.min(xs.len());
        let whole: StreamingStats = xs.iter().copied().collect();
        let mut left: StreamingStats = xs[..cut].iter().copied().collect();
        let right: StreamingStats = xs[cut..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-7);
    }

    /// ECDF quantiles are order statistics: monotone in p and within
    /// sample range; cdf∘quantile ≥ p.
    #[test]
    fn ecdf_quantile_laws(xs in proptest::collection::vec(-1e3f64..1e3, 1..200), p in 0.0f64..1.0, dp in 0.0f64..0.2) {
        let e = Ecdf::from_samples(&xs);
        let q1 = e.quantile(p);
        let q2 = e.quantile((p + dp).min(1.0));
        prop_assert!(q1 <= q2);
        prop_assert!(q1 >= e.min() && q1 <= e.max());
        prop_assert!(e.cdf(q1) + 1e-12 >= p);
    }

    /// KS distance is within [0, 1]; against the ECDF's own (right-
    /// continuous) step function it equals the step height 1/n — the
    /// left-limit term of the supremum.
    #[test]
    fn ks_distance_bounds(xs in proptest::collection::vec(0.0f64..100.0, 2..200)) {
        let e = Ecdf::from_samples(&xs);
        let d_self = e.ks_distance(|x| e.cdf(x));
        prop_assert!(d_self <= 1.0 / e.len() as f64 + 1e-12, "self distance {d_self}");
        let d_other = e.ks_distance(|_| 0.0);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d_other));
    }

    /// P² stays within the sample range and tracks the exact quantile on
    /// well-behaved data.
    #[test]
    fn p2_within_range(xs in proptest::collection::vec(0.0f64..1e4, 50..3000), p in 0.05f64..0.95) {
        let mut p2 = P2Quantile::new(p);
        for &x in &xs {
            p2.push(x);
        }
        let est = p2.estimate().unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "est {est} outside [{lo}, {hi}]");
    }

    /// Log-histogram quantiles respect the bucket's relative-error bound.
    #[test]
    fn histogram_quantile_error_bounded(xs in proptest::collection::vec(1e-6f64..10.0, 10..2000), p in 0.05f64..0.95) {
        let mut h = LogHistogram::new(1e-7, 100.0, 100);
        for &x in &xs {
            h.record(x);
        }
        let approx = h.quantile(p);
        let exact = Ecdf::from_samples(&xs).quantile(p);
        // One bucket is 10^(1/100) ≈ 2.33% wide; allow a couple buckets
        // of slack for ties at the boundary.
        prop_assert!((approx / exact).ln().abs() < 0.06, "approx {approx} vs exact {exact}");
    }

    /// Confidence intervals contain their own mean and shrink with level.
    #[test]
    fn ci_laws(xs in proptest::collection::vec(-50f64..50.0, 3..500)) {
        let s: StreamingStats = xs.iter().copied().collect();
        let narrow = ConfidenceInterval::for_mean(&s, 0.5);
        let wide = ConfidenceInterval::for_mean(&s, 0.99);
        prop_assert!(narrow.contains(s.mean()));
        prop_assert!(wide.half_width() + 1e-15 >= narrow.half_width());
    }

    /// Sketch quantiles match the exact ECDF order statistic within the
    /// documented relative-error bound, at every probed p.
    #[test]
    fn sketch_quantile_error_within_alpha(
        xs in proptest::collection::vec(1e-9f64..1e6, 1..2000),
        p in 0.0f64..1.0,
    ) {
        let mut s = QuantileSketch::new();
        s.extend(xs.iter().copied());
        let e = Ecdf::from_samples(&xs);
        for q in [0.0, p, 0.5, 0.95, 0.99, 1.0] {
            let exact = e.quantile(q);
            let approx = s.quantile(q);
            prop_assert!(
                (approx - exact).abs() <= s.alpha() * exact + 1e-300,
                "q={}: approx={} exact={}", q, approx, exact
            );
        }
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert_eq!(s.min(), e.min());
        prop_assert_eq!(s.max(), e.max());
    }

    /// Sketch merging is exactly associative and order-independent, and
    /// any merge of a split equals the single-stream sketch.
    #[test]
    fn sketch_merge_associative(
        xs in proptest::collection::vec(1e-9f64..1e6, 3..1200),
        cut1 in 0usize..1200,
        cut2 in 0usize..1200,
    ) {
        let (a, b) = (cut1.min(xs.len()), cut2.min(xs.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let mut s1 = QuantileSketch::new();
        s1.extend(xs[..lo].iter().copied());
        let mut s2 = QuantileSketch::new();
        s2.extend(xs[lo..hi].iter().copied());
        let mut s3 = QuantileSketch::new();
        s3.extend(xs[hi..].iter().copied());
        let mut whole = QuantileSketch::new();
        whole.extend(xs.iter().copied());

        // (s1 ∪ s2) ∪ s3
        let mut left = s1.clone();
        left.merge(&s2);
        left.merge(&s3);
        // s1 ∪ (s2 ∪ s3)
        let mut right = s2.clone();
        right.merge(&s3);
        let mut outer = s1.clone();
        outer.merge(&right);
        // Reversed order.
        let mut rev = s3.clone();
        rev.merge(&s2);
        rev.merge(&s1);

        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(&outer, &whole);
        prop_assert_eq!(&rev, &whole);
    }

    /// `StreamingStats::push_slice` is bit-identical to scalar pushes —
    /// the Welford recurrence carries a serial dependence, so the slice
    /// entry point must never reassociate it (splitting the slice
    /// arbitrarily must not matter either).
    #[test]
    fn streaming_push_slice_bit_identical(
        xs in proptest::collection::vec(1e-9f64..1e6, 0..600),
        cut in 0usize..600,
    ) {
        let cut = cut.min(xs.len());
        let mut scalar = StreamingStats::new();
        for &x in &xs {
            scalar.push(x);
        }
        let mut sliced = StreamingStats::new();
        sliced.push_slice(&xs[..cut]);
        sliced.push_slice(&xs[cut..]);
        prop_assert_eq!(sliced.count(), scalar.count());
        prop_assert_eq!(sliced.mean().to_bits(), scalar.mean().to_bits());
        prop_assert_eq!(
            sliced.sample_variance().to_bits(),
            scalar.sample_variance().to_bits()
        );
        prop_assert_eq!(sliced.min().to_bits(), scalar.min().to_bits());
        prop_assert_eq!(sliced.max().to_bits(), scalar.max().to_bits());
    }

    /// `QuantileSketch::push_slice` is bit-identical to scalar pushes:
    /// same bins, same counters, same quantile answers.
    #[test]
    fn sketch_push_slice_bit_identical(
        xs in proptest::collection::vec(1e-9f64..1e6, 0..600),
        cut in 0usize..600,
        p in 0.0f64..1.0,
    ) {
        let cut = cut.min(xs.len());
        let mut scalar = QuantileSketch::new();
        for &x in &xs {
            scalar.push(x);
        }
        let mut sliced = QuantileSketch::new();
        sliced.push_slice(&xs[..cut]);
        sliced.push_slice(&xs[cut..]);
        prop_assert_eq!(&sliced, &scalar);
        if !xs.is_empty() {
            prop_assert_eq!(sliced.quantile(p).to_bits(), scalar.quantile(p).to_bits());
        }
    }
}
