//! Time-weighted measurement of piecewise-constant signals.

/// Accumulates the time integral of a piecewise-constant signal — queue
/// lengths, busy-server counts, in-flight request counts — so the
/// simulator can report time averages like `E[N(t)]` and verify Little's
/// law against the analytical model.
///
/// # Examples
///
/// ```
/// use memlat_des::metrics::TimeWeighted;
///
/// let mut q = TimeWeighted::new(0.0);
/// q.set(1.0, 2.0); // value 2 from t=1
/// q.set(3.0, 0.0); // back to 0 at t=3
/// assert_eq!(q.time_average(4.0), 1.0); // (0·1 + 2·2 + 0·1)/4
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    value: f64,
    last_change: f64,
    integral: f64,
    max: f64,
}

impl TimeWeighted {
    /// Starts the signal at `initial` at time 0.
    #[must_use]
    pub fn new(initial: f64) -> Self {
        Self {
            value: initial,
            last_change: 0.0,
            integral: 0.0,
            max: initial,
        }
    }

    /// Sets the signal to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if time goes backwards.
    pub fn set(&mut self, now: f64, value: f64) {
        assert!(
            now >= self.last_change,
            "time went backwards: {now} < {}",
            self.last_change
        );
        self.integral += self.value * (now - self.last_change);
        self.last_change = now;
        self.value = value;
        self.max = self.max.max(value);
    }

    /// Adds `delta` to the signal at time `now` (e.g. +1 on arrival,
    /// −1 on departure).
    pub fn add(&mut self, now: f64, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Largest value observed.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time average over `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is before the last recorded change or not
    /// positive.
    #[must_use]
    pub fn time_average(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(
            horizon >= self.last_change,
            "horizon {horizon} before last change {}",
            self.last_change
        );
        (self.integral + self.value * (horizon - self.last_change)) / horizon
    }
}

/// Per-server activity counters surfaced by the cluster simulation.
///
/// These are the cheap always-on observables the streaming simulator
/// keeps per server (the full per-key sample buffers are optional): how
/// long the server was busy, how deep its queue got, and how many keys
/// it served and missed. Counters from replicated or sharded runs
/// combine with [`ServerCounters::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerCounters {
    /// Total service time accumulated (utilization numerator).
    pub busy_time: f64,
    /// High-water mark of jobs simultaneously in the system.
    pub queue_max: usize,
    /// Keys served (post-warmup measurement window).
    pub jobs: u64,
    /// Keys that missed in the cache and went to the database.
    pub misses: u64,
}

impl ServerCounters {
    /// Combines counters from two disjoint observation streams: sums the
    /// extensive quantities, takes the max of the high-water mark.
    pub fn merge(&mut self, other: &Self) {
        self.busy_time += other.busy_time;
        self.queue_max = self.queue_max.max(other.queue_max);
        self.jobs += other.jobs;
        self.misses += other.misses;
    }

    /// Miss ratio over the served keys (0 when nothing was served).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.misses as f64 / self.jobs as f64
        }
    }
}

/// Client-resilience and fault counters for one station.
///
/// Everything the fault-injection layer observes about one server's
/// interaction with its clients: attempts that timed out or were
/// refused by a crashed server, re-issued attempts, keys that exhausted
/// their attempts and fell through to the backing store, hedged
/// duplicates, and the scheduled downtime/degraded seconds that caused
/// it all. All zero on a healthy run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceCounters {
    /// Attempts whose sojourn exceeded the client timeout.
    pub timeouts: u64,
    /// Attempts refused outright by a crashed server.
    pub refused: u64,
    /// Re-issued attempts (each retry of each key counts once).
    pub retries: u64,
    /// Keys that exhausted every attempt and fell through to the
    /// database stage (graceful degradation).
    pub forced_misses: u64,
    /// Hedged duplicate attempts sent to a replica.
    pub hedges_sent: u64,
    /// Hedges whose replica attempt beat the primary.
    pub hedges_won: u64,
    /// Seconds of scheduled crash downtime within the horizon.
    pub downtime: f64,
    /// Seconds of scheduled degraded (slowdown) service within the
    /// horizon.
    pub degraded_time: f64,
}

impl ResilienceCounters {
    /// Combines counters from two disjoint observation streams.
    pub fn merge(&mut self, other: &Self) {
        self.timeouts += other.timeouts;
        self.refused += other.refused;
        self.retries += other.retries;
        self.forced_misses += other.forced_misses;
        self.hedges_sent += other.hedges_sent;
        self.hedges_won += other.hedges_won;
        self.downtime += other.downtime;
        self.degraded_time += other.degraded_time;
    }

    /// Whether any fault or resilience action was observed at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self != &Self::default()
    }
}

/// Per-server miss-coalescing counters (delayed hits).
///
/// When the cluster's miss relay coalesces per-key fetches, each miss
/// reaching the database either *dispatches* a new fetch or parks as a
/// waiter on an outstanding fetch for the same key and resolves at that
/// fetch's completion — a **delayed hit**. These counters account for
/// both, attributed to the server that originated the miss. All zero
/// under the independent relay (the paper's model).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoalesceCounters {
    /// Database fetches actually dispatched (one per outstanding-fetch
    /// window per key).
    pub dispatched: u64,
    /// Misses resolved by waiting on an already-outstanding fetch.
    pub delayed_hits: u64,
    /// Total seconds delayed hits spent waiting (the sum of residual
    /// fetch latencies; `wait_time / delayed_hits` is the mean wait).
    pub wait_time: f64,
}

impl CoalesceCounters {
    /// Combines counters from two disjoint observation streams.
    pub fn merge(&mut self, other: &Self) {
        self.dispatched += other.dispatched;
        self.delayed_hits += other.delayed_hits;
        self.wait_time += other.wait_time;
    }

    /// Whether any coalescing activity was observed at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self != &Self::default()
    }

    /// Fraction of database-path resolutions that were delayed hits
    /// (0 when nothing reached the database).
    #[must_use]
    pub fn delayed_fraction(&self) -> f64 {
        let total = self.dispatched + self.delayed_hits;
        if total == 0 {
            0.0
        } else {
            self.delayed_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_counters_merge_and_fraction() {
        let mut a = CoalesceCounters {
            dispatched: 3,
            delayed_hits: 1,
            wait_time: 0.25,
        };
        let b = CoalesceCounters {
            dispatched: 1,
            delayed_hits: 3,
            wait_time: 0.75,
        };
        a.merge(&b);
        assert_eq!(a.dispatched, 4);
        assert_eq!(a.delayed_hits, 4);
        assert!((a.wait_time - 1.0).abs() < 1e-12);
        assert!((a.delayed_fraction() - 0.5).abs() < 1e-12);
        assert!(a.any());
        assert!(!CoalesceCounters::default().any());
        assert_eq!(CoalesceCounters::default().delayed_fraction(), 0.0);
    }

    #[test]
    fn resilience_counters_merge() {
        let mut a = ResilienceCounters {
            timeouts: 1,
            refused: 2,
            retries: 3,
            forced_misses: 1,
            hedges_sent: 4,
            hedges_won: 2,
            downtime: 0.5,
            degraded_time: 1.0,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.timeouts, 2);
        assert_eq!(a.refused, 4);
        assert_eq!(a.retries, 6);
        assert_eq!(a.forced_misses, 2);
        assert_eq!(a.hedges_sent, 8);
        assert_eq!(a.hedges_won, 4);
        assert!((a.downtime - 1.0).abs() < 1e-12);
        assert!((a.degraded_time - 2.0).abs() < 1e-12);
        assert!(a.any());
        assert!(!ResilienceCounters::default().any());
    }

    #[test]
    fn counters_merge_and_ratio() {
        let mut a = ServerCounters {
            busy_time: 1.0,
            queue_max: 3,
            jobs: 10,
            misses: 1,
        };
        let b = ServerCounters {
            busy_time: 2.0,
            queue_max: 5,
            jobs: 30,
            misses: 3,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ServerCounters {
                busy_time: 3.0,
                queue_max: 5,
                jobs: 40,
                misses: 4
            }
        );
        assert!((a.miss_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(ServerCounters::default().miss_ratio(), 0.0);
    }

    #[test]
    fn square_wave_average() {
        let mut s = TimeWeighted::new(0.0);
        for i in 0..10 {
            s.set(i as f64, (i % 2) as f64);
        }
        // Signal is 0 on even seconds, 1 on odd seconds: average 0.5.
        assert!((s.time_average(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.max(), 1.0);
    }

    #[test]
    fn add_tracks_counts() {
        let mut q = TimeWeighted::new(0.0);
        q.add(1.0, 1.0); // arrival
        q.add(2.0, 1.0); // arrival
        assert_eq!(q.value(), 2.0);
        q.add(4.0, -1.0); // departure
        q.add(5.0, -1.0);
        assert_eq!(q.value(), 0.0);
        // Integral: 0·1 + 1·1 + 2·2 + 1·1 = 6 over 5 s.
        assert!((q.time_average(5.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_travel() {
        let mut s = TimeWeighted::new(0.0);
        s.set(2.0, 1.0);
        s.set(1.0, 0.0);
    }

    #[test]
    fn littles_law_on_mm1() {
        // Drive a simulated M/M/1 and verify L = λW between the
        // time-weighted count and the per-job sojourns.
        use crate::fcfs::FcfsStation;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut station = FcfsStation::new();
        let mut in_system = TimeWeighted::new(0.0);
        let lam = 0.7;
        let mut t = 0.0;
        let mut events: Vec<(f64, f64)> = Vec::new(); // (arrival, departure)
        for _ in 0..200_000 {
            t += -(1.0 - rng.gen::<f64>()).max(1e-15).ln() / lam;
            let svc = -(1.0 - rng.gen::<f64>()).max(1e-15).ln();
            let done = station.submit(t, svc);
            events.push((t, done.departure));
        }
        // Replay arrivals/departures in time order.
        let mut edges: Vec<(f64, f64)> = Vec::with_capacity(events.len() * 2);
        for &(a, d) in &events {
            edges.push((a, 1.0));
            edges.push((d, -1.0));
        }
        edges.sort_by(|x, y| x.0.total_cmp(&y.0));
        for (when, delta) in edges {
            in_system.add(when, delta);
        }
        let horizon = events.iter().map(|e| e.1).fold(0.0, f64::max);
        let l = in_system.time_average(horizon);
        let w = station.mean_sojourn();
        let lam_hat = events.len() as f64 / horizon;
        assert!(
            (l - lam_hat * w).abs() / l < 0.01,
            "L={l} λW={}",
            lam_hat * w
        );
        // And both match the M/M/1 closed form ρ/(1−ρ) ≈ 2.333.
        assert!((l - 0.7 / 0.3).abs() < 0.15, "L={l}");
    }
}
