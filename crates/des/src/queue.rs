//! The time-ordered event heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A stable event queue: events pop in timestamp order, and events with
/// equal timestamps pop in insertion (FIFO) order — determinism that a
/// bare `BinaryHeap` does not provide.
///
/// # Examples
///
/// ```
/// use memlat_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::new(1.0), 1u32);
/// q.schedule(SimTime::new(0.5), 2u32);
/// assert_eq!(q.pop(), Some((SimTime::new(0.5), 2)));
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Reserves capacity for at least `additional` more events, so a
    /// burst of [`schedule`](Self::schedule) calls performs at most one
    /// heap reallocation.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Schedules a batch of events, reserving once up front. Events are
    /// inserted in iteration order, so equal-timestamp entries pop in
    /// the order the iterator yielded them.
    pub fn schedule_many<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let it = events.into_iter();
        let (lo, hi) = it.size_hint();
        self.heap.reserve(hi.unwrap_or(lo));
        for (time, event) in it {
            self.schedule(time, event);
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, e) in [(3.0, 'c'), (1.0, 'a'), (2.0, 'b')] {
            q.schedule(SimTime::new(t), e);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ['a', 'b', 'c']);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::new(1.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::new(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(5.0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_many_matches_sequential_schedules() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let events = [(2.0, 'x'), (1.0, 'y'), (1.0, 'z'), (3.0, 'w')];
        for (t, e) in events {
            a.schedule(SimTime::new(t), e);
        }
        b.reserve(events.len());
        b.schedule_many(events.iter().map(|&(t, e)| (SimTime::new(t), e)));
        let pa: Vec<_> = std::iter::from_fn(|| a.pop()).collect();
        let pb: Vec<_> = std::iter::from_fn(|| b.pop()).collect();
        assert_eq!(pa, pb);
        assert_eq!(
            pa.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            ['y', 'z', 'x', 'w']
        );
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(10.0), "late");
        q.schedule(SimTime::new(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::new(5.0), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
        assert_eq!(q.pop(), None);
    }
}
