//! Discrete-event simulation kernel for the memlat cluster simulator.
//!
//! A deliberately small kernel: the memcached system model is
//! feed-forward (clients → servers → database), so most stages can be
//! simulated in virtual time with a measured FCFS station; the event
//! queue is what merges streams whose order is only known globally
//! (e.g. cache misses arriving at the database from many servers).
//!
//! * [`time`] — [`SimTime`]: a totally ordered, finite, non-negative
//!   simulation timestamp.
//! * [`queue`] — [`EventQueue`]: a stable (FIFO tie-breaking) time-ordered
//!   event heap.
//! * [`fcfs`] — [`FcfsStation`]: a single-server FCFS queue evaluated in
//!   virtual time with built-in wait/sojourn/utilization measurement.
//! * [`fault`] — [`fault::Window`] / [`fault::Timeline`]: scheduled
//!   crash/degradation windows a station owner can query in virtual
//!   time.
//! * [`rng`] — deterministic per-stream RNG derivation, so adding a new
//!   random stream never perturbs existing ones.
//!
//! # Examples
//!
//! ```
//! use memlat_des::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::new(2.0), "b");
//! q.schedule(SimTime::new(1.0), "a");
//! q.schedule(SimTime::new(2.0), "c"); // same time: FIFO order
//! let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
//! assert_eq!(order, ["a", "b", "c"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod fcfs;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod time;

pub use fcfs::{Completion, FcfsStation};
pub use metrics::{ResilienceCounters, ServerCounters, TimeWeighted};
pub use queue::EventQueue;
pub use rng::stream_rng;
pub use time::SimTime;
