//! Deterministic random-stream derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives an independent, reproducible RNG for a named stream of a
/// simulation run.
///
/// Mixing the run seed with a stream identifier through SplitMix64 means
/// every logical stream (per-server arrivals, service times, miss coin
/// flips, …) is statistically independent, and adding a new stream never
/// perturbs the draws of existing ones — replications stay comparable
/// across code changes.
///
/// # Examples
///
/// ```
/// use memlat_des::stream_rng;
/// use rand::Rng;
/// let mut a = stream_rng(7, 0);
/// let mut b = stream_rng(7, 1);
/// let mut a2 = stream_rng(7, 0);
/// assert_eq!(a.gen::<u64>(), a2.gen::<u64>()); // reproducible
/// let _ = b.gen::<u64>(); // independent stream
/// ```
#[must_use]
pub fn stream_rng(run_seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(run_seed ^ splitmix64(stream)))
}

/// Fills `out` with raw `next_u64` draws in order.
///
/// The staging half of block-batched sampling: a hot loop banks its raw
/// draws into a `u64` lane with one call, then applies the pure
/// uniform-to-law transforms over the slice. Consuming the stream here is
/// bit-identical to calling `next_u64` at each original draw site.
///
/// # Examples
///
/// ```
/// use memlat_des::stream_rng;
/// use rand::RngCore;
/// let mut a = stream_rng(7, 0);
/// let mut b = stream_rng(7, 0);
/// let mut lane = [0u64; 4];
/// memlat_des::rng::fill_u64(&mut a, &mut lane);
/// assert!(lane.iter().all(|&x| x == b.next_u64()));
/// ```
pub fn fill_u64<R: rand::RngCore + ?Sized>(rng: &mut R, out: &mut [u64]) {
    for x in out.iter_mut() {
        *x = rng.next_u64();
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_per_stream() {
        let xs: Vec<u64> = (0..8)
            .map(|_| 0u64)
            .scan(stream_rng(1, 2), |r, _| Some(r.gen()))
            .collect();
        let ys: Vec<u64> = (0..8)
            .map(|_| 0u64)
            .scan(stream_rng(1, 2), |r, _| Some(r.gen()))
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = stream_rng(1, 0);
        let mut b = stream_rng(1, 1);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream_rng(1, 0);
        let mut b = stream_rng(2, 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit flips roughly half the output bits.
        let base = splitmix64(0x1234_5678);
        let flipped = splitmix64(0x1234_5679);
        let differing = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&differing), "{differing}");
    }
}
