//! Simulation timestamps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulation timestamp in seconds: finite, non-negative, totally
/// ordered.
///
/// Wrapping `f64` in a validated newtype lets the event queue implement
/// `Ord` soundly (no NaNs can enter).
///
/// # Examples
///
/// ```
/// use memlat_des::SimTime;
/// let t = SimTime::new(1.5) + 0.5;
/// assert_eq!(t.as_secs(), 2.0);
/// assert!(SimTime::ZERO < t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite.
    #[must_use]
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid simulation time: {secs}"
        );
        Self(secs)
    }

    /// The timestamp in seconds.
    #[must_use]
    pub fn as_secs(&self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Sound: construction guarantees finiteness.
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.0)
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = a + 0.5;
        assert!(a < b);
        assert_eq!(b - a, 0.5);
        let mut c = a;
        c += 2.0;
        assert_eq!(c.as_secs(), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn rejects_nan() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn rejects_negative() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    fn display_and_conversion() {
        let t = SimTime::new(0.25);
        assert!(t.to_string().contains("0.25"));
        let f: f64 = t.into();
        assert_eq!(f, 0.25);
    }
}
