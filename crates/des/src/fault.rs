//! Fault windows: the DES-level vocabulary for scheduled degradation.
//!
//! A fault is a *window* of virtual time during which a station behaves
//! differently — it is down (crash) or slower (degraded service). The
//! kernel only provides the time algebra ([`Window`], [`Timeline`]);
//! what a window *means* is the station owner's business
//! (`memlat-cluster` compiles its `FaultPlan` into per-server
//! timelines).
//!
//! # Examples
//!
//! ```
//! use memlat_des::fault::{Timeline, Window};
//!
//! let t = Timeline::new(vec![Window::new(1.0, 2.0), Window::new(4.0, 5.0)]);
//! assert!(t.contains(1.5));
//! assert!(!t.contains(3.0));
//! assert_eq!(t.covered_time(4.5), 1.5); // [1,2) fully + [4,4.5)
//! ```

/// A half-open window `[start, end)` of simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start (inclusive).
    pub start: f64,
    /// Window end (exclusive).
    pub end: f64,
}

impl Window {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ start < end` and both are finite.
    #[must_use]
    pub fn new(start: f64, end: f64) -> Self {
        assert!(
            start.is_finite() && end.is_finite() && start >= 0.0 && start < end,
            "invalid fault window [{start}, {end})"
        );
        Self { start, end }
    }

    /// Whether `t` falls inside the window.
    #[must_use]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }

    /// Length of the window's overlap with `[0, horizon)`.
    #[must_use]
    pub fn clamped_len(&self, horizon: f64) -> f64 {
        (self.end.min(horizon) - self.start.max(0.0)).max(0.0)
    }
}

/// An ordered set of fault windows for one station.
///
/// Windows are kept sorted by start; queries scan linearly (fault plans
/// hold a handful of windows, not thousands).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    windows: Vec<Window>,
}

impl Timeline {
    /// Builds a timeline; windows are sorted by start time.
    #[must_use]
    pub fn new(mut windows: Vec<Window>) -> Self {
        windows.sort_by(|a, b| a.start.total_cmp(&b.start));
        Self { windows }
    }

    /// An empty timeline (no faults scheduled).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any window covers `t`.
    #[must_use]
    pub fn contains(&self, t: f64) -> bool {
        self.windows.iter().any(|w| w.contains(t))
    }

    /// Whether the timeline holds no windows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The windows, sorted by start.
    #[must_use]
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Total time covered by windows within `[0, horizon)`.
    ///
    /// Windows are assumed disjoint (enforced by the plan validation
    /// upstream); overlap would double-count.
    #[must_use]
    pub fn covered_time(&self, horizon: f64) -> f64 {
        self.windows.iter().map(|w| w.clamped_len(horizon)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_basics() {
        let w = Window::new(1.0, 3.0);
        assert!(w.contains(1.0));
        assert!(w.contains(2.999));
        assert!(!w.contains(3.0));
        assert!(!w.contains(0.5));
        assert_eq!(w.clamped_len(10.0), 2.0);
        assert_eq!(w.clamped_len(2.0), 1.0);
        assert_eq!(w.clamped_len(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid fault window")]
    fn rejects_inverted_window() {
        let _ = Window::new(2.0, 1.0);
    }

    #[test]
    fn timeline_queries() {
        let t = Timeline::new(vec![Window::new(4.0, 5.0), Window::new(1.0, 2.0)]);
        assert!(!t.is_empty());
        assert_eq!(t.windows()[0].start, 1.0); // sorted
        assert!(t.contains(1.5) && t.contains(4.0));
        assert!(!t.contains(2.0) && !t.contains(5.0));
        assert!((t.covered_time(10.0) - 2.0).abs() < 1e-12);
        assert!((t.covered_time(4.5) - 1.5).abs() < 1e-12);
        assert!(Timeline::none().is_empty());
        assert!(!Timeline::none().contains(0.0));
        assert_eq!(Timeline::none().covered_time(1.0), 0.0);
    }
}
