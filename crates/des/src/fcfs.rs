//! A measured single-server FCFS station evaluated in virtual time.

/// The outcome of submitting one job to a [`FcfsStation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// When the job arrived.
    pub arrival: f64,
    /// When service began (`max(arrival, previous departure)`).
    pub start: f64,
    /// When service finished.
    pub departure: f64,
}

impl Completion {
    /// Time spent waiting before service.
    #[must_use]
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }

    /// Total time in the system (sojourn).
    #[must_use]
    pub fn sojourn(&self) -> f64 {
        self.departure - self.arrival
    }
}

/// A single-server FCFS queue simulated by the Lindley recursion.
///
/// Jobs must be submitted in non-decreasing arrival order (each stream
/// the memlat simulator produces is time-ordered; merging unordered
/// streams is the event queue's job). For a work-conserving FCFS server
/// the departure of job `n` is
///
/// ```text
/// D_n = max(A_n, D_{n-1}) + S_n
/// ```
///
/// which requires no event scheduling at all — this is what lets the
/// simulator push 10⁷ keys/second through a server model.
///
/// # Examples
///
/// ```
/// use memlat_des::FcfsStation;
/// let mut s = FcfsStation::new();
/// let c1 = s.submit(0.0, 1.0);
/// let c2 = s.submit(0.5, 1.0); // arrives while busy
/// assert_eq!(c1.departure, 1.0);
/// assert_eq!(c2.start, 1.0);
/// assert_eq!(c2.wait(), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FcfsStation {
    last_departure: f64,
    last_arrival: f64,
    busy_time: f64,
    jobs: u64,
    total_wait: f64,
    total_sojourn: f64,
    /// Departure times of jobs still in the system at the last arrival.
    /// FCFS departures are nondecreasing, so this is a sorted queue and
    /// expiry is a pop-front scan.
    in_system: std::collections::VecDeque<f64>,
    queue_max: usize,
}

impl FcfsStation {
    /// Creates an idle station at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a job arriving at `arrival` needing `service` seconds.
    ///
    /// # Panics
    ///
    /// Panics if arrivals go backwards in time or `service < 0`.
    pub fn submit(&mut self, arrival: f64, service: f64) -> Completion {
        assert!(
            arrival >= self.last_arrival,
            "FCFS arrivals must be time-ordered: {arrival} < {}",
            self.last_arrival
        );
        assert!(service >= 0.0, "negative service time: {service}");
        self.last_arrival = arrival;
        let start = arrival.max(self.last_departure);
        let departure = start + service;
        self.last_departure = departure;
        self.busy_time += service;
        self.jobs += 1;
        self.total_wait += start - arrival;
        self.total_sojourn += departure - arrival;
        // Queue-length high-water mark: the in-system count changes by +1
        // at arrivals and −1 at departures, so its maximum is attained
        // right after an arrival. Expire finished jobs, admit this one.
        while self.in_system.front().is_some_and(|&d| d <= arrival) {
            self.in_system.pop_front();
        }
        self.in_system.push_back(departure);
        self.queue_max = self.queue_max.max(self.in_system.len());
        Completion {
            arrival,
            start,
            departure,
        }
    }

    /// Submits a block of time-ordered jobs and writes each departure
    /// into `departures` — the Lindley recursion
    /// `D_i = max(A_i, D_{i−1}) + S_i` as one tight scan.
    ///
    /// State updates (busy time, wait/sojourn totals, queue high-water
    /// mark) are applied in job order with the exact per-job expressions
    /// of [`FcfsStation::submit`], so interleaving scalar submits and
    /// block submits on one station is bit-identical to submitting every
    /// job individually.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ, arrivals go backwards in time,
    /// or any `service < 0` — the same contract as [`FcfsStation::submit`].
    pub fn submit_block(&mut self, arrivals: &[f64], services: &[f64], departures: &mut [f64]) {
        let n = arrivals.len();
        assert_eq!(n, services.len(), "lane length mismatch");
        assert_eq!(n, departures.len(), "lane length mismatch");
        if n == 0 {
            return;
        }
        // Everything the scan touches lives in registers; the per-job
        // floating-point add sequence is unchanged, so the write-back
        // below leaves the station bit-identical to scalar submits.
        //
        // Codegen audit (`--emit=asm`, x86_64 release): this scan
        // compiles to scalar `maxsd`/`addsd` — the Lindley recurrence
        // `depart = max(arrival, depart) + service` carries `depart`
        // across iterations, so no lane-parallel form exists without
        // reassociating the adds (which would break bit-identity with
        // per-job submits). It stays scalar by design; the vector wins
        // live upstream in the uniform→law transforms that feed it.
        let mut depart = self.last_departure;
        let mut last_arrival = self.last_arrival;
        let mut busy_time = self.busy_time;
        let mut total_wait = self.total_wait;
        let mut total_sojourn = self.total_sojourn;
        let mut queue_max = self.queue_max;
        // Queue high-water mark without per-job deque traffic: departures
        // are globally nondecreasing, so the deque is sorted and the
        // front-first expiry of `submit` pops exactly the entries
        // `<= arrival`. The in-system count at arrival `i` is therefore
        // the unexpired suffix of the carried deque (front pointer `c`)
        // plus this block's own jobs `k..i` — whose departures are
        // already in the output lane — plus job `i` itself. Both pointers
        // only move forward, so the block costs O(n) total.
        let carry: &[f64] = self.in_system.make_contiguous();
        let carry_len = carry.len();
        let mut c = 0usize;
        let mut k = 0usize;
        for i in 0..n {
            let arrival = arrivals[i];
            let service = services[i];
            assert!(
                arrival >= last_arrival,
                "FCFS arrivals must be time-ordered: {arrival} < {last_arrival}"
            );
            assert!(service >= 0.0, "negative service time: {service}");
            last_arrival = arrival;
            let start = arrival.max(depart);
            depart = start + service;
            departures[i] = depart;
            busy_time += service;
            total_wait += start - arrival;
            total_sojourn += depart - arrival;
            while c < carry_len && carry[c] <= arrival {
                c += 1;
            }
            while k < i && departures[k] <= arrival {
                k += 1;
            }
            let in_system = (carry_len - c) + (i - k) + 1;
            if in_system > queue_max {
                queue_max = in_system;
            }
        }
        self.last_departure = depart;
        self.last_arrival = last_arrival;
        self.busy_time = busy_time;
        self.jobs += n as u64;
        self.total_wait = total_wait;
        self.total_sojourn = total_sojourn;
        self.queue_max = queue_max;
        // Restore the deque invariant for the next (scalar or block)
        // submit: unexpired carried entries, then this block's unexpired
        // departures.
        self.in_system.drain(..c);
        self.in_system.extend(departures[k..].iter().copied());
    }

    /// Number of jobs served.
    #[must_use]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// When the server will next be idle.
    #[must_use]
    pub fn busy_until(&self) -> f64 {
        self.last_departure
    }

    /// Total service time accumulated (the utilization numerator).
    #[must_use]
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Largest number of jobs simultaneously in the system (queued +
    /// in service), observed exactly at arrival instants.
    #[must_use]
    pub fn queue_max(&self) -> usize {
        self.queue_max
    }

    /// Empirical utilization over `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon ≤ 0`.
    #[must_use]
    pub fn utilization(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        self.busy_time / horizon
    }

    /// Mean waiting time over all served jobs.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_wait / self.jobs as f64
        }
    }

    /// Mean sojourn time over all served jobs.
    #[must_use]
    pub fn mean_sojourn(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_sojourn / self.jobs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = FcfsStation::new();
        let c = s.submit(5.0, 2.0);
        assert_eq!(c.start, 5.0);
        assert_eq!(c.departure, 7.0);
        assert_eq!(c.wait(), 0.0);
        assert_eq!(c.sojourn(), 2.0);
    }

    #[test]
    fn queueing_builds_up() {
        let mut s = FcfsStation::new();
        s.submit(0.0, 1.0);
        s.submit(0.0, 1.0);
        let c = s.submit(0.0, 1.0);
        assert_eq!(c.start, 2.0);
        assert_eq!(c.departure, 3.0);
        assert_eq!(s.jobs(), 3);
        assert_eq!(s.busy_until(), 3.0);
        assert_eq!(s.queue_max(), 3);
        assert_eq!(s.busy_time(), 3.0);
    }

    #[test]
    fn queue_max_tracks_overlap_not_total() {
        let mut s = FcfsStation::new();
        // Two overlapping jobs, then the system drains, then one more.
        s.submit(0.0, 1.0);
        s.submit(0.5, 1.0); // in system with the first → high-water 2
        s.submit(10.0, 1.0); // alone
        assert_eq!(s.queue_max(), 2);
        // A lone job on an idle server never raises the mark above 1.
        let mut idle = FcfsStation::new();
        idle.submit(0.0, 1.0);
        assert_eq!(idle.queue_max(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_travel() {
        let mut s = FcfsStation::new();
        s.submit(2.0, 1.0);
        s.submit(1.0, 1.0);
    }

    #[test]
    fn mm1_mean_sojourn_matches_theory() {
        // M/M/1 at ρ = 0.5, μ = 1: E[T] = 1/(μ−λ) = 2.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut s = FcfsStation::new();
        let mut t = 0.0;
        let n = 400_000;
        for _ in 0..n {
            t += -(1.0 - rng.gen::<f64>()).max(1e-15).ln() / 0.5;
            let svc = -(1.0 - rng.gen::<f64>()).max(1e-15).ln();
            s.submit(t, svc);
        }
        assert!(
            (s.mean_sojourn() - 2.0).abs() < 0.08,
            "{}",
            s.mean_sojourn()
        );
        assert!((s.utilization(t) - 0.5).abs() < 0.01);
    }

    #[test]
    fn zero_service_jobs_pass_through() {
        let mut s = FcfsStation::new();
        let c = s.submit(1.0, 0.0);
        assert_eq!(c.sojourn(), 0.0);
    }

    #[test]
    fn submit_block_is_bit_identical_to_scalar_submits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut t = 0.0;
        let mut arrivals = Vec::new();
        let mut services = Vec::new();
        for _ in 0..500 {
            t += rng.gen::<f64>() * 2.0;
            arrivals.push(t);
            services.push(rng.gen::<f64>());
        }
        let mut scalar = FcfsStation::new();
        let scalar_departs: Vec<f64> = arrivals
            .iter()
            .zip(&services)
            .map(|(&a, &s)| scalar.submit(a, s).departure)
            .collect();
        // Mixed scalar/block interleaving on one station.
        let mut blocked = FcfsStation::new();
        let mut block_departs = vec![0.0; arrivals.len()];
        blocked.submit_block(&arrivals[..3], &services[..3], &mut block_departs[..3]);
        for i in 3..7 {
            block_departs[i] = blocked.submit(arrivals[i], services[i]).departure;
        }
        blocked.submit_block(&arrivals[7..], &services[7..], &mut block_departs[7..]);
        for (a, b) in scalar_departs.iter().zip(&block_departs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(scalar.jobs(), blocked.jobs());
        assert_eq!(scalar.busy_time().to_bits(), blocked.busy_time().to_bits());
        assert_eq!(scalar.queue_max(), blocked.queue_max());
        assert_eq!(scalar.mean_wait().to_bits(), blocked.mean_wait().to_bits());
        assert_eq!(
            scalar.mean_sojourn().to_bits(),
            blocked.mean_sojourn().to_bits()
        );
        assert_eq!(
            scalar.busy_until().to_bits(),
            blocked.busy_until().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn submit_block_rejects_time_travel() {
        let mut s = FcfsStation::new();
        let mut d = [0.0; 2];
        s.submit_block(&[2.0, 1.0], &[0.5, 0.5], &mut d);
    }
}
