//! Load-generator CLI.
//!
//! ```text
//! memlat-loadgen [--quick|--full|--smoke] [--spawn-server PATH | --addr ADDR]
//!                [--out PATH] [--seed U64]
//! ```
//!
//! Runs the live conformance harness (preload → floor calibration →
//! utilization sweep → graceful shutdown) and writes the JSON report.
//! Exit codes: `0` pass, `2` conformance violation, `1` I/O or usage
//! error. In `--smoke` mode only lifecycle cleanliness (drain, leaked
//! connections, clean exit) is gated, not the statistical checks — the
//! CI smoke job uses it to validate the machinery in seconds.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;

use memlat_loadgen::conformance::{run, Profile};
use memlat_loadgen::spawn::ServerSource;

fn usage() -> ExitCode {
    eprintln!(
        "usage: memlat-loadgen [--quick|--full|--smoke] \
         [--spawn-server PATH | --addr ADDR] [--out PATH] [--seed U64]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut profile: Option<Profile> = None;
    let mut source = ServerSource::InProcess;
    let mut out: Option<PathBuf> = None;
    let mut seed: Option<u64> = None;
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => profile = Some(Profile::quick()),
            "--full" => profile = Some(Profile::full()),
            "--smoke" => {
                profile = Some(Profile::smoke());
                smoke = true;
            }
            "--spawn-server" => {
                let Some(path) = args.next() else {
                    return usage();
                };
                source = ServerSource::Child(PathBuf::from(path));
            }
            "--addr" => {
                let Some(addr) = args.next() else {
                    return usage();
                };
                match addr.parse::<SocketAddr>() {
                    Ok(a) => source = ServerSource::External(a),
                    Err(e) => {
                        eprintln!("bad --addr {addr:?}: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            "--out" => {
                let Some(path) = args.next() else {
                    return usage();
                };
                out = Some(PathBuf::from(path));
            }
            "--seed" => {
                let Some(s) = args.next() else {
                    return usage();
                };
                match s.parse() {
                    Ok(v) => seed = Some(v),
                    Err(e) => {
                        eprintln!("bad --seed {s:?}: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return usage();
            }
        }
    }

    let mut profile = profile.unwrap_or_else(Profile::from_env);
    if let Some(seed) = seed {
        profile.seed = seed;
    }
    let out =
        out.unwrap_or_else(|| memlat_experiments::results_dir().join("server_conformance.json"));

    eprintln!(
        "memlat-loadgen: {} profile, {} shard(s), ρ targets {:?}, {} replication(s) × {:.1}s",
        if smoke {
            "smoke"
        } else if profile.quick {
            "quick"
        } else {
            "full"
        },
        profile.shards,
        profile.rho_points,
        profile.replications,
        profile.duration,
    );

    let report = match run(&source, &profile) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("memlat-loadgen: harness failed: {e}");
            return ExitCode::from(1);
        }
    };

    if let Some(parent) = out.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("memlat-loadgen: cannot create {}: {e}", parent.display());
            return ExitCode::from(1);
        }
    }
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("memlat-loadgen: cannot write {}: {e}", out.display());
        return ExitCode::from(1);
    }
    eprintln!("memlat-loadgen: report written to {}", out.display());

    for p in &report.points {
        let m = &p.measure;
        eprintln!(
            "  {}: λ̂ {:.0}/s μ̂ {:.0}/s ρ̂ {:.3} δ {:.1} behind {} → {}",
            p.id,
            m.lambda_hat,
            m.mu_hat,
            m.rho_model,
            m.delta,
            m.behind,
            if p.pass() { "pass" } else { "FAIL" },
        );
    }

    let violations = report.violations();
    let lifecycle_ok = report.leaked_connections == 0 && report.clean_shutdown;
    let gate = if smoke {
        lifecycle_ok
    } else {
        violations.is_empty()
    };
    if !gate {
        eprintln!("memlat-loadgen: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        return ExitCode::from(2);
    }
    if smoke && !violations.is_empty() {
        eprintln!(
            "memlat-loadgen: smoke mode ignoring {} statistical deviation(s) \
             (windows too short to gate):",
            violations.len()
        );
        for v in &violations {
            eprintln!("  - {v}");
        }
    }
    eprintln!("memlat-loadgen: PASS");
    ExitCode::SUCCESS
}
