//! Live-server conformance: drive the real `memlat-server` over loopback
//! and check the measured latency against the paper's model.
//!
//! # Methodology
//!
//! The server injects an Exponential(μ_S) per-key service time into every
//! `get`, stretching the service timescale to ~1.25 ms so that loopback
//! transport and scheduler noise (tens of µs) become a small additive
//! floor rather than the signal. One open-loop stream per shard then
//! reproduces the GI^X/M/1 input process of the model — Generalized-
//! Pareto batch gaps, geometric batch sizes, Zipf keys conditioned onto
//! the stream's shard — so each multiget is exactly one job in one shard
//! queue and its round-trip time is that job's *batch sojourn* plus the
//! loopback floor `T̂_N` (calibrated from sequential `set` round-trips,
//! which bypass the injection).
//!
//! The model is evaluated at the **measured** operating point, not the
//! nominal one: the arrival rate `λ̂` comes from the client's send
//! counters, the service rate `μ̂` from the server's `busy_ns` /
//! `keys_served` deltas, and the load split from the per-shard key
//! counters. Checks per utilization point:
//!
//! 1. **Theorem 1 band** — requests of fan-out `N` are assembled from
//!    the measured per-shard sojourn populations (multinomial split,
//!    max over draws — per-key latency collapses onto the batch
//!    completion law for geometric batches, a property PR 5 validated
//!    in the simulator); the replication-mean must land in the PR 5
//!    sharpened band `[min(eq12, eq14) · lo, max(eq12, eq14, H_N/δ) ·
//!    hi]` widened by a declared loopback margin.
//! 2. **Batch mean** — mean batch sojourn vs the decay-law mean `1/δ`.
//! 3. **Tails** — pooled p95/p99 vs `ln(20)/δ` and `ln(100)/δ`.
//! 4. **Little's law** — the server-side time-average of jobs in the
//!    shard systems (`Δqueue_integral / window`) vs the client-side
//!    `λ̂_jobs · (mean RTT − T̂_N)`; this cross-checks two completely
//!    independent instrumentation paths.

use std::fmt::Write as _;
use std::io;
use std::net::SocketAddr;
use std::time::Instant;

use memlat_dist::multinomial_counts;
use memlat_model::{ModelError, ModelParams, ServerLatencyModel};
use memlat_numerics::special::harmonic;
use memlat_stats::{ConfidenceInterval, QuantileSketch, StreamingStats};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::driver::{measure_network_floor, preload, run_streams, StreamSpec};
use crate::spawn::{RunningServer, ServerSource, ServerSpec};

/// Declared extra relative margin for live-system effects the model
/// does not describe: connection-driver queueing and reassembly, the
/// sleep-based pacer's granularity, scheduler noise on a shared box.
pub const LOOPBACK_MARGIN: f64 = 0.20;

/// Relative tolerance on the p95/p99 decay-law quantiles (tails are
/// noisier than means at these run lengths).
pub const TAIL_MARGIN: f64 = 0.35;

/// Relative tolerance on the Little's-law cross-check.
pub const LITTLE_MARGIN: f64 = 0.30;

/// Student-t confidence level for replication CIs.
pub const CONF_LEVEL: f64 = 0.95;

/// A measurement profile: how hard and how long to drive the server.
#[derive(Debug, Clone)]
pub struct Profile {
    /// True for the cheap CI profile.
    pub quick: bool,
    /// Server shard count `M`.
    pub shards: usize,
    /// Mean injected per-key service time (seconds); `μ_S` is its
    /// reciprocal.
    pub service_exp_mean: f64,
    /// Target per-shard utilizations to measure at.
    pub rho_points: Vec<f64>,
    /// Replications per utilization point.
    pub replications: usize,
    /// Send window per replication (seconds).
    pub duration: f64,
    /// Zipf keyspace size (fully preloaded).
    pub keyspace: u64,
    /// Payload bytes per key.
    pub value_len: usize,
    /// Request fan-out `N` for the Theorem-1 assembly.
    pub fanout_n: u64,
    /// Geometric batch parameter `q`.
    pub q: f64,
    /// Generalized-Pareto burst degree `ξ`.
    pub xi: f64,
    /// Zipf skew.
    pub skew: f64,
    /// Sequential `set` probes for the loopback floor.
    pub floor_probes: usize,
    /// Assembled-request draws per replication.
    pub assembly_draws: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Profile {
    /// Cheap profile: 2 utilization points, short windows. Runs in
    /// roughly half a minute; what CI and `MEMLAT_QUICK=1` use.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            quick: true,
            shards: 2,
            service_exp_mean: 1.25e-3,
            rho_points: vec![0.55, 0.75],
            replications: 3,
            duration: 2.5,
            keyspace: 4096,
            value_len: 64,
            fanout_n: 150,
            q: 0.1,
            xi: 0.15,
            skew: 0.99,
            floor_probes: 200,
            assembly_draws: 400,
            seed: 0x10AD_6E4E,
        }
    }

    /// Full profile: 4 utilization points, longer windows — what the
    /// committed `results/server_conformance.json` is generated with.
    #[must_use]
    pub fn full() -> Self {
        Self {
            quick: false,
            rho_points: vec![0.35, 0.55, 0.70, 0.80],
            replications: 4,
            duration: 6.0,
            keyspace: 16384,
            ..Self::quick()
        }
    }

    /// Tiny profile for the CI smoke job and unit tests: one point,
    /// sub-second windows. Model checks are reported but not gated.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            rho_points: vec![0.60],
            replications: 2,
            duration: 0.8,
            keyspace: 1024,
            floor_probes: 60,
            assembly_draws: 120,
            ..Self::quick()
        }
    }

    /// [`Profile::quick`] under `MEMLAT_QUICK=1`, else [`Profile::full`].
    #[must_use]
    pub fn from_env() -> Self {
        if memlat_experiments::quick_mode() {
            Self::quick()
        } else {
            Self::full()
        }
    }

    fn mu_nominal(&self) -> f64 {
        1.0 / self.service_exp_mean
    }
}

/// One model-vs-measurement check at one utilization point.
#[derive(Debug, Clone)]
pub struct LiveCheck {
    /// `"assembled_ts"`, `"batch_mean"`, `"batch_p95"`, `"batch_p99"`
    /// or `"little"`.
    pub component: &'static str,
    /// Measured value (seconds, or jobs for `little`).
    pub measured: f64,
    /// Lower endpoint of the replication CI (= `measured` when the
    /// check has no replication CI).
    pub ci_lower: f64,
    /// Upper endpoint of the replication CI.
    pub ci_upper: f64,
    /// Lower acceptance bound.
    pub bound_lower: f64,
    /// Upper acceptance bound.
    pub bound_upper: f64,
    /// Model point estimate.
    pub estimate: f64,
    /// `|measured − estimate| / estimate`.
    pub rel_err: f64,
    /// Effective relative tolerance.
    pub rel_tol: f64,
    /// Whether `measured` lies within the acceptance bounds (± CI
    /// half-width).
    pub in_bounds: bool,
    /// Whether `rel_err ≤ rel_tol`.
    pub within_tol: bool,
}

impl LiveCheck {
    /// True when both the band and the tolerance check hold.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.in_bounds && self.within_tol
    }
}

fn live_check(
    component: &'static str,
    ci: &ConfidenceInterval,
    bound_lower: f64,
    bound_upper: f64,
    estimate: f64,
    margin: f64,
    bias: f64,
) -> LiveCheck {
    let slack = ci.half_width();
    let rel_err = (ci.mean - estimate).abs() / estimate;
    let rel_tol = bias + margin + slack / estimate;
    LiveCheck {
        component,
        measured: ci.mean,
        ci_lower: ci.lower,
        ci_upper: ci.upper,
        bound_lower,
        bound_upper,
        estimate,
        rel_err,
        rel_tol,
        in_bounds: ci.mean >= bound_lower - slack && ci.mean <= bound_upper + slack,
        within_tol: rel_err <= rel_tol,
    }
}

/// A point check without replication structure (tails, Little).
fn point_check(component: &'static str, measured: f64, estimate: f64, margin: f64) -> LiveCheck {
    let rel_err = (measured - estimate).abs() / estimate;
    LiveCheck {
        component,
        measured,
        ci_lower: measured,
        ci_upper: measured,
        bound_lower: estimate * (1.0 - margin),
        bound_upper: estimate * (1.0 + margin),
        estimate,
        rel_err,
        rel_tol: margin,
        in_bounds: rel_err <= margin,
        within_tol: rel_err <= margin,
    }
}

/// Measured operating point and diagnostics at one utilization target.
#[derive(Debug, Clone)]
pub struct PointMeasure {
    /// Measured total key arrival rate (keys/s, client counters).
    pub lambda_hat: f64,
    /// Measured per-shard service rate (keys/s, server `busy_ns`).
    pub mu_hat: f64,
    /// Measured per-shard key shares (server counters, sum 1).
    pub shares: Vec<f64>,
    /// Model utilization of the heaviest shard at (λ̂, μ̂).
    pub rho_model: f64,
    /// Server-side busy-fraction `Δbusy / (M · window)`.
    pub rho_busy: f64,
    /// δ fixed point of the heaviest shard's queue.
    pub delta: f64,
    /// Hit ratio observed by the streams.
    pub hit_ratio: f64,
    /// Batches whose send lagged the schedule by over one mean gap.
    pub behind: u64,
    /// Total batches measured.
    pub batches: u64,
}

/// Conformance result at one utilization point.
#[derive(Debug, Clone)]
pub struct PointReport {
    /// Stable identifier, e.g. `"rho055"`.
    pub id: String,
    /// Target per-shard utilization this point was paced for.
    pub rho_target: f64,
    /// Measured operating point.
    pub measure: PointMeasure,
    /// Replications run.
    pub replications: usize,
    /// The five checks.
    pub checks: Vec<LiveCheck>,
}

impl PointReport {
    /// True when every check passes.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.checks.iter().all(LiveCheck::pass)
    }
}

/// Full live-conformance report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Whether the quick profile produced this report.
    pub quick: bool,
    /// Replications per point.
    pub replications: usize,
    /// Shard count.
    pub shards: usize,
    /// Nominal injected mean service time (seconds).
    pub service_exp_mean: f64,
    /// Calibrated loopback floor `T̂_N` (seconds).
    pub floor: f64,
    /// Per-utilization-point results.
    pub points: Vec<PointReport>,
    /// Connections the server still saw at shutdown beyond the probe
    /// itself (0 = clean drain).
    pub leaked_connections: u64,
    /// Whether shutdown was acknowledged and the server exited cleanly.
    pub clean_shutdown: bool,
}

impl Report {
    /// True when every point passes and the lifecycle was clean.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.points.iter().all(PointReport::pass)
            && self.leaked_connections == 0
            && self.clean_shutdown
    }

    /// Human-readable list of every failure (empty on pass).
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for p in &self.points {
            for c in &p.checks {
                if !c.in_bounds {
                    v.push(format!(
                        "{}/{}: measured {:.4} outside [{:.4}, {:.4}] (estimate {:.4})",
                        p.id, c.component, c.measured, c.bound_lower, c.bound_upper, c.estimate,
                    ));
                }
                if !c.within_tol {
                    v.push(format!(
                        "{}/{}: rel err {:.4} exceeds tolerance {:.4}",
                        p.id, c.component, c.rel_err, c.rel_tol,
                    ));
                }
            }
        }
        if self.leaked_connections > 0 {
            v.push(format!(
                "lifecycle: {} connection(s) still open at shutdown",
                self.leaked_connections
            ));
        }
        if !self.clean_shutdown {
            v.push("lifecycle: server did not shut down cleanly".into());
        }
        v
    }

    /// Serializes the report with fixed key order and shortest-roundtrip
    /// floats — the *schema* (keys, nesting, array shapes) is identical
    /// across runs; only measured numbers differ.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"memlat-server-conformance-v1\",\n");
        let _ = writeln!(s, "  \"quick\": {},", self.quick);
        let _ = writeln!(s, "  \"replications\": {},", self.replications);
        let _ = writeln!(s, "  \"shards\": {},", self.shards);
        let _ = writeln!(
            s,
            "  \"service_exp_mean\": {},",
            json_f64(self.service_exp_mean)
        );
        let _ = writeln!(s, "  \"floor\": {},", json_f64(self.floor));
        let _ = writeln!(s, "  \"leaked_connections\": {},", self.leaked_connections);
        let _ = writeln!(s, "  \"clean_shutdown\": {},", self.clean_shutdown);
        let _ = writeln!(s, "  \"pass\": {},", self.pass());
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"id\": \"{}\",", p.id);
            let _ = writeln!(s, "      \"rho_target\": {},", json_f64(p.rho_target));
            let _ = writeln!(s, "      \"replications\": {},", p.replications);
            let m = &p.measure;
            let _ = writeln!(s, "      \"lambda_hat\": {},", json_f64(m.lambda_hat));
            let _ = writeln!(s, "      \"mu_hat\": {},", json_f64(m.mu_hat));
            let shares = m
                .shares
                .iter()
                .map(|&x| json_f64(x))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(s, "      \"shares\": [{shares}],");
            let _ = writeln!(s, "      \"rho_model\": {},", json_f64(m.rho_model));
            let _ = writeln!(s, "      \"rho_busy\": {},", json_f64(m.rho_busy));
            let _ = writeln!(s, "      \"delta\": {},", json_f64(m.delta));
            let _ = writeln!(s, "      \"hit_ratio\": {},", json_f64(m.hit_ratio));
            let _ = writeln!(s, "      \"behind\": {},", m.behind);
            let _ = writeln!(s, "      \"batches\": {},", m.batches);
            let _ = writeln!(s, "      \"pass\": {},", p.pass());
            s.push_str("      \"checks\": [\n");
            for (j, c) in p.checks.iter().enumerate() {
                let _ = write!(
                    s,
                    "        {{\"component\": \"{}\", \"measured\": {}, \"ci_lower\": {}, \
                     \"ci_upper\": {}, \"bound_lower\": {}, \"bound_upper\": {}, \
                     \"estimate\": {}, \"rel_err\": {}, \"rel_tol\": {}, \
                     \"in_bounds\": {}, \"within_tol\": {}}}",
                    c.component,
                    json_f64(c.measured),
                    json_f64(c.ci_lower),
                    json_f64(c.ci_upper),
                    json_f64(c.bound_lower),
                    json_f64(c.bound_upper),
                    json_f64(c.estimate),
                    json_f64(c.rel_err),
                    json_f64(c.rel_tol),
                    c.in_bounds,
                    c.within_tol,
                );
                s.push_str(if j + 1 < p.checks.len() { ",\n" } else { "\n" });
            }
            s.push_str("      ]\n");
            s.push_str(if i + 1 < self.points.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON-safe float formatting (non-finite → `null`).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Harness errors.
#[derive(Debug)]
pub enum HarnessError {
    /// Socket / process error.
    Io(io::Error),
    /// Model evaluation rejected the measured operating point.
    Model(ModelError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Io(e) => write!(f, "io: {e}"),
            HarnessError::Model(e) => write!(f, "model: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<io::Error> for HarnessError {
    fn from(e: io::Error) -> Self {
        HarnessError::Io(e)
    }
}

impl From<ModelError> for HarnessError {
    fn from(e: ModelError) -> Self {
        HarnessError::Model(e)
    }
}

fn snapshot(addr: SocketAddr, shards: usize) -> io::Result<Vec<(u64, u64, u64, u64)>> {
    let stats = crate::client::Connection::connect(addr)?.stats()?;
    let field = |name: &str| stats.get(name).copied().unwrap_or_default();
    Ok((0..shards)
        .map(|j| {
            (
                field(&format!("shard{j}_keys_served")),
                field(&format!("shard{j}_busy_ns")),
                field(&format!("shard{j}_jobs")),
                field(&format!("shard{j}_queue_integral_ns")),
            )
        })
        .collect())
}

/// One replication's raw measurements.
struct RepMeasure {
    lambda_hat: f64,
    mu_hat: f64,
    shares: Vec<f64>,
    rho_busy: f64,
    shard_sojourns: Vec<Vec<f64>>,
    batch_mean: f64,
    n_server: f64,
    n_client: f64,
    hits: u64,
    misses: u64,
    behind: u64,
    batches: u64,
    sketch: QuantileSketch,
}

fn run_replication(
    addr: SocketAddr,
    profile: &Profile,
    rho: f64,
    rep: usize,
    floor: f64,
    mu_pace: f64,
    duration: f64,
) -> io::Result<RepMeasure> {
    let before = snapshot(addr, profile.shards)?;
    let window_start = Instant::now();
    let specs: Vec<StreamSpec> = (0..profile.shards)
        .map(|j| StreamSpec {
            shard: j,
            shards: profile.shards,
            key_rate: rho * mu_pace,
            q: profile.q,
            xi: profile.xi,
            keyspace: profile.keyspace,
            skew: profile.skew,
            duration,
            seed: profile.seed
                ^ (rep as u64).wrapping_add(1).wrapping_mul(0x9E37_79B9)
                ^ (j as u64 + 1).wrapping_mul(0x517C_C1B7)
                ^ ((rho * 1000.0) as u64),
        })
        .collect();
    let streams = run_streams(addr, &specs)?;
    let window = window_start.elapsed().as_secs_f64();
    let after = snapshot(addr, profile.shards)?;

    let mut d_keys = Vec::new();
    let mut d_busy = 0u64;
    let mut d_jobs = 0u64;
    let mut d_integral = 0u64;
    for (b, a) in before.iter().zip(&after) {
        d_keys.push(a.0.saturating_sub(b.0));
        d_busy += a.1.saturating_sub(b.1);
        d_jobs += a.2.saturating_sub(b.2);
        d_integral += a.3.saturating_sub(b.3);
    }
    let total_keys: u64 = d_keys.iter().sum();
    let shares = normalized_shares(&d_keys);

    let keys_sent: u64 = streams.iter().map(|s| s.keys_sent).sum();
    let batches: u64 = streams.iter().map(|s| s.batches_sent).sum();
    let hits: u64 = streams.iter().map(|s| s.hits).sum();
    let misses: u64 = streams.iter().map(|s| s.misses).sum();
    let behind: u64 = streams.iter().map(|s| s.behind).sum();

    let lambda_hat = keys_sent as f64 / duration;
    let busy_s = d_busy as f64 / 1e9;
    let mu_hat = if busy_s > 0.0 {
        total_keys as f64 / busy_s
    } else {
        profile.mu_nominal()
    };
    let rho_busy = busy_s / (profile.shards as f64 * window);

    let mut shard_sojourns = Vec::with_capacity(profile.shards);
    let mut batch_stats = StreamingStats::new();
    let mut rtt_stats = StreamingStats::new();
    let mut sketch = QuantileSketch::new();
    for s in &streams {
        let mut pop = Vec::with_capacity(s.rtts.len());
        for &rtt in &s.rtts {
            rtt_stats.push(rtt);
            let sojourn = (rtt - floor).max(1e-7);
            batch_stats.push(sojourn);
            sketch.push(sojourn);
            pop.push(sojourn);
        }
        shard_sojourns.push(pop);
    }

    // Little's law, two independent instrumentation paths: the server's
    // queue-gauge integral vs the client's arrival rate × sojourn.
    let n_server = d_integral as f64 / 1e9 / window;
    let n_client = (d_jobs as f64 / window) * (rtt_stats.mean() - floor).max(0.0);

    Ok(RepMeasure {
        lambda_hat,
        mu_hat,
        shares,
        rho_busy,
        shard_sojourns,
        batch_mean: batch_stats.mean(),
        n_server,
        n_client,
        hits,
        misses,
        behind,
        batches,
        sketch,
    })
}

/// Exact-sum share normalization (the model validates Σp = 1 to 1e-9).
fn normalized_shares(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![1.0 / counts.len() as f64; counts.len().max(1)];
    }
    let mut shares: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
    let head: f64 = shares[..shares.len() - 1].iter().sum();
    if let Some(last) = shares.last_mut() {
        *last = 1.0 - head;
    }
    shares
}

/// Assembles `draws` requests of fan-out `n` from measured per-shard
/// sojourn populations: multinomial key split, request latency = max
/// over all per-key draws (per-key law ≈ batch completion law).
fn assemble_requests(
    n: u64,
    shares: &[f64],
    populations: &[Vec<f64>],
    draws: usize,
    rng: &mut StdRng,
) -> StreamingStats {
    let mut stats = StreamingStats::new();
    for _ in 0..draws {
        let Ok(counts) = multinomial_counts(n, shares, rng) else {
            continue;
        };
        let mut ts = 0f64;
        for (j, &c) in counts.iter().enumerate() {
            let pop = &populations[j];
            if pop.is_empty() {
                continue;
            }
            for _ in 0..c {
                let idx = (rng.next_u64() % pop.len() as u64) as usize;
                ts = ts.max(pop[idx]);
            }
        }
        if ts > 0.0 {
            stats.push(ts);
        }
    }
    stats
}

fn check_rho_point(
    addr: SocketAddr,
    profile: &Profile,
    rho: f64,
    floor: f64,
    mu_pace: f64,
) -> Result<PointReport, HarnessError> {
    // Mixing time grows like 1/(1−ρ): stretch the window at the heavy
    // points so the effective sample count stays roughly constant
    // (mirrors the simulator harness's duration scaling).
    let duration = profile.duration * ((1.0 - 0.55) / (1.0 - rho)).clamp(1.0, 3.0);
    let mut reps = Vec::with_capacity(profile.replications);
    for rep in 0..profile.replications {
        reps.push(run_replication(
            addr, profile, rho, rep, floor, mu_pace, duration,
        )?);
    }

    // Pooled operating point for the model.
    let lambda_hat = mean(reps.iter().map(|r| r.lambda_hat));
    let mu_hat = mean(reps.iter().map(|r| r.mu_hat));
    let rho_busy = mean(reps.iter().map(|r| r.rho_busy));
    let share_sums: Vec<f64> = (0..profile.shards)
        .map(|j| mean(reps.iter().map(|r| r.shares[j])))
        .collect();
    let shares = {
        let total: f64 = share_sums.iter().sum();
        let mut v: Vec<f64> = share_sums.iter().map(|&x| x / total).collect();
        let head: f64 = v[..v.len() - 1].iter().sum();
        let m = v.len();
        v[m - 1] = 1.0 - head;
        v
    };

    let params = ModelParams::builder()
        .keys_per_request(profile.fanout_n)
        .servers(profile.shards)
        .load(memlat_model::LoadDistribution::Custom(shares.clone()))
        .arrival(memlat_model::ArrivalPattern::GeneralizedPareto { xi: profile.xi })
        .total_key_rate(lambda_hat)
        .concurrency(profile.q)
        .service_rate(mu_hat)
        .miss_ratio(0.0)
        .network_latency(floor)
        .build()?;
    let est = params.estimate()?;
    let model = ServerLatencyModel::new(&params)?;
    let queue = model.heaviest_queue();
    let delta = queue.decay_rate();
    let n = profile.fanout_n;

    // PR 5's sharpened Theorem-1 band plus the documented eq-14 bias.
    let ts_exact = harmonic(n) / delta;
    let ts_lo = est.server.lower.min(est.server_closed_form.lower);
    let ts_hi = est
        .server
        .upper
        .max(est.server_closed_form.upper)
        .max(ts_exact);
    let eq14 = est.server_closed_form.upper;
    let ts_bias = (ts_exact / eq14 - 1.0).abs();

    // Assembled T_S(N) per replication, CI across replications.
    let mut assembled = StreamingStats::new();
    let mut rep_rng = StdRng::seed_from_u64(profile.seed ^ 0xA55E_517C);
    for r in &reps {
        let s = assemble_requests(
            n,
            &r.shares,
            &r.shard_sojourns,
            profile.assembly_draws,
            &mut rep_rng,
        );
        if s.count() > 0 {
            assembled.push(s.mean());
        }
    }
    let assembled_ci = ConfidenceInterval::for_mean_t(&assembled, CONF_LEVEL);
    let loopback_slack = LOOPBACK_MARGIN * eq14;

    // Batch-sojourn mean per replication vs the decay law.
    let mut batch_means = StreamingStats::new();
    for r in &reps {
        batch_means.push(r.batch_mean);
    }
    let batch_ci = ConfidenceInterval::for_mean_t(&batch_means, CONF_LEVEL);
    let batch_est = 1.0 / delta;

    // Tail quantiles per replication, CI across replications — in heavy
    // traffic the replication scatter widens the tolerance honestly
    // instead of a fixed margin failing on variance alone.
    let mut p95s = StreamingStats::new();
    let mut p99s = StreamingStats::new();
    for r in &reps {
        if r.sketch.count() > 0 {
            p95s.push(r.sketch.quantile(0.95));
            p99s.push(r.sketch.quantile(0.99));
        }
    }
    let p95_ci = ConfidenceInterval::for_mean_t(&p95s, CONF_LEVEL);
    let p99_ci = ConfidenceInterval::for_mean_t(&p99s, CONF_LEVEL);
    let p95_est = (20f64).ln() / delta;
    let p99_est = (100f64).ln() / delta;

    // Little's law across both instrumentation paths.
    let n_server = mean(reps.iter().map(|r| r.n_server));
    let n_client = mean(reps.iter().map(|r| r.n_client));

    let checks = vec![
        live_check(
            "assembled_ts",
            &assembled_ci,
            ts_lo - loopback_slack,
            ts_hi + loopback_slack,
            eq14,
            LOOPBACK_MARGIN,
            ts_bias,
        ),
        live_check(
            "batch_mean",
            &batch_ci,
            batch_est * (1.0 - LOOPBACK_MARGIN),
            batch_est * (1.0 + LOOPBACK_MARGIN),
            batch_est,
            LOOPBACK_MARGIN,
            0.0,
        ),
        live_check(
            "batch_p95",
            &p95_ci,
            p95_est * (1.0 - TAIL_MARGIN),
            p95_est * (1.0 + TAIL_MARGIN),
            p95_est,
            TAIL_MARGIN,
            0.0,
        ),
        live_check(
            "batch_p99",
            &p99_ci,
            p99_est * (1.0 - TAIL_MARGIN),
            p99_est * (1.0 + TAIL_MARGIN),
            p99_est,
            TAIL_MARGIN,
            0.0,
        ),
        point_check("little", n_server, n_client, LITTLE_MARGIN),
    ];

    let hits: u64 = reps.iter().map(|r| r.hits).sum();
    let misses: u64 = reps.iter().map(|r| r.misses).sum();
    let keys = hits + misses;
    Ok(PointReport {
        id: format!("rho{:03}", (rho * 100.0).round() as u32),
        rho_target: rho,
        measure: PointMeasure {
            lambda_hat,
            mu_hat,
            shares,
            rho_model: queue.utilization(),
            rho_busy,
            delta,
            hit_ratio: if keys > 0 {
                hits as f64 / keys as f64
            } else {
                f64::NAN
            },
            behind: reps.iter().map(|r| r.behind).sum(),
            batches: reps.iter().map(|r| r.batches).sum(),
        },
        replications: profile.replications,
        checks,
    })
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let mut s = StreamingStats::new();
    for x in it {
        s.push(x);
    }
    s.mean()
}

/// Runs the whole harness against a server obtained from `source`:
/// preload, floor calibration, every utilization point, then graceful
/// shutdown with the drain/leak evidence folded into the report.
///
/// # Errors
///
/// Propagates socket, process and model errors.
pub fn run(source: &ServerSource, profile: &Profile) -> Result<Report, HarnessError> {
    let spec = ServerSpec {
        shards: profile.shards,
        service_exp_mean: Some(profile.service_exp_mean),
        ..ServerSpec::default()
    };
    let server = RunningServer::launch(source, &spec)?;
    let addr = server.addr();

    preload(addr, profile.keyspace, profile.value_len)?;
    let floor = measure_network_floor(addr, profile.floor_probes)?;

    // Calibration: the achieved service rate μ̂ runs below the nominal
    // injection rate (parse, store and timer-slack overheads add to every
    // key), so pacing at ρ·μ_nominal would overshoot the target
    // utilization. A short moderate-load run measures μ̂ once; the sweep
    // paces every point against it.
    let cal = run_replication(
        addr,
        profile,
        0.40,
        usize::MAX >> 1,
        floor,
        profile.mu_nominal(),
        profile.duration.clamp(0.5, 2.5),
    )?;
    let mu_pace = cal.mu_hat;
    eprintln!(
        "memlat-loadgen: floor {:.1} µs, calibrated μ̂ {:.0} keys/s/shard \
         (nominal {:.0})",
        floor * 1e6,
        mu_pace,
        profile.mu_nominal(),
    );

    let mut points = Vec::with_capacity(profile.rho_points.len());
    for &rho in &profile.rho_points {
        points.push(check_rho_point(addr, profile, rho, floor, mu_pace)?);
    }

    // Give the server a beat to reap the measurement connections, then
    // count what is still open (the probe connection itself is one).
    std::thread::sleep(std::time::Duration::from_millis(150));
    let shutdown = server.shutdown()?;
    Ok(Report {
        quick: profile.quick,
        replications: profile.replications,
        shards: profile.shards,
        service_exp_mean: profile.service_exp_mean,
        floor,
        points,
        leaked_connections: shutdown.connections_at_shutdown.saturating_sub(1),
        clean_shutdown: shutdown.clean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_normalize_exactly() {
        let s = normalized_shares(&[3, 5, 2]);
        assert_eq!(s.len(), 3);
        let sum: f64 = s.iter().sum();
        assert!((sum - 1.0).abs() < f64::EPSILON);
        assert!((s[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn assembly_max_exceeds_population_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let pops = vec![vec![1.0, 2.0, 3.0], vec![1.5, 2.5]];
        let stats = assemble_requests(50, &[0.5, 0.5], &pops, 200, &mut rng);
        assert_eq!(stats.count(), 200);
        // Max of 50 draws from {1..3} concentrates near the top.
        assert!(stats.mean() > 2.5, "{}", stats.mean());
    }

    #[test]
    fn report_json_is_schema_stable() {
        let check = point_check("little", 2.0, 2.1, 0.3);
        let report = Report {
            quick: true,
            replications: 2,
            shards: 2,
            service_exp_mean: 1.25e-3,
            floor: 5e-5,
            points: vec![PointReport {
                id: "rho055".into(),
                rho_target: 0.55,
                measure: PointMeasure {
                    lambda_hat: 880.0,
                    mu_hat: 800.0,
                    shares: vec![0.5, 0.5],
                    rho_model: 0.55,
                    rho_busy: 0.54,
                    delta: 300.0,
                    hit_ratio: 1.0,
                    behind: 0,
                    batches: 4000,
                },
                replications: 2,
                checks: vec![check],
            }],
            leaked_connections: 0,
            clean_shutdown: true,
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"memlat-server-conformance-v1\""));
        assert!(json.contains("\"component\": \"little\""));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
        // Byte-identical when serialized twice.
        assert_eq!(json, report.to_json());
    }

    #[test]
    fn profiles_are_consistent() {
        for p in [Profile::quick(), Profile::full(), Profile::smoke()] {
            assert!(p.shards >= 1);
            assert!(p.service_exp_mean > 0.0);
            assert!(!p.rho_points.is_empty());
            assert!(p.rho_points.iter().all(|&r| r > 0.0 && r < 1.0));
            assert!(p.q > 0.0 && p.q < 1.0);
        }
        assert!(Profile::full().duration > Profile::quick().duration);
        assert!(Profile::smoke().duration < Profile::quick().duration);
    }
}
