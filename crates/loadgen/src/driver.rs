//! Traffic drivers.
//!
//! Two shapes of load:
//!
//! * **Open-loop streams** ([`run_streams`]) — the measurement workload.
//!   One stream per server shard reproduces the paper's GI^X/M/1 input
//!   process over a real socket: inter-batch gaps drawn from the
//!   Generalized-Pareto law at rate `(1 − q)·λ_keys`, geometric batch
//!   sizes with parameter `q`, keys drawn from the global Zipf popularity
//!   conditioned on the target shard. Every batch is one multiget and
//!   therefore exactly one job in the shard queue, so the client-side
//!   round-trip time of a batch is the shard *batch sojourn* plus the
//!   loopback floor. Pacing is open-loop: send times never wait for
//!   responses, so queueing builds in the server, not the client.
//! * **Closed-loop pipelined gets** ([`run_closed_loop`]) — the
//!   throughput workload for the `server_loopback` bench scenario.
//!
//! Both share a precomputed [`KeyTable`] mapping Zipf ranks to key bytes
//! and shard homes, so the hot loops never format strings.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use memlat_dist::{GeneralizedPareto, GeometricBatch};
use memlat_server::shard_of;
use memlat_workload::ZipfPopularity;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::client::{Connection, Response};

/// Precomputed key material: rank → key bytes and rank → shard home.
#[derive(Debug, Clone)]
pub struct KeyTable {
    keys: Vec<Vec<u8>>,
    shard: Vec<u16>,
}

impl KeyTable {
    /// Builds the table for `keyspace` ranks over `shards` shards.
    #[must_use]
    pub fn new(keyspace: u64, shards: usize) -> Self {
        let mut keys = Vec::with_capacity(keyspace as usize);
        let mut shard = Vec::with_capacity(keyspace as usize);
        for rank in 0..keyspace {
            let k = format!("k{rank}").into_bytes();
            shard.push(shard_of(&k, shards) as u16);
            keys.push(k);
        }
        Self { keys, shard }
    }

    /// Key bytes for `rank`.
    #[must_use]
    pub fn key(&self, rank: u64) -> &[u8] {
        &self.keys[rank as usize]
    }

    /// Shard home of `rank`.
    #[must_use]
    pub fn shard(&self, rank: u64) -> usize {
        self.shard[rank as usize] as usize
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Configuration of one open-loop per-shard stream.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Target shard (keys are conditioned onto it by rejection).
    pub shard: usize,
    /// Total shard count at the server.
    pub shards: usize,
    /// Target key arrival rate for this stream (keys/s).
    pub key_rate: f64,
    /// Geometric batch parameter `q` (mean batch `1/(1 − q)`).
    pub q: f64,
    /// Generalized-Pareto burst degree `ξ`.
    pub xi: f64,
    /// Zipf keyspace size.
    pub keyspace: u64,
    /// Zipf skew.
    pub skew: f64,
    /// Wall-clock send window (seconds).
    pub duration: f64,
    /// RNG seed for gaps, batch sizes and key draws.
    pub seed: u64,
}

/// Measurements from one open-loop stream.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Shard this stream targeted.
    pub shard: usize,
    /// Batches (multigets) sent.
    pub batches_sent: u64,
    /// Keys sent across all batches.
    pub keys_sent: u64,
    /// Keys that came back with a value.
    pub hits: u64,
    /// Keys that missed.
    pub misses: u64,
    /// Batches whose actual send lagged the schedule by more than one
    /// mean gap — pacing-health diagnostic, not a correctness gate.
    pub behind: u64,
    /// Per-batch round-trip times (seconds), in completion order.
    pub rtts: Vec<f64>,
    /// Wall-clock seconds from first scheduled send to last response.
    pub elapsed: f64,
}

/// Runs one open-loop stream against `addr`; returns when every sent
/// batch has been answered.
///
/// # Errors
///
/// Propagates socket errors from either direction.
///
/// # Panics
///
/// Panics if `spec` holds parameters the distribution constructors
/// reject (validated by the conformance harness before use).
pub fn run_stream(addr: SocketAddr, spec: &StreamSpec) -> io::Result<StreamResult> {
    let table = KeyTable::new(spec.keyspace, spec.shards);
    run_stream_with_table(addr, spec, &table)
}

/// [`run_stream`] with a caller-provided [`KeyTable`] (shared across
/// streams to avoid rebuilding it per shard).
///
/// # Errors
///
/// Propagates socket errors from either direction.
///
/// # Panics
///
/// Panics if `spec` holds parameters the distribution constructors
/// reject.
#[allow(clippy::too_many_lines)]
pub fn run_stream_with_table(
    addr: SocketAddr,
    spec: &StreamSpec,
    table: &KeyTable,
) -> io::Result<StreamResult> {
    let conn = Connection::connect(addr)?;
    let mut write_half = conn.try_clone_stream()?;

    let batch_rate = spec.key_rate * (1.0 - spec.q);
    let gap_law = GeneralizedPareto::facebook(spec.xi, batch_rate).expect("valid gap law");
    let batch_law = GeometricBatch::new(spec.q).expect("valid batch law");
    let zipf = ZipfPopularity::new(spec.keyspace, spec.skew).expect("valid popularity");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Send timestamps and per-batch key counts, in send order. The
    // reader pops the front entry for each `get` response it completes.
    let in_flight: Arc<Mutex<VecDeque<(Instant, u64)>>> = Arc::new(Mutex::new(VecDeque::new()));
    let sent = Arc::new(AtomicU64::new(0));
    let writer_done = Arc::new(AtomicBool::new(false));

    let reader_in_flight = Arc::clone(&in_flight);
    let reader_sent = Arc::clone(&sent);
    let reader_done = Arc::clone(&writer_done);
    let reader = thread::Builder::new()
        .name(format!("loadgen-read-{}", spec.shard))
        .spawn(
            move || -> io::Result<(Vec<f64>, u64, u64, Option<Instant>)> {
                let mut conn = conn;
                let mut rtts = Vec::new();
                let mut hits = 0u64;
                let mut misses = 0u64;
                let mut received = 0u64;
                let mut last = None;
                loop {
                    if received == reader_sent.load(Ordering::Acquire)
                        && reader_done.load(Ordering::Acquire)
                    {
                        break;
                    }
                    match conn.read_response()? {
                        Response::Values(values) => {
                            let now = Instant::now();
                            let (sent_at, keys) = reader_in_flight
                                .lock()
                                .expect("in-flight queue poisoned")
                                .pop_front()
                                .ok_or_else(|| {
                                    io::Error::new(
                                        io::ErrorKind::InvalidData,
                                        "response without matching request",
                                    )
                                })?;
                            rtts.push(now.duration_since(sent_at).as_secs_f64());
                            hits += values.len() as u64;
                            misses += keys.saturating_sub(values.len() as u64);
                            received += 1;
                            last = Some(now);
                        }
                        other => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("unexpected response under get load: {other:?}"),
                            ))
                        }
                    }
                }
                Ok((rtts, hits, misses, last))
            },
        )
        .expect("spawn stream reader");

    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(spec.duration);
    let mean_gap = Duration::from_secs_f64(1.0 / batch_rate);
    let mut next_send = start;
    let mut frame = Vec::with_capacity(512);
    let mut batches = 0u64;
    let mut keys_sent = 0u64;
    let mut behind = 0u64;
    let write_err = loop {
        next_send += Duration::from_secs_f64(gap_law.sample_with(&mut rng));
        if next_send >= deadline {
            break None;
        }
        let batch = batch_law.sample_with(&mut rng).max(1);
        frame.clear();
        frame.extend_from_slice(b"get");
        for _ in 0..batch {
            // Rejection-sample the global Zipf down to this shard.
            let rank = loop {
                let r = zipf.sample_key(&mut rng);
                if table.shard(r) == spec.shard {
                    break r;
                }
            };
            frame.push(b' ');
            frame.extend_from_slice(table.key(rank));
        }
        frame.extend_from_slice(b"\r\n");

        let now = Instant::now();
        if now < next_send {
            thread::sleep(next_send - now);
        } else if now.duration_since(next_send) > mean_gap {
            behind += 1;
        }
        in_flight
            .lock()
            .expect("in-flight queue poisoned")
            .push_back((Instant::now(), batch));
        if let Err(e) = write_half.write_all(&frame) {
            // Roll back the entry the reader will never see.
            in_flight
                .lock()
                .expect("in-flight queue poisoned")
                .pop_back();
            break Some(e);
        }
        sent.fetch_add(1, Ordering::Release);
        batches += 1;
        keys_sent += batch;
    };
    writer_done.store(true, Ordering::Release);

    let (rtts, hits, misses, last) = reader
        .join()
        .map_err(|_| io::Error::other("stream reader panicked"))??;
    if let Some(e) = write_err {
        return Err(e);
    }
    let elapsed = last
        .map_or(spec.duration, |t| t.duration_since(start).as_secs_f64())
        .max(spec.duration);
    Ok(StreamResult {
        shard: spec.shard,
        batches_sent: batches,
        keys_sent,
        hits,
        misses,
        behind,
        rtts,
        elapsed,
    })
}

/// Runs one stream per spec concurrently (a shared [`KeyTable`] is built
/// once); returns results in spec order.
///
/// # Errors
///
/// Returns the first stream error encountered.
///
/// # Panics
///
/// Panics if the specs disagree on `shards`/`keyspace` (caller bug).
pub fn run_streams(addr: SocketAddr, specs: &[StreamSpec]) -> io::Result<Vec<StreamResult>> {
    let Some(first) = specs.first() else {
        return Ok(Vec::new());
    };
    assert!(
        specs
            .iter()
            .all(|s| s.shards == first.shards && s.keyspace == first.keyspace),
        "streams must share one key table"
    );
    let table = Arc::new(KeyTable::new(first.keyspace, first.shards));
    let handles: Vec<_> = specs
        .iter()
        .map(|spec| {
            let spec = spec.clone();
            let table = Arc::clone(&table);
            thread::Builder::new()
                .name(format!("loadgen-stream-{}", spec.shard))
                .spawn(move || run_stream_with_table(addr, &spec, &table))
                .expect("spawn stream")
        })
        .collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(
            h.join()
                .map_err(|_| io::Error::other("stream panicked"))??,
        );
    }
    Ok(out)
}

/// Preloads `keyspace` keys (`k0 … k{keyspace−1}`) with `value_len`-byte
/// payloads via pipelined `set … noreply`, with a `version` round-trip
/// every 128 sets for flow control.
///
/// # Errors
///
/// Propagates socket errors and unexpected replies.
pub fn preload(addr: SocketAddr, keyspace: u64, value_len: usize) -> io::Result<()> {
    let mut conn = Connection::connect(addr)?;
    let payload = vec![b'v'; value_len];
    let mut frame = Vec::with_capacity(128 * (value_len + 48));
    for rank in 0..keyspace {
        frame.extend_from_slice(format!("set k{rank} 0 0 {value_len} noreply\r\n").as_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(b"\r\n");
        if rank % 128 == 127 || rank + 1 == keyspace {
            frame.extend_from_slice(b"version\r\n");
            conn.send(&frame)?;
            frame.clear();
            match conn.read_response()? {
                Response::Version(_) => {}
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("preload sync failed: {other:?}"),
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Estimates the loopback floor `T̂_N`: the median round-trip of
/// `probes` sequential `set` operations (sets bypass the server's
/// service-time injection, so their RTT is network + parse + dispatch
/// overhead only).
///
/// # Errors
///
/// Propagates socket errors.
pub fn measure_network_floor(addr: SocketAddr, probes: usize) -> io::Result<f64> {
    let mut conn = Connection::connect(addr)?;
    let mut rtts = Vec::with_capacity(probes);
    for i in 0..probes {
        let key = format!("tnprobe{}", i % 8);
        let start = Instant::now();
        conn.set(key.as_bytes(), b"p")?;
        rtts.push(start.elapsed().as_secs_f64());
    }
    rtts.sort_by(f64::total_cmp);
    Ok(rtts[rtts.len() / 2])
}

/// Closed-loop bench configuration.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Concurrent connections.
    pub connections: usize,
    /// Pipelined requests outstanding per connection.
    pub depth: usize,
    /// Wall-clock measurement window (seconds).
    pub duration: f64,
    /// Zipf keyspace size (must be preloaded).
    pub keyspace: u64,
    /// Zipf skew.
    pub skew: f64,
    /// Base RNG seed (per-connection streams derive from it).
    pub seed: u64,
}

/// Closed-loop bench outcome.
#[derive(Debug, Clone)]
pub struct ClosedLoopResult {
    /// Single-key get requests completed inside the window.
    pub requests: u64,
    /// Hits among them.
    pub hits: u64,
    /// Wall-clock seconds actually spent (longest connection).
    pub elapsed: f64,
}

/// Drives `connections` pipelined closed loops of single-key gets for
/// `duration` seconds and reports aggregate throughput inputs.
///
/// # Errors
///
/// Returns the first connection error encountered.
///
/// # Panics
///
/// Panics on invalid Zipf parameters.
pub fn run_closed_loop(addr: SocketAddr, cfg: &ClosedLoopConfig) -> io::Result<ClosedLoopResult> {
    let zipf = ZipfPopularity::new(cfg.keyspace, cfg.skew).expect("valid popularity");
    let zipf = Arc::new(zipf);
    let handles: Vec<_> = (0..cfg.connections)
        .map(|c| {
            let zipf = Arc::clone(&zipf);
            let cfg = cfg.clone();
            thread::Builder::new()
                .name(format!("loadgen-loop-{c}"))
                .spawn(move || -> io::Result<(u64, u64, f64)> {
                    let mut conn = Connection::connect(addr)?;
                    let mut rng =
                        StdRng::seed_from_u64(cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9));
                    let mut frame = Vec::with_capacity(64);
                    let mut send_get = |conn: &mut Connection, rng: &mut StdRng| {
                        frame.clear();
                        frame.extend_from_slice(b"get k");
                        frame.extend_from_slice(zipf.sample_key(rng).to_string().as_bytes());
                        frame.extend_from_slice(b"\r\n");
                        conn.send(&frame)
                    };
                    for _ in 0..cfg.depth {
                        send_get(&mut conn, &mut rng)?;
                    }
                    let start = Instant::now();
                    let deadline = start + Duration::from_secs_f64(cfg.duration);
                    let mut requests = 0u64;
                    let mut hits = 0u64;
                    while Instant::now() < deadline {
                        match conn.read_response()? {
                            Response::Values(v) => {
                                requests += 1;
                                hits += u64::from(!v.is_empty());
                            }
                            other => {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("unexpected bench response: {other:?}"),
                                ))
                            }
                        }
                        send_get(&mut conn, &mut rng)?;
                    }
                    // Drain the pipeline so the server sees a clean close.
                    for _ in 0..cfg.depth {
                        let _ = conn.read_response()?;
                    }
                    Ok((requests, hits, start.elapsed().as_secs_f64()))
                })
                .expect("spawn closed loop")
        })
        .collect();
    let mut requests = 0;
    let mut hits = 0;
    let mut elapsed = 0f64;
    for h in handles {
        let (r, hh, e) = h.join().map_err(|_| io::Error::other("loop panicked"))??;
        requests += r;
        hits += hh;
        elapsed = elapsed.max(e);
    }
    Ok(ClosedLoopResult {
        requests,
        hits,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_table_matches_server_hash() {
        let table = KeyTable::new(64, 4);
        assert_eq!(table.len(), 64);
        assert!(!table.is_empty());
        for rank in 0..64u64 {
            let key = format!("k{rank}");
            assert_eq!(table.key(rank), key.as_bytes());
            assert_eq!(table.shard(rank), shard_of(key.as_bytes(), 4));
        }
        // All shards get a nonempty slice of a 64-rank space.
        for shard in 0..4 {
            assert!((0..64).any(|r| table.shard(r) == shard));
        }
    }
}
