//! A minimal memcached text-protocol client connection.
//!
//! Binary-safe on the read side: `VALUE` data blocks are consumed by
//! their declared length, never by line scanning, so payloads containing
//! CRLF round-trip correctly.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One value returned by `get`/`gets`.
#[derive(Debug, Clone)]
pub struct Value {
    /// The key, echoed by the server.
    pub key: Vec<u8>,
    /// Client flags stored with the item.
    pub flags: u32,
    /// CAS unique (present for `gets`).
    pub cas: Option<u64>,
    /// The payload.
    pub data: Vec<u8>,
}

/// A parsed server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// `get` result: zero or more values then `END`.
    Values(Vec<Value>),
    /// `STORED`.
    Stored,
    /// `DELETED`.
    Deleted,
    /// `NOT_FOUND`.
    NotFound,
    /// `OK` (the `shutdown` admin acknowledgement).
    Ok,
    /// `VERSION <string>`.
    Version(String),
    /// `stats` result rows.
    Stats(Vec<(String, String)>),
    /// Any `ERROR`/`CLIENT_ERROR`/`SERVER_ERROR` line.
    Error(String),
}

/// A buffered client connection.
pub struct Connection {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
}

impl Connection {
    /// Connects with `TCP_NODELAY` and a read timeout (load-generator
    /// hangs must fail loudly, not deadlock a CI job).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self {
            stream,
            buf: Vec::with_capacity(16 << 10),
            start: 0,
        })
    }

    /// Writes raw protocol bytes.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    fn fill(&mut self) -> io::Result<()> {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        let mut chunk = [0u8; 16 << 10];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Reads one `\r\n`-terminated line (terminator stripped).
    fn read_line(&mut self) -> io::Result<String> {
        loop {
            if let Some(pos) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let end = self.start + pos;
                let mut line = &self.buf[self.start..end];
                if let [head @ .., b'\r'] = line {
                    line = head;
                }
                let s = String::from_utf8_lossy(line).into_owned();
                self.start = end + 1;
                return Ok(s);
            }
            self.fill()?;
        }
    }

    /// Reads exactly `n` bytes of binary data.
    fn read_block(&mut self, n: usize) -> io::Result<Vec<u8>> {
        while self.buf.len() - self.start < n {
            self.fill()?;
        }
        let out = self.buf[self.start..self.start + n].to_vec();
        self.start += n;
        Ok(out)
    }

    /// Reads one complete response (of any kind).
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed frames.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let line = self.read_line()?;
        if let Some(rest) = line.strip_prefix("VALUE ") {
            let mut values = Vec::new();
            let mut header = rest.to_string();
            loop {
                let mut parts = header.split(' ');
                let (Some(key), Some(flags), Some(len)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(bad_frame(&header));
                };
                let cas = parts.next().map(str::parse).transpose().ok().flatten();
                let (Ok(flags), Ok(len)) = (flags.parse::<u32>(), len.parse::<usize>()) else {
                    return Err(bad_frame(&header));
                };
                let mut data = self.read_block(len + 2)?;
                data.truncate(len);
                values.push(Value {
                    key: key.as_bytes().to_vec(),
                    flags,
                    cas,
                    data,
                });
                let next = self.read_line()?;
                if next == "END" {
                    return Ok(Response::Values(values));
                }
                let Some(rest) = next.strip_prefix("VALUE ") else {
                    return Err(bad_frame(&next));
                };
                header = rest.to_string();
            }
        }
        if let Some(rest) = line.strip_prefix("STAT ") {
            let mut rows = Vec::new();
            let mut row = rest.to_string();
            loop {
                let (k, v) = row.split_once(' ').unwrap_or((row.as_str(), ""));
                rows.push((k.to_string(), v.to_string()));
                let next = self.read_line()?;
                if next == "END" {
                    return Ok(Response::Stats(rows));
                }
                let Some(rest) = next.strip_prefix("STAT ") else {
                    return Err(bad_frame(&next));
                };
                row = rest.to_string();
            }
        }
        match line.as_str() {
            "END" => Ok(Response::Values(Vec::new())),
            "STORED" => Ok(Response::Stored),
            "DELETED" => Ok(Response::Deleted),
            "NOT_FOUND" => Ok(Response::NotFound),
            "OK" => Ok(Response::Ok),
            other => {
                if let Some(v) = other.strip_prefix("VERSION ") {
                    Ok(Response::Version(v.to_string()))
                } else if other.starts_with("ERROR")
                    || other.starts_with("CLIENT_ERROR")
                    || other.starts_with("SERVER_ERROR")
                {
                    Ok(Response::Error(other.to_string()))
                } else {
                    Err(bad_frame(other))
                }
            }
        }
    }

    /// `set` convenience: stores `data` under `key`, returns on `STORED`.
    ///
    /// # Errors
    ///
    /// Socket errors, or `InvalidData` when the server rejects the set.
    pub fn set(&mut self, key: &[u8], data: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(key.len() + data.len() + 32);
        frame.extend_from_slice(b"set ");
        frame.extend_from_slice(key);
        frame.extend_from_slice(format!(" 0 0 {}\r\n", data.len()).as_bytes());
        frame.extend_from_slice(data);
        frame.extend_from_slice(b"\r\n");
        self.send(&frame)?;
        match self.read_response()? {
            Response::Stored => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("set rejected: {other:?}"),
            )),
        }
    }

    /// Fetches the server's `stats` as numeric key/value pairs
    /// (non-numeric values are skipped).
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed frames.
    pub fn stats(&mut self) -> io::Result<std::collections::HashMap<String, u64>> {
        self.send(b"stats\r\n")?;
        match self.read_response()? {
            Response::Stats(rows) => Ok(rows
                .into_iter()
                .filter_map(|(k, v)| v.parse::<u64>().ok().map(|v| (k, v)))
                .collect()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("stats rejected: {other:?}"),
            )),
        }
    }

    /// Clones the underlying stream (for split reader/writer threads).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn try_clone_stream(&self) -> io::Result<TcpStream> {
        self.stream.try_clone()
    }
}

fn bad_frame(line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected server frame: {line:?}"),
    )
}
