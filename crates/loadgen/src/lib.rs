//! `memlat-loadgen` — socket-level load generation and live-server
//! conformance for [`memlat-server`](memlat_server).
//!
//! Where the simulator crates validate the paper's model against an
//! idealized event loop, this crate closes the remaining gap: it drives
//! the *real* server binary over real TCP sockets with the paper's
//! GI^X/M/1 input process and checks that measured round-trip latency
//! still lands inside the Theorem-1 band, follows the decay law `δ` in
//! mean and tails, and satisfies Little's law between two independent
//! instrumentation paths (server queue gauge vs client timestamps).
//!
//! Modules:
//!
//! * [`client`] — a minimal binary-safe memcached text-protocol client.
//! * [`driver`] — open-loop per-shard measurement streams and the
//!   closed-loop pipelined bench driver.
//! * [`spawn`] — server lifecycle (in-process, child binary, external).
//! * [`conformance`] — the live harness and its deterministic-schema
//!   JSON report (`results/server_conformance.json`).

#![warn(missing_docs)]

pub mod client;
pub mod conformance;
pub mod driver;
pub mod spawn;

pub use client::{Connection, Response, Value};
pub use conformance::{Profile, Report};
pub use spawn::{RunningServer, ServerSource, ServerSpec};
