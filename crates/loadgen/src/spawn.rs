//! Server lifecycle for load runs: in-process, child binary, or an
//! externally managed address — all shut down through the same admin
//! `shutdown` command so drain behaviour is exercised identically.

use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use memlat_server::runtime::RuntimeKind;
use memlat_server::shard::ShardConfig;
use memlat_server::{start, ServerConfig, ServerHandle};

use crate::client::{Connection, Response};

/// How to obtain a server for the run.
#[derive(Debug, Clone)]
pub enum ServerSource {
    /// Start `memlat-server` inside this process (default).
    InProcess,
    /// Spawn the given server binary as a child process and parse its
    /// `LISTENING <addr>` banner.
    Child(PathBuf),
    /// Use an already-running server (no lifecycle management; the
    /// shutdown step still sends the admin command).
    External(SocketAddr),
}

/// Server parameters shared by the in-process and child paths.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Shard count `M`.
    pub shards: usize,
    /// Cache memory budget in bytes.
    pub memory_bytes: usize,
    /// Mean injected per-key service time in seconds (None disables).
    pub service_exp_mean: Option<f64>,
    /// Injection RNG seed.
    pub service_seed: u64,
    /// Runtime backend.
    pub runtime: RuntimeKind,
}

impl Default for ServerSpec {
    fn default() -> Self {
        Self {
            shards: 2,
            memory_bytes: 64 << 20,
            service_exp_mean: None,
            service_seed: 0x5EED,
            runtime: RuntimeKind::Blocking,
        }
    }
}

enum Inner {
    InProcess(ServerHandle),
    Child(Child),
    External,
}

/// A launched (or adopted) server plus how to stop it.
pub struct RunningServer {
    addr: SocketAddr,
    inner: Inner,
}

/// What the shutdown step observed — the leak/drain evidence the CI
/// smoke job asserts on.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// `curr_connections` reported by the server just before shutdown
    /// (the probing connection itself is included).
    pub connections_at_shutdown: u64,
    /// Whether the server acknowledged with `OK` and (for managed
    /// servers) exited/joined cleanly.
    pub clean: bool,
}

impl RunningServer {
    /// Launches (or adopts) a server per `source`.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn errors; a child that never prints its
    /// `LISTENING` banner is an error.
    pub fn launch(source: &ServerSource, spec: &ServerSpec) -> io::Result<Self> {
        match source {
            ServerSource::InProcess => {
                let cfg = ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    shard: ShardConfig {
                        shards: spec.shards,
                        memory_bytes: spec.memory_bytes,
                        service_exp_mean: spec.service_exp_mean,
                        service_seed: spec.service_seed,
                    },
                    runtime: spec.runtime,
                };
                let handle = start(&cfg)?;
                Ok(Self {
                    addr: handle.addr(),
                    inner: Inner::InProcess(handle),
                })
            }
            ServerSource::Child(bin) => {
                let mut cmd = Command::new(bin);
                cmd.arg("--addr")
                    .arg("127.0.0.1:0")
                    .arg("--shards")
                    .arg(spec.shards.to_string())
                    .arg("--memory-mb")
                    .arg(((spec.memory_bytes >> 20).max(1)).to_string())
                    .arg("--service-seed")
                    .arg(spec.service_seed.to_string())
                    .arg("--runtime")
                    .arg(match spec.runtime {
                        RuntimeKind::Blocking => "blocking",
                        RuntimeKind::Poll => "poll",
                    })
                    .stdout(Stdio::piped());
                if let Some(mean) = spec.service_exp_mean {
                    cmd.arg("--service-exp-us")
                        .arg(format!("{:.3}", mean * 1e6));
                }
                let mut child = cmd.spawn()?;
                let stdout = child
                    .stdout
                    .take()
                    .ok_or_else(|| io::Error::other("child stdout not captured"))?;
                let mut lines = BufReader::new(stdout).lines();
                let addr = loop {
                    let Some(line) = lines.next() else {
                        let _ = child.kill();
                        return Err(io::Error::other("server exited before LISTENING banner"));
                    };
                    let line = line?;
                    if let Some(rest) = line.strip_prefix("LISTENING ") {
                        break rest.trim().parse::<SocketAddr>().map_err(|e| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("bad LISTENING banner {rest:?}: {e}"),
                            )
                        })?;
                    }
                };
                // Keep draining the pipe in the background so the child
                // can never block on a full stdout buffer.
                std::thread::Builder::new()
                    .name("loadgen-child-stdout".into())
                    .spawn(move || for _ in lines {})
                    .expect("spawn stdout drain");
                Ok(Self {
                    addr,
                    inner: Inner::Child(child),
                })
            }
            ServerSource::External(addr) => Ok(Self {
                addr: *addr,
                inner: Inner::External,
            }),
        }
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends the admin `shutdown`, waits for the server to finish, and
    /// reports what the drain looked like.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the shutdown probe.
    pub fn shutdown(self) -> io::Result<ShutdownReport> {
        let mut conn = Connection::connect(self.addr)?;
        let connections_at_shutdown = conn
            .stats()?
            .get("curr_connections")
            .copied()
            .unwrap_or_default();
        conn.send(b"shutdown\r\n")?;
        let acked = matches!(conn.read_response()?, Response::Ok);
        let finished = match self.inner {
            Inner::InProcess(handle) => handle.join().is_ok(),
            Inner::Child(mut child) => child.wait().map(|s| s.success()).unwrap_or(false),
            Inner::External => true,
        };
        Ok(ShutdownReport {
            connections_at_shutdown,
            clean: acked && finished,
        })
    }
}
