//! End-to-end smoke of the live conformance harness against an
//! in-process server: preload → floor → calibration → one-point sweep →
//! graceful shutdown, all over real loopback sockets. Gates lifecycle
//! cleanliness and report shape only — the smoke profile's sub-second
//! windows are too noisy to assert the statistical checks here (the CI
//! smoke job applies the same policy).

use memlat_loadgen::conformance::run;
use memlat_loadgen::{Profile, ServerSource};

#[test]
fn smoke_profile_lifecycle_is_clean() {
    let profile = Profile::smoke();
    let report = run(&ServerSource::InProcess, &profile).expect("harness completes");

    assert_eq!(
        report.leaked_connections, 0,
        "connections leaked at shutdown"
    );
    assert!(
        report.clean_shutdown,
        "shutdown was not acknowledged cleanly"
    );
    assert_eq!(report.points.len(), profile.rho_points.len());
    for point in &report.points {
        assert_eq!(point.replications, profile.replications);
        assert!(point.measure.lambda_hat > 0.0, "no traffic was delivered");
        assert!(point.measure.mu_hat > 0.0, "no service was observed");
        assert!(!point.checks.is_empty(), "point produced no checks");
    }

    let json = report.to_json();
    assert!(json.contains("\"schema\": \"memlat-server-conformance-v1\""));
    assert!(json.ends_with('\n'));
}
