//! Statistical conformance harness: proves the simulator and the
//! analytical model agree, with CI-gated confidence intervals.
//!
//! The harness sweeps the paper's validated operating grid — the
//! Table 3 point, the Fig. 7 fan-out axis, and a utilization ramp up
//! to and *past* the service cliff `ρ_S(ξ)` of Table 4 — and for every
//! point asserts that the simulated `E[T_S(N)]`, `E[T_D(N)]` and
//! `E[T(N)]` fall
//!
//! 1. **inside the Theorem-1 band** (sharpened with the exact-in-model
//!    component values, see [`check_point`]), widened only by the
//!    replication CI half-width, and
//! 2. **within a relative tolerance of the paper's closed-form
//!    estimates** (eq. 14 for the server part, eq. 23 for the
//!    database part). The tolerance is *mechanical*, not hand-tuned:
//!    per point it is the documented model bias (the gap between the
//!    closed form and the exact-in-model value) plus one declared
//!    simulation margin [`SIM_MARGIN`] plus the replication CI
//!    half-width relative to the estimate.
//!
//! A second suite validates the stochastic building blocks themselves:
//! Kolmogorov–Smirnov (and chi-square, for the discrete families)
//! tests of the Generalized-Pareto gap sampler, the geometric batch
//! sampler, the hyperexponential sampler and the Zipf alias table
//! against their closed-form CDFs/PMFs, plus a KS test of simulated
//! per-key server latency against the GI^X/M/1 completion law
//! `1 − e^{−decay·t}` built on the δ fixed point.
//!
//! Everything is deterministic: fixed seeds, replications that are
//! bit-identical regardless of thread count, and a hand-rolled JSON
//! report ([`Report::to_json`]) with a fixed key order so two runs
//! produce byte-identical `results/conformance.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use memlat_cluster::{
    run_replications, CacheBackedConfig, CacheRouting, ClusterSim, MissMode, Retention, SimConfig,
    SimError,
};
use memlat_dist::{Continuous, Discrete};
use memlat_model::asymptotics::{che_miss_ratio, lru_miss_ratio_asymptotic};
use memlat_model::{cliff, ModelError, ModelParams, ServerLatencyModel};
use memlat_numerics::special::harmonic;
use memlat_stats::gof::{chi_square, ks_one_sample};
use memlat_stats::ConfidenceInterval;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Significance level for every goodness-of-fit test in the harness.
pub const ALPHA: f64 = 0.01;

/// Declared relative margin allowed between the simulator and the
/// *exact-in-model* value of each latency component, before the
/// mechanical CI widening.
///
/// This is the only declared constant in the tolerance policy; the
/// rest of each point's tolerance is derived from the model itself
/// (closed form vs. exact bias) and from the replication CI. It
/// covers what the exact component values do not: within-request
/// dependence of keys that share a queue (the iid max-of-exponentials
/// value is only an approximation of the simulated fork-join max) and
/// finite-run transients.
pub const SIM_MARGIN: f64 = 0.12;

/// Knobs for one conformance run.
///
/// `quick` trades statistical power for wall-clock time; the CI smoke
/// job and `cargo test` use it, the nightly/full run does not.
#[derive(Debug, Clone)]
pub struct Profile {
    /// True for the fast profile (shorter runs, fewer replications).
    pub quick: bool,
    /// Independent replications per grid point (`df = replications − 1`
    /// for the Student-t interval).
    pub replications: usize,
    /// Base simulated seconds per replication; grid points near the
    /// cliff scale this up (slow mixing needs longer runs).
    pub duration: f64,
    /// Simulated warm-up seconds discarded before recording.
    pub warmup: f64,
    /// Assembled `N`-key requests per replication.
    pub requests: usize,
    /// Sample count per sampler goodness-of-fit test.
    pub sampler_n: usize,
    /// Keep every `thin`-th per-key latency record in the queue-law KS
    /// test (consecutive keys share queue state and are correlated;
    /// the KS null assumes independence).
    pub thin: usize,
}

impl Profile {
    /// Fast profile: used by `cargo test` and the CI smoke job.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            quick: true,
            replications: 3,
            duration: 0.3,
            warmup: 0.1,
            requests: 3_000,
            sampler_n: 4_000,
            thin: 101,
        }
    }

    /// Full profile: the statistically strong run.
    #[must_use]
    pub fn full() -> Self {
        Self {
            quick: false,
            replications: 8,
            duration: 1.5,
            warmup: 0.25,
            requests: 20_000,
            sampler_n: 20_000,
            thin: 163,
        }
    }

    /// Picks [`Profile::quick`] when `MEMLAT_QUICK` is set (the same
    /// knob the experiment binaries honour), else [`Profile::full`].
    #[must_use]
    pub fn from_env() -> Self {
        if memlat_experiments::quick_mode() {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// One operating point of the conformance grid.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Stable identifier (sorted into the report as-is).
    pub id: String,
    /// Model parameters for this point.
    pub params: ModelParams,
    /// Simulated seconds per replication (cliff points run longer).
    pub duration: f64,
    /// Base seed; replications derive their streams from it.
    pub seed: u64,
}

/// The validated grid: the Table 3 point, the Fig. 7 fan-out axis
/// (`N ∈ {50, 300}` around the default 150), and a utilization ramp
/// at `{0.60, 0.80, 1.00, 1.15, 1.25} × ρ_S(ξ)` spanning both sides
/// of the Table 4 cliff (capped at `ρ = 0.96` so every point stays
/// stable).
///
/// # Errors
///
/// Propagates parameter-validation or cliff-solver errors (none occur
/// for the paper's constants).
pub fn grid(profile: &Profile) -> Result<Vec<GridPoint>, ModelError> {
    let base = ModelParams::builder().build()?;
    let mut raw = vec![
        ("table3".to_string(), base.clone()),
        ("fanout_n050".to_string(), base.with_keys_per_request(50)),
        ("fanout_n300".to_string(), base.with_keys_per_request(300)),
    ];
    let rho_star = cliff::cliff_utilization(0.15, 0.1)?;
    for frac in [0.60, 0.80, 1.00, 1.15, 1.25] {
        let rho = (frac * rho_star).min(0.96);
        let params = ModelParams::builder()
            .key_rate_per_server(rho * base.service_rate())
            .build()?;
        raw.push((
            format!("cliff_x{:03}", (frac * 100.0).round() as u32),
            params,
        ));
    }

    let base_rho = base.peak_utilization()?;
    let mut points = Vec::with_capacity(raw.len());
    for (idx, (id, params)) in raw.into_iter().enumerate() {
        let rho = params.peak_utilization()?;
        // Mixing time grows like 1/(1−ρ): keep the effective sample
        // count per replication roughly constant across the ramp.
        let scale = ((1.0 - base_rho) / (1.0 - rho)).clamp(1.0, 4.0);
        points.push(GridPoint {
            id,
            params,
            duration: profile.duration * scale,
            seed: 0xC0F0_0000 ^ ((idx as u64 + 1) * 0x9E37_79B9),
        });
    }
    Ok(points)
}

/// Outcome of one component (`ts`, `td` or `total`) at one grid point.
#[derive(Debug, Clone)]
pub struct ComponentCheck {
    /// `"ts"`, `"td"` or `"total"`.
    pub component: &'static str,
    /// Replication-mean of the simulated value (seconds).
    pub sim_mean: f64,
    /// Lower endpoint of the 95% Student-t replication CI.
    pub ci_lower: f64,
    /// Upper endpoint of the 95% Student-t replication CI.
    pub ci_upper: f64,
    /// Lower edge of the Theorem-1 band (seconds).
    pub bound_lower: f64,
    /// Upper edge of the Theorem-1 band (seconds).
    pub bound_upper: f64,
    /// The paper's closed-form estimate (eq. 14 / eq. 23 / their sum).
    pub estimate: f64,
    /// `|sim_mean − estimate| / estimate`.
    pub rel_err: f64,
    /// Effective relative tolerance: model bias + [`SIM_MARGIN`] +
    /// CI half-width relative to the estimate.
    pub rel_tol: f64,
    /// Whether the simulated mean lies in the band (± CI half-width).
    pub in_bounds: bool,
    /// Whether `rel_err ≤ rel_tol`.
    pub within_tol: bool,
}

impl ComponentCheck {
    /// True when both the band check and the tolerance check hold.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.in_bounds && self.within_tol
    }
}

/// Conformance result of one grid point.
#[derive(Debug, Clone)]
pub struct PointReport {
    /// Grid-point identifier.
    pub id: String,
    /// Request fan-out `N`.
    pub n: u64,
    /// Utilization of the heaviest server (model).
    pub utilization: f64,
    /// δ fixed point of the heaviest server's GI^X/M/1 queue.
    pub delta: f64,
    /// Replications run.
    pub replications: usize,
    /// Per-component checks (`ts`, `td`, `total`).
    pub checks: Vec<ComponentCheck>,
}

impl PointReport {
    /// True when every component check passes.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.checks.iter().all(ComponentCheck::pass)
    }
}

fn component_check(
    component: &'static str,
    ci: &ConfidenceInterval,
    bound_lower: f64,
    bound_upper: f64,
    estimate: f64,
    bias_tol: f64,
) -> ComponentCheck {
    let slack = ci.half_width();
    let rel_err = (ci.mean - estimate).abs() / estimate;
    let rel_tol = bias_tol + SIM_MARGIN + slack / estimate;
    ComponentCheck {
        component,
        sim_mean: ci.mean,
        ci_lower: ci.lower,
        ci_upper: ci.upper,
        bound_lower,
        bound_upper,
        estimate,
        rel_err,
        rel_tol,
        in_bounds: ci.mean >= bound_lower - slack && ci.mean <= bound_upper + slack,
        within_tol: rel_err <= rel_tol,
    }
}

/// Simulates one grid point with [`run_replications`] and checks every
/// latency component against the model.
///
/// The Theorem-1 band is sharpened with the exact-in-model component
/// values: the closed forms of eqs. 12/14 carry documented biases
/// (eq. 12's quantile approximation undershoots the exact iid
/// max-of-exponentials `H_N/decay`; eq. 23 undershoots the exact
/// binomial-mixture database mean), and an honest band must contain
/// the *model's* exact values, not just the approximations the paper
/// prints. Concretely:
///
/// * `ts ∈ [min(eq12_lo, eq14_lo), max(eq12_hi, eq14_hi, H_N/decay)]`
/// * `td ∈ [min(eq23, exact), max(eq23, exact)]`
/// * `total ∈ [Theorem-1 lower, T_N + ts_hi + td_hi]`
///
/// each widened by the replication CI half-width.
///
/// # Errors
///
/// Propagates model evaluation and simulation errors.
pub fn check_point(point: &GridPoint, profile: &Profile) -> Result<PointReport, SimError> {
    let params = &point.params;
    let n = params.keys_per_request();
    let est = params.estimate().map_err(SimError::Model)?;
    let model = ServerLatencyModel::new(params).map_err(SimError::Model)?;
    let queue = model.heaviest_queue();
    let decay = queue.decay_rate();

    // Exact-in-model anchors for the band and the mechanical bias terms.
    let ts_exact = harmonic(n) / decay;
    let ts_lo = est.server.lower.min(est.server_closed_form.lower);
    let ts_hi = est
        .server
        .upper
        .max(est.server_closed_form.upper)
        .max(ts_exact);
    let td_lo = est.database.min(est.database_exact);
    let td_hi = est.database.max(est.database_exact);
    let total_lo = est.total.lower;
    let total_hi = est.network + ts_hi + td_hi;

    // The paper's closed-form point estimates.
    let eq14 = est.server_closed_form.upper;
    let eq23 = est.database;
    let total_est = est.network + eq14 + eq23;

    // Documented model bias of each closed form against the exact
    // value — the non-declared part of the tolerance.
    let ts_bias = (ts_exact / eq14 - 1.0).abs();
    let td_bias = (est.database_exact / eq23 - 1.0).abs();
    let total_bias = ((est.network + ts_exact + est.database_exact) / total_est - 1.0).abs();

    let cfg = SimConfig::new(params.clone())
        .duration(point.duration)
        .warmup(profile.warmup)
        .seed(point.seed);
    let stats = run_replications(&cfg, n, profile.replications, profile.requests)?;

    Ok(PointReport {
        id: point.id.clone(),
        n,
        utilization: queue.utilization(),
        delta: queue.delta(),
        replications: stats.replications,
        checks: vec![
            component_check("ts", &stats.ts, ts_lo, ts_hi, eq14, ts_bias),
            component_check("td", &stats.td, td_lo, td_hi, eq23, td_bias),
            component_check(
                "total",
                &stats.total,
                total_lo,
                total_hi,
                total_est,
                total_bias,
            ),
        ],
    })
}

/// Outcome of one sampler (or queue-law) goodness-of-fit test.
#[derive(Debug, Clone)]
pub struct SamplerCheck {
    /// Distribution family under test.
    pub family: &'static str,
    /// `"ks"` or `"chi_square"` (suffixed with the server index for
    /// the queue-law checks).
    pub test: String,
    /// Sample count.
    pub n: usize,
    /// Test statistic (KS `D` or the chi-square statistic).
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
    /// `p_value ≥` [`ALPHA`].
    pub pass: bool,
}

fn ks_check(family: &'static str, samples: &[f64], cdf: impl Fn(f64) -> f64) -> SamplerCheck {
    let t = ks_one_sample(samples, cdf);
    SamplerCheck {
        family,
        test: "ks".to_string(),
        n: samples.len(),
        statistic: t.statistic,
        p_value: t.p_value,
        pass: t.passes(ALPHA),
    }
}

/// One-sample KS for an integer-supported law: `D = sup_k |F_n(k) −
/// F(k)|`, which for two right-continuous step functions with jumps
/// only at integers is attained at an integer.
///
/// The continuous KS helper is invalid here — its left-limit term
/// `F(x) − (i−1)/n` treats an atom of mass `p` as a gap of height `p`
/// and reports `D ≈ p` even for a perfect sampler. The p-value still
/// uses the continuous Kolmogorov null, which is conservative for
/// discrete laws (it under-rejects); the paired chi-square test is the
/// sharp one.
fn discrete_ks(family: &'static str, values: &[u64], dist: &dyn Discrete) -> SamplerCheck {
    let n = values.len();
    let nf = n as f64;
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let max_k = *sorted.last().expect("at least one sample");
    // Beyond the largest observation F_n = 1 and |1 − F(k)| only
    // shrinks, so scanning 1..=max_k finds the supremum.
    let mut d: f64 = 0.0;
    let mut cum_pmf = 0.0;
    let mut idx = 0usize;
    for k in 1..=max_k {
        cum_pmf += dist.pmf(k);
        while idx < n && sorted[idx] <= k {
            idx += 1;
        }
        let ecdf = idx as f64 / nf;
        d = d.max((ecdf - cum_pmf).abs());
    }
    let lambda = (nf.sqrt() + 0.12 + 0.11 / nf.sqrt()) * d;
    let p_value = memlat_stats::gof::kolmogorov_survival(lambda);
    SamplerCheck {
        family,
        test: "ks".to_string(),
        n,
        statistic: d,
        p_value,
        pass: p_value >= ALPHA,
    }
}

fn chi_square_check(family: &'static str, observed: &[u64], expected: &[f64]) -> SamplerCheck {
    let n = observed.iter().sum::<u64>() as usize;
    let t = chi_square(observed, expected, 0);
    SamplerCheck {
        family,
        test: "chi_square".to_string(),
        n,
        statistic: t.statistic,
        p_value: t.p_value,
        pass: t.passes(ALPHA),
    }
}

/// Validates every sampler family the simulator draws from against
/// its closed-form CDF/PMF: Generalized Pareto gaps (the Facebook
/// arrival law, eq. 24), hyperexponential service, geometric batch
/// sizes, and the Zipf alias table (KS on the discrete families is
/// conservative, so each also gets the sharp chi-square test).
#[must_use]
pub fn sampler_checks(profile: &Profile) -> Vec<SamplerCheck> {
    let n = profile.sampler_n;
    let mut out = Vec::new();

    // Generalized Pareto with the paper's burst degree ξ = 0.15 and
    // the gap-law scale for λ = 62.5 Kps: σ = (1 − ξ)/λ.
    let gp = memlat_dist::GeneralizedPareto::new(0.15, 0.85 / 62_500.0)
        .expect("paper constants are valid");
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    let mut samples: Vec<f64> = (0..n).map(|_| gp.sample_with(&mut rng)).collect();
    samples.sort_by(f64::total_cmp);
    out.push(ks_check("generalized_pareto", &samples, |t| gp.cdf(t)));

    // Hyperexponential with SCV 4 — the bursty service-law stand-in.
    let hyper = memlat_dist::Hyperexponential::with_mean_scv(12.5e-6, 4.0)
        .expect("mean/SCV preset is valid");
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    let mut samples: Vec<f64> = (0..n).map(|_| hyper.sample_with(&mut rng)).collect();
    samples.sort_by(f64::total_cmp);
    out.push(ks_check("hyperexponential", &samples, |t| hyper.cdf(t)));

    // Geometric batch sizes at the paper's q = 0.1.
    let geo = memlat_dist::GeometricBatch::new(0.1).expect("q = 0.1 is valid");
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    let draws: Vec<u64> = (0..n).map(|_| geo.sample_with(&mut rng)).collect();
    out.push(discrete_ks("geometric_batch", &draws, &geo));
    // Sharp discrete test: bins {1, 2, ≥3} keep every expected
    // count ≥ 5·n/4000.
    let mut observed = [0u64; 3];
    for &k in &draws {
        observed[(k.min(3) - 1) as usize] += 1;
    }
    let nf = n as f64;
    let expected = [nf * geo.pmf(1), nf * geo.pmf(2), nf * (1.0 - geo.cdf(2))];
    out.push(chi_square_check("geometric_batch", &observed, &expected));

    // Zipf alias table, on a key space small enough to force the
    // alias path, against the exact normalized PMF.
    let keys = 50_000;
    let skew = 0.99;
    let pop = memlat_workload::ZipfPopularity::new(keys, skew).expect("valid Zipf");
    assert!(
        pop.uses_alias_table(),
        "key space must exercise the alias path"
    );
    let zipf = memlat_dist::Zipf::new(keys, skew).expect("valid Zipf");
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    let ranks: Vec<u64> = (0..n).map(|_| pop.sample_key(&mut rng) + 1).collect();
    out.push(discrete_ks("zipf_alias", &ranks, &zipf));
    // Head ranks individually, tail pooled: expected counts stay ≫ 5.
    let head = 20u64;
    let mut observed = vec![0u64; head as usize + 1];
    for &r in &ranks {
        observed[(r.min(head + 1) - 1) as usize] += 1;
    }
    let mut expected: Vec<f64> = (1..=head).map(|k| nf * zipf.pmf(k)).collect();
    expected.push(nf * (1.0 - zipf.cdf(head)));
    out.push(chi_square_check("zipf_alias", &observed, &expected));

    out
}

/// KS-tests simulated per-key server latency against the GI^X/M/1
/// completion law `1 − e^{−decay·t}` (the per-key latency law
/// collapses onto the batch completion law for geometric batches —
/// the model-extension result validated in Fig. 4), one test per
/// server.
///
/// Per-key records are kept in arrival order, so consecutive samples
/// share queue state; the harness thins by `profile.thin` to restore
/// approximate independence before applying the KS null.
///
/// # Errors
///
/// Propagates model evaluation and simulation errors.
pub fn queue_law_checks(profile: &Profile) -> Result<Vec<SamplerCheck>, SimError> {
    let params = ModelParams::builder().build().map_err(SimError::Model)?;
    let model = ServerLatencyModel::new(&params).map_err(SimError::Model)?;
    let cfg = SimConfig::new(params.clone())
        .duration(profile.duration.max(0.5))
        .warmup(profile.warmup)
        .seed(0x51AE);
    let out = ClusterSim::run(&cfg)?;

    let mut checks = Vec::with_capacity(params.servers());
    for j in 0..params.servers() {
        let queue = model.queue(j).expect("server index in range");
        let mut samples: Vec<f64> = out
            .records(j)
            .s()
            .iter()
            .step_by(profile.thin)
            .map(|&x| f64::from(x))
            .collect();
        samples.sort_by(f64::total_cmp);
        let t = ks_one_sample(&samples, |x| queue.completion_time_cdf(x));
        checks.push(SamplerCheck {
            family: "gixm1_completion",
            test: format!("ks_s{j}"),
            n: samples.len(),
            statistic: t.statistic,
            p_value: t.p_value,
            pass: t.passes(ALPHA),
        });
    }
    Ok(checks)
}

/// One delayed-hit closed-form check: an observed quantity of the
/// coalescing database stage against its Jiang & Ma (arXiv 2505.15531)
/// prediction.
#[derive(Debug, Clone)]
pub struct DelayedHitCheck {
    /// Quantity under test (`"mean_latency"`, `"p99_latency"`,
    /// `"delayed_fraction"`, `"dispatch_rate"`).
    pub quantity: &'static str,
    /// Simulated value.
    pub observed: f64,
    /// Closed-form prediction.
    pub expected: f64,
    /// `|observed − expected| / expected`.
    pub rel_err: f64,
    /// Allowed relative tolerance.
    pub rel_tol: f64,
    /// `rel_err ≤ rel_tol`.
    pub pass: bool,
}

fn delayed_hit_check(
    quantity: &'static str,
    observed: f64,
    expected: f64,
    rel_tol: f64,
) -> DelayedHitCheck {
    let rel_err = (observed - expected).abs() / expected;
    DelayedHitCheck {
        quantity,
        observed,
        expected,
        rel_err,
        rel_tol,
        pass: rel_err <= rel_tol,
    }
}

/// Relative tolerance for the delayed-hit mean, delayed fraction, and
/// dispatch-rate gates (tens of thousands of arrivals per run put the
/// sampling error well under 1%; the rest is margin).
pub const DELAYED_HIT_TOL: f64 = 0.05;
/// Relative tolerance for the delayed-hit p99 gate (the tail estimator
/// is noisier than the mean).
pub const DELAYED_HIT_TAIL_TOL: f64 = 0.10;

/// Gates the simulator's per-key fetch coalescing against the Jiang &
/// Ma closed forms, in the regime where they are *exact*: per-key
/// Poisson miss arrivals and `Exp(ν)` fetch latency with no database
/// queueing (the shard pool is sized so round-robin spacing makes a
/// busy shard unreachable).
///
/// In that regime the memoryless property collapses the whole law: a
/// dispatched fetch takes `Exp(ν)`, and a delayed hit waits the
/// residual of an outstanding `Exp(ν)` fetch — also `Exp(ν)` — so
/// every database-path latency is `Exp(ν)` regardless of the arrival
/// rates ([`memlat_model::delayed_hit::exponential_mean_latency`]).
/// The delayed *fraction* and dispatch rate do depend on the per-key
/// rates, through the renewal-reward aggregates.
///
/// Returns the four numeric gates plus a KS check of the pooled
/// latencies against the `Exp(ν)` CDF (thinned: latencies within one
/// outstanding-fetch window share its completion time).
#[must_use]
pub fn delayed_hit_checks(profile: &Profile) -> (Vec<DelayedHitCheck>, SamplerCheck) {
    use memlat_cluster::database::{run_db_stage_coalesced_with, MissArrival};
    use memlat_model::delayed_hit;

    // Mean fetch 1 ms; per-key Poisson rates on a 1/k profile spanning
    // λ_k·E[Z] from ~24 down to ~1.5 — every key coalesces materially,
    // none completely.
    let nu = 1_000.0;
    let mean_z = 1.0 / nu;
    let rates: Vec<f64> = (1..=16u32).map(|k| 24_000.0 / f64::from(k)).collect();
    let horizon = if profile.quick { 0.5 } else { 1.5 };

    // Superpose the per-key Poisson streams, each from its own seeded
    // generator so the construction is deterministic.
    let mut arrivals: Vec<(f64, u64)> = Vec::new();
    for (k, &lambda) in rates.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xDE1A_0000 + k as u64);
        let mut t = 0.0;
        loop {
            let u: f64 = memlat_dist::open_unit(&mut rng);
            t -= u.ln() / lambda;
            if t >= horizon {
                break;
            }
            arrivals.push((t, k as u64));
        }
    }
    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let misses: Vec<MissArrival> = arrivals
        .iter()
        .enumerate()
        .map(|(i, &(t, key))| MissArrival {
            time: t,
            origin: (0, i as u32),
            key,
        })
        .collect();

    // Generous shards: round-robin spacing between two dispatches to
    // the same shard is thousands of mean fetches, so queueing never
    // happens and each sojourn is exactly its Exp(ν) service draw.
    let shards = 4_096;
    let mut rng = StdRng::seed_from_u64(0xDE1A_FE7C);
    let mut latencies: Vec<f64> = Vec::with_capacity(misses.len());
    let mut delayed = 0u64;
    run_db_stage_coalesced_with(&misses, shards, nu, &mut rng, |_, d, was_delayed| {
        latencies.push(d);
        if was_delayed {
            delayed += 1;
        }
    });
    let n = latencies.len() as f64;
    let mean = latencies.iter().sum::<f64>() / n;
    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let p99 = sorted[((0.99 * n) as usize).min(sorted.len() - 1)];
    let dispatched = latencies.len() as u64 - delayed;

    let checks = vec![
        delayed_hit_check(
            "mean_latency",
            mean,
            delayed_hit::exponential_mean_latency(nu).expect("ν > 0"),
            DELAYED_HIT_TOL,
        ),
        delayed_hit_check(
            "p99_latency",
            p99,
            delayed_hit::exponential_latency_quantile(nu, 0.99).expect("valid quantile"),
            DELAYED_HIT_TAIL_TOL,
        ),
        delayed_hit_check(
            "delayed_fraction",
            delayed as f64 / n,
            delayed_hit::aggregate_delayed_fraction(&rates, mean_z).expect("valid rates"),
            DELAYED_HIT_TOL,
        ),
        delayed_hit_check(
            "dispatch_rate",
            dispatched as f64 / horizon,
            delayed_hit::aggregate_dispatch_rate(&rates, mean_z).expect("valid rates"),
            DELAYED_HIT_TOL,
        ),
    ];

    // KS against Exp(ν): thin to break the within-window dependence
    // (all delayed hits of one fetch share its completion time).
    let mut thinned: Vec<f64> = latencies.iter().step_by(profile.thin).copied().collect();
    thinned.sort_by(f64::total_cmp);
    let t = ks_one_sample(&thinned, |x| 1.0 - (-nu * x).exp());
    let ks = SamplerCheck {
        family: "delayed_hit_exponential",
        test: "ks".to_string(),
        n: thinned.len(),
        statistic: t.statistic,
        p_value: t.p_value,
        pass: t.passes(ALPHA),
    };
    (checks, ks)
}

/// Declared relative margin between the simulated emergent miss ratio
/// and the *finite-size* Che reference solution.
///
/// The emergent-r tolerance policy mirrors the latency one: this is the
/// only declared constant, and the gate against the Ji/Quan/Tan
/// asymptotic adds the *model's own* finite-size bias (the gap between
/// the asymptotic power law and the Che solution at the measured
/// occupancy) on top — mechanical, not hand-tuned. The margin covers
/// what the Che approximation does not: slab quantization (per-class
/// LRU over size-classed pages rather than one global LRU), fills
/// dropped by slab calcification, residual warm-up transients, and
/// the ring's per-server occupancy imbalance.
pub const EMERGENT_R_MARGIN: f64 = 0.15;

/// Virtual nodes per server on the emergent-r conformance ring.
pub const EMERGENT_R_VNODES: usize = 128;

/// One emergent-miss-ratio gate: a routed, LRU-backed cluster's
/// observed miss ratio against the Ji/Quan/Tan asymptotic (arXiv
/// 1801.02436) and the finite-size Che solution, both evaluated at the
/// *measured* fleet occupancy.
#[derive(Debug, Clone)]
pub struct EmergentRCheck {
    /// Grid-point identifier.
    pub id: String,
    /// Zipf key-space size.
    pub keyspace: u64,
    /// Zipf skew `α` (the theorem needs `α > 1`).
    pub skew: f64,
    /// Servers on the consistent-hash ring.
    pub servers: usize,
    /// Virtual nodes per server.
    pub vnodes: usize,
    /// Per-server slab memory budget (bytes).
    pub memory_bytes: usize,
    /// Items resident across the fleet at the horizon — the `x` both
    /// predictions are evaluated at.
    pub cached_items: u64,
    /// Simulated emergent miss ratio (measured window).
    pub observed: f64,
    /// Ji/Quan/Tan cluster asymptotic at the measured occupancy.
    pub asymptotic: f64,
    /// Finite-size Che reference at the measured occupancy.
    pub che: f64,
    /// The asymptotic's own finite-size bias `|asymptotic − che| /
    /// asymptotic` — the derived part of the tolerance.
    pub finite_size_bias: f64,
    /// `|observed − asymptotic| / asymptotic`.
    pub rel_err: f64,
    /// `|observed − che| / che`.
    pub rel_err_che: f64,
    /// Tolerance on `rel_err`: `finite_size_bias` +
    /// [`EMERGENT_R_MARGIN`].
    pub rel_tol: f64,
    /// Both gates hold: `rel_err ≤ rel_tol` and `rel_err_che ≤`
    /// [`EMERGENT_R_MARGIN`].
    pub pass: bool,
}

/// The emergent-r grid: key space × skew × per-server memory, chosen so
/// the asymptotic's validity region is swept from both sides. Key spaces
/// stay ≥ 500 k (the power law needs `keyspace ≫ cache`), skews span
/// 1.3–1.5, and two memory budgets at (1 M, 1.4) pin the `x^{−(α−1)}`
/// capacity scaling. The 1.3 point sits at the documented edge of the
/// asymptotic regime — its derived bias term is large (~0.3) and the
/// check keeps it honest by gating the Che side tightly.
const EMERGENT_R_GRID: [(&str, u64, f64, usize); 6] = [
    ("emergent_1m_s14_m4", 1_000_000, 1.4, 4),
    ("emergent_1m_s14_m8", 1_000_000, 1.4, 8),
    ("emergent_1m_s15_m4", 1_000_000, 1.5, 4),
    ("emergent_4m_s14_m4", 4_000_000, 1.4, 4),
    ("emergent_4m_s15_m8", 4_000_000, 1.5, 8),
    ("emergent_500k_s13_m4", 500_000, 1.3, 4),
];

/// Gates the emergent miss ratio of consistent-hash-routed, LRU-backed
/// clusters against the Ji/Quan/Tan asymptotic across the
/// keyspace × skew × memory grid.
///
/// Each point runs the full machinery end to end: the global Zipf
/// stream is split by a 128-vnode ring, every server demand-fills a
/// real slab/LRU store from its conditional key law, and the fleet's
/// miss ratio *emerges*. It is then compared — at the measured
/// occupancy `x`, so no items-per-byte model is assumed — against
/// `m(x) ≈ (c/α)·Γ(1−1/α)^α·x^{−(α−1)}` and the finite-size Che
/// solution.
///
/// The simulation clock is rate-compressed: key and service rates are
/// scaled together (×`200 k`/server against 4× service headroom for
/// the ring's hottest server — at `α ≥ 1.4` the top key alone carries
/// ~30% of all traffic), which leaves the miss ratio untouched while
/// letting the LRU warm through its `≈ x^α`-draw fill phase in a short
/// simulated horizon.
///
/// # Errors
///
/// Propagates parameter, model, and simulation errors.
pub fn emergent_r_checks(profile: &Profile) -> Result<Vec<EmergentRCheck>, SimError> {
    let (warmup, duration) = if profile.quick {
        (0.6, 0.3)
    } else {
        (1.5, 0.75)
    };
    let mut checks = Vec::with_capacity(EMERGENT_R_GRID.len());
    for (idx, &(id, keyspace, skew, mem_mib)) in EMERGENT_R_GRID.iter().enumerate() {
        let params = ModelParams::builder()
            .key_rate_per_server(200_000.0)
            .service_rate(800_000.0)
            .db_service_rate(50_000.0)
            .build()
            .map_err(SimError::Model)?;
        let servers = params.servers();
        let memory_bytes = mem_mib << 20;
        let cfg = SimConfig::new(params)
            .duration(duration)
            .warmup(warmup)
            .seed(0xE3E0_0000 ^ ((idx as u64 + 1) * 0x9E37_79B9))
            .db_shards(64)
            .retention(Retention::Summary)
            .miss_mode(MissMode::CacheBacked(CacheBackedConfig {
                memory_bytes,
                keyspace,
                skew,
                mean_value_bytes: 1_000.0,
                routing: CacheRouting::ConsistentHash {
                    vnodes: EMERGENT_R_VNODES,
                },
            }));
        let out = ClusterSim::run(&cfg)?;
        let cached_items = out.cached_items();
        let observed = out.miss_ratio();
        let x = cached_items as f64;
        let asymptotic = lru_miss_ratio_asymptotic(keyspace, skew, x).map_err(SimError::Model)?;
        let che = che_miss_ratio(keyspace, skew, x).map_err(SimError::Model)?;
        let finite_size_bias = (asymptotic - che).abs() / asymptotic;
        let rel_err = (observed - asymptotic).abs() / asymptotic;
        let rel_err_che = (observed - che).abs() / che;
        let rel_tol = finite_size_bias + EMERGENT_R_MARGIN;
        checks.push(EmergentRCheck {
            id: id.to_string(),
            keyspace,
            skew,
            servers,
            vnodes: EMERGENT_R_VNODES,
            memory_bytes,
            cached_items,
            observed,
            asymptotic,
            che,
            finite_size_bias,
            rel_err,
            rel_err_che,
            rel_tol,
            pass: cached_items > 0
                && observed > 0.0
                && rel_err <= rel_tol
                && rel_err_che <= EMERGENT_R_MARGIN,
        });
    }
    Ok(checks)
}

/// Full conformance report: grid points plus sampler and queue-law
/// goodness-of-fit checks.
#[derive(Debug, Clone)]
pub struct Report {
    /// Whether the quick profile produced this report.
    pub quick: bool,
    /// Replications per grid point.
    pub replications: usize,
    /// Significance level used by every GOF check.
    pub alpha: f64,
    /// Per-grid-point model-vs-simulation checks.
    pub points: Vec<PointReport>,
    /// Delayed-hit closed-form gates (Jiang & Ma exact regime).
    pub delayed_hits: Vec<DelayedHitCheck>,
    /// Emergent-miss-ratio gates (Ji/Quan/Tan asymptotic).
    pub emergent_r: Vec<EmergentRCheck>,
    /// Sampler and queue-law goodness-of-fit checks.
    pub samplers: Vec<SamplerCheck>,
}

impl Report {
    /// True when every point and every GOF check passes.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.points.iter().all(PointReport::pass)
            && self.delayed_hits.iter().all(|c| c.pass)
            && self.emergent_r.iter().all(|c| c.pass)
            && self.samplers.iter().all(|s| s.pass)
    }

    /// Human-readable list of every failed check (empty on pass).
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for p in &self.points {
            for c in &p.checks {
                if !c.in_bounds {
                    v.push(format!(
                        "{}/{}: mean {:.3} µs outside band [{:.3}, {:.3}] µs",
                        p.id,
                        c.component,
                        c.sim_mean * 1e6,
                        c.bound_lower * 1e6,
                        c.bound_upper * 1e6,
                    ));
                }
                if !c.within_tol {
                    v.push(format!(
                        "{}/{}: rel err {:.4} exceeds tolerance {:.4} (estimate {:.3} µs)",
                        p.id,
                        c.component,
                        c.rel_err,
                        c.rel_tol,
                        c.estimate * 1e6,
                    ));
                }
            }
        }
        for c in &self.delayed_hits {
            if !c.pass {
                v.push(format!(
                    "delayed_hit/{}: observed {:.6} vs closed form {:.6} (rel err {:.4} > {:.4})",
                    c.quantity, c.observed, c.expected, c.rel_err, c.rel_tol
                ));
            }
        }
        for c in &self.emergent_r {
            if !c.pass {
                v.push(format!(
                    "emergent_r/{}: observed {:.5} vs asymptotic {:.5} (rel err {:.4} > {:.4}) \
                     / che {:.5} (rel err {:.4} > {:.4}) at x = {}",
                    c.id,
                    c.observed,
                    c.asymptotic,
                    c.rel_err,
                    c.rel_tol,
                    c.che,
                    c.rel_err_che,
                    EMERGENT_R_MARGIN,
                    c.cached_items,
                ));
            }
        }
        for s in &self.samplers {
            if !s.pass {
                v.push(format!(
                    "{}/{}: p = {:.5} < α = {}",
                    s.family, s.test, s.p_value, self.alpha
                ));
            }
        }
        v
    }

    /// Serializes the report as deterministic JSON: fixed key order,
    /// shortest-roundtrip float formatting, no timestamps — two runs
    /// with the same profile produce byte-identical output.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"memlat-conformance-v2\",\n");
        let _ = writeln!(s, "  \"quick\": {},", self.quick);
        let _ = writeln!(s, "  \"replications\": {},", self.replications);
        let _ = writeln!(s, "  \"alpha\": {},", json_f64(self.alpha));
        let _ = writeln!(s, "  \"pass\": {},", self.pass());
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"id\": \"{}\",", p.id);
            let _ = writeln!(s, "      \"n\": {},", p.n);
            let _ = writeln!(s, "      \"utilization\": {},", json_f64(p.utilization));
            let _ = writeln!(s, "      \"delta\": {},", json_f64(p.delta));
            let _ = writeln!(s, "      \"pass\": {},", p.pass());
            s.push_str("      \"checks\": [\n");
            for (j, c) in p.checks.iter().enumerate() {
                let _ = write!(
                    s,
                    "        {{\"component\": \"{}\", \"sim_mean\": {}, \"ci_lower\": {}, \
                     \"ci_upper\": {}, \"bound_lower\": {}, \"bound_upper\": {}, \
                     \"estimate\": {}, \"rel_err\": {}, \"rel_tol\": {}, \
                     \"in_bounds\": {}, \"within_tol\": {}}}",
                    c.component,
                    json_f64(c.sim_mean),
                    json_f64(c.ci_lower),
                    json_f64(c.ci_upper),
                    json_f64(c.bound_lower),
                    json_f64(c.bound_upper),
                    json_f64(c.estimate),
                    json_f64(c.rel_err),
                    json_f64(c.rel_tol),
                    c.in_bounds,
                    c.within_tol,
                );
                s.push_str(if j + 1 < p.checks.len() { ",\n" } else { "\n" });
            }
            s.push_str("      ]\n");
            s.push_str(if i + 1 < self.points.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ],\n  \"delayed_hits\": [\n");
        for (i, c) in self.delayed_hits.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"quantity\": \"{}\", \"observed\": {}, \"expected\": {}, \
                 \"rel_err\": {}, \"rel_tol\": {}, \"pass\": {}}}",
                c.quantity,
                json_f64(c.observed),
                json_f64(c.expected),
                json_f64(c.rel_err),
                json_f64(c.rel_tol),
                c.pass,
            );
            s.push_str(if i + 1 < self.delayed_hits.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"emergent_r\": [\n");
        for (i, c) in self.emergent_r.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"id\": \"{}\", \"keyspace\": {}, \"skew\": {}, \"servers\": {}, \
                 \"vnodes\": {}, \"memory_bytes\": {}, \"cached_items\": {}, \
                 \"observed\": {}, \"asymptotic\": {}, \"che\": {}, \
                 \"finite_size_bias\": {}, \"rel_err\": {}, \"rel_err_che\": {}, \
                 \"rel_tol\": {}, \"pass\": {}}}",
                c.id,
                c.keyspace,
                json_f64(c.skew),
                c.servers,
                c.vnodes,
                c.memory_bytes,
                c.cached_items,
                json_f64(c.observed),
                json_f64(c.asymptotic),
                json_f64(c.che),
                json_f64(c.finite_size_bias),
                json_f64(c.rel_err),
                json_f64(c.rel_err_che),
                json_f64(c.rel_tol),
                c.pass,
            );
            s.push_str(if i + 1 < self.emergent_r.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"samplers\": [\n");
        for (i, c) in self.samplers.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"family\": \"{}\", \"test\": \"{}\", \"n\": {}, \
                 \"statistic\": {}, \"p_value\": {}, \"pass\": {}}}",
                c.family,
                c.test,
                c.n,
                json_f64(c.statistic),
                json_f64(c.p_value),
                c.pass,
            );
            s.push_str(if i + 1 < self.samplers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON-safe float formatting: Rust's shortest-roundtrip `Display`,
/// with non-finite values (invalid JSON) mapped to `null`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Runs the whole harness: every grid point, every sampler family,
/// and the queue-law checks.
///
/// # Errors
///
/// Propagates model evaluation and simulation errors.
pub fn run(profile: &Profile) -> Result<Report, SimError> {
    let mut points = Vec::new();
    for point in grid(profile).map_err(SimError::Model)? {
        points.push(check_point(&point, profile)?);
    }
    let (delayed_hits, delayed_ks) = delayed_hit_checks(profile);
    let emergent_r = emergent_r_checks(profile)?;
    let mut samplers = sampler_checks(profile);
    samplers.extend(queue_law_checks(profile)?);
    samplers.push(delayed_ks);
    Ok(Report {
        quick: profile.quick,
        replications: profile.replications,
        alpha: ALPHA,
        points,
        delayed_hits,
        emergent_r,
        samplers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> Profile {
        Profile {
            quick: true,
            replications: 2,
            duration: 0.12,
            warmup: 0.05,
            requests: 800,
            sampler_n: 1_500,
            thin: 101,
        }
    }

    #[test]
    fn grid_covers_table3_fanout_and_cliff() {
        let profile = Profile::quick();
        let g = grid(&profile).unwrap();
        assert_eq!(g.len(), 8);
        assert!(g.iter().any(|p| p.id == "table3"));
        assert!(g.iter().any(|p| p.id == "fanout_n050"));
        assert!(g.iter().any(|p| p.id == "cliff_x125"));
        // The ramp crosses the cliff: at least one point below the
        // Table 4 value and one above.
        let rho_star = cliff::cliff_utilization(0.15, 0.1).unwrap();
        let rhos: Vec<f64> = g
            .iter()
            .map(|p| p.params.peak_utilization().unwrap())
            .collect();
        assert!(rhos.iter().any(|&r| r < rho_star));
        assert!(rhos.iter().any(|&r| r > rho_star));
        // Every point is stable and the cliff points run longer.
        assert!(rhos.iter().all(|&r| r < 1.0));
        let hot = g.iter().find(|p| p.id == "cliff_x125").unwrap();
        assert!(hot.duration > profile.duration);
    }

    #[test]
    fn sampler_families_conform() {
        let checks = sampler_checks(&Profile::quick());
        assert_eq!(checks.len(), 6);
        for c in &checks {
            assert!(
                c.pass,
                "{}/{}: D/χ² = {:.5}, p = {:.5}",
                c.family, c.test, c.statistic, c.p_value
            );
        }
    }

    #[test]
    fn queue_law_conforms_per_server() {
        let checks = queue_law_checks(&tiny_profile()).unwrap();
        assert_eq!(checks.len(), 4);
        for c in &checks {
            assert!(c.n > 100, "too few thinned samples: {}", c.n);
            assert!(
                c.pass,
                "server law {}: D = {:.5}, p = {:.5} over {} samples",
                c.test, c.statistic, c.p_value, c.n
            );
        }
    }

    #[test]
    fn delayed_hit_closed_forms_conform() {
        let (checks, ks) = delayed_hit_checks(&Profile::quick());
        assert_eq!(checks.len(), 4);
        for c in &checks {
            assert!(
                c.pass,
                "{}: observed {:.6} vs expected {:.6} (rel err {:.4} > {:.4})",
                c.quantity, c.observed, c.expected, c.rel_err, c.rel_tol
            );
        }
        // The regime must be a real coalescing regime, not a vacuous one.
        let frac = checks
            .iter()
            .find(|c| c.quantity == "delayed_fraction")
            .unwrap();
        assert!(
            frac.observed > 0.5,
            "delayed fraction too small to exercise the machinery: {}",
            frac.observed
        );
        assert!(ks.n > 100, "too few thinned samples: {}", ks.n);
        assert!(
            ks.pass,
            "latency law is not Exp(ν): D = {:.5}, p = {:.5}",
            ks.statistic, ks.p_value
        );
    }

    #[test]
    fn emergent_r_conforms_on_every_grid_point() {
        let checks = emergent_r_checks(&Profile::quick()).unwrap();
        assert_eq!(checks.len(), 6, "the acceptance grid is six points");
        for c in &checks {
            // The regime is real: a warmed cache and a measurable miss
            // stream.
            assert!(
                c.cached_items > 1_000,
                "{}: cold cache {}",
                c.id,
                c.cached_items
            );
            assert!(
                c.observed > 0.0 && c.observed < 0.5,
                "{}: {}",
                c.id,
                c.observed
            );
            assert!(
                c.pass,
                "{}: observed {:.5} vs asymptotic {:.5} (rel {:.4} / tol {:.4}), \
                 che {:.5} (rel {:.4}) at x = {}",
                c.id,
                c.observed,
                c.asymptotic,
                c.rel_err,
                c.rel_tol,
                c.che,
                c.rel_err_che,
                c.cached_items,
            );
        }
        // The x^{−(α−1)} capacity law shows up between the two memory
        // budgets at (1M, 1.4): more memory, fewer misses.
        let m4 = checks
            .iter()
            .find(|c| c.id == "emergent_1m_s14_m4")
            .unwrap();
        let m8 = checks
            .iter()
            .find(|c| c.id == "emergent_1m_s14_m8")
            .unwrap();
        assert!(m8.cached_items > m4.cached_items);
        assert!(
            m8.observed < m4.observed,
            "{} !< {}",
            m8.observed,
            m4.observed
        );
        // The 1.3 point is the documented asymptotic edge: its derived
        // finite-size bias dominates its tolerance.
        let edge = checks.iter().find(|c| c.skew == 1.3).unwrap();
        assert!(
            edge.finite_size_bias > EMERGENT_R_MARGIN,
            "{}",
            edge.finite_size_bias
        );
    }

    #[test]
    fn quick_grid_conforms() {
        let profile = Profile::quick();
        for point in grid(&profile).unwrap() {
            let report = check_point(&point, &profile).unwrap();
            assert!(report.pass(), "{} failed: {:#?}", report.id, report.checks);
        }
    }

    #[test]
    fn report_json_is_deterministic_and_valid() {
        let profile = tiny_profile();
        let a = run(&profile).unwrap();
        let b = run(&profile).unwrap();
        let ja = a.to_json();
        let jb = b.to_json();
        assert_eq!(ja, jb, "two identical runs must serialize identically");
        assert!(ja.starts_with("{\n  \"schema\": \"memlat-conformance-v2\""));
        assert!(ja.contains("\"points\": ["));
        assert!(ja.contains("\"delayed_hits\": ["));
        assert!(ja.contains("\"delayed_fraction\""));
        assert!(ja.contains("\"emergent_r\": ["));
        assert!(ja.contains("\"finite_size_bias\""));
        assert!(ja.contains("\"samplers\": ["));
        assert!(!ja.contains("NaN") && !ja.contains("inf"));
        // Braces/brackets balance — cheap structural sanity without a
        // JSON parser in the workspace.
        assert_eq!(
            ja.matches('{').count(),
            ja.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(ja.matches('[').count(), ja.matches(']').count());
        if a.pass() {
            assert!(a.violations().is_empty());
        } else {
            assert!(!a.violations().is_empty());
        }
    }
}
