//! Conformance harness driver: runs the full grid plus the sampler
//! goodness-of-fit suite and writes a deterministic
//! `results/conformance.json`.
//!
//! Honours `MEMLAT_QUICK` (fast profile) and `MEMLAT_RESULTS_DIR`
//! like the experiment binaries. Exits with status 2 when any bound
//! or tolerance is violated, so CI fails loudly.

use memlat_conformance::{run, Profile};

fn main() {
    let profile = Profile::from_env();
    eprintln!(
        "conformance: {} profile, {} replications per point",
        if profile.quick { "quick" } else { "full" },
        profile.replications
    );

    let report = match run(&profile) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conformance: simulation failed: {e}");
            std::process::exit(1);
        }
    };

    let dir = memlat_experiments::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("conformance: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("conformance.json");
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("conformance: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }

    for p in &report.points {
        let verdict = if p.pass() { "ok" } else { "FAIL" };
        eprintln!(
            "  point {:<12} n={:<4} rho={:.4} delta={:.4}  {}",
            p.id, p.n, p.utilization, p.delta, verdict
        );
    }
    for c in &report.delayed_hits {
        let verdict = if c.pass { "ok" } else { "FAIL" };
        eprintln!(
            "  delayed-hit {:<18} obs={:.6} exp={:.6} rel_err={:.4}  {}",
            c.quantity, c.observed, c.expected, c.rel_err, verdict
        );
    }
    for c in &report.emergent_r {
        let verdict = if c.pass { "ok" } else { "FAIL" };
        eprintln!(
            "  emergent-r {:<22} x={:<6} obs={:.5} jqt={:.5} che={:.5} rel_err={:.4}  {}",
            c.id, c.cached_items, c.observed, c.asymptotic, c.che, c.rel_err, verdict
        );
    }
    for s in &report.samplers {
        let verdict = if s.pass { "ok" } else { "FAIL" };
        eprintln!(
            "  gof {:<20} {:<12} p={:.5}  {}",
            s.family, s.test, s.p_value, verdict
        );
    }
    eprintln!("conformance: wrote {}", path.display());

    if report.pass() {
        eprintln!("conformance: PASS");
    } else {
        eprintln!("conformance: FAIL");
        for v in report.violations() {
            eprintln!("  violation: {v}");
        }
        std::process::exit(2);
    }
}
