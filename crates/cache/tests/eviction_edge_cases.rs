//! Eviction edge cases for the slab/LRU store — the degenerate shapes
//! the emergent-miss-ratio experiments can push it into: items that
//! exactly fill a chunk, empty values, memory budgets too small to hold
//! anything, and LRU recency under repeated re-`set`s of a hot key.

use memlat_cache::{Lookup, SlabConfig, Store, StoreConfig, StoreError};

/// The default per-item metadata overhead (`StoreConfig::default`).
const OVERHEAD: usize = 80;

fn store_with(bytes: usize) -> Store {
    Store::new(StoreConfig::with_memory(bytes)).unwrap()
}

/// An item whose total size (value + overhead) lands exactly on a chunk
/// boundary must use that class, not spill into the next one — and one
/// more byte must bump it.
#[test]
fn exact_fit_uses_the_boundary_class() {
    let s = store_with(4 << 20);
    for class in 0..s.slabs().classes().len().min(8) {
        let chunk = s.slabs().classes()[class].chunk_size;
        let exact = s.slabs().class_for(chunk).unwrap();
        assert_eq!(
            s.slabs().classes()[exact].chunk_size,
            chunk,
            "item of exactly {chunk} bytes must land in the {chunk}-chunk class"
        );
        let bumped = s.slabs().class_for(chunk + 1).unwrap();
        assert!(
            s.slabs().classes()[bumped].chunk_size > chunk,
            "item of {chunk}+1 bytes must move to a larger class"
        );
    }

    // Through the store: a value sized to exactly fill the smallest
    // chunk stores, hits, and packs a full page with no slack.
    let mut s = store_with(4 << 20);
    let chunk = s.slabs().classes()[0].chunk_size;
    let value = chunk - OVERHEAD;
    let per_page = s.slabs().classes()[0].chunks_per_page;
    for k in 0..per_page as u64 {
        s.set(k, value, None, 0.0).unwrap();
    }
    assert_eq!(s.len(), per_page);
    assert_eq!(s.stats().evictions, 0, "exact fits must not over-allocate");
    // The page is genuinely full: one more exact-fit item in the same
    // class evicts rather than growing (memory budget: 4 pages, one per
    // touched class — give the whole budget to class 0 first).
    let pages = 4 << 20 >> 20;
    for p in 1..pages {
        for k in 0..per_page as u64 {
            s.set(p * 100_000 + k, value, None, 0.0).unwrap();
        }
    }
    s.set(999_999, value, None, 0.0).unwrap();
    assert_eq!(s.stats().evictions, 1);
}

/// Zero-byte values are legal memcached items: they consume a chunk
/// (metadata is not free), hit with `value_size == 0`, and evict like
/// anything else.
#[test]
fn zero_byte_values_are_real_items() {
    let mut s = store_with(1 << 20);
    s.set(1, 0, None, 0.0).unwrap();
    assert_eq!(s.len(), 1);
    match s.get(1, 0.0) {
        Lookup::Hit { value_size, .. } => assert_eq!(value_size, 0),
        Lookup::Miss => panic!("zero-byte item must hit"),
    }
    // A page of zero-byte items fills and evicts normally.
    let class = s.slabs().class_for(OVERHEAD).unwrap();
    let per_page = s.slabs().classes()[class].chunks_per_page;
    for k in 2..2 + per_page as u64 {
        s.set(k, 0, None, 0.0).unwrap();
    }
    assert_eq!(s.len(), per_page);
    assert_eq!(s.stats().evictions, 1, "key 1 should have been evicted");
    assert!(s.get(1, 0.0).is_miss());
}

/// Memory budgets below one item: a budget under a page is rejected at
/// construction; within a valid store, an item above the largest chunk
/// is refused as too large, and a single-chunk class under pressure
/// evicts its only resident rather than growing.
#[test]
fn budget_smaller_than_one_item() {
    // Below one page: the slab allocator cannot even hold one page.
    assert!(Store::new(StoreConfig::with_memory(1024)).is_err());
    let cfg = StoreConfig {
        slab: SlabConfig {
            memory_limit: 512,
            page_size: 1 << 20,
            ..SlabConfig::default()
        },
        ..StoreConfig::default()
    };
    assert!(Store::new(cfg).is_err());

    // One page exactly: an item bigger than the page-sized largest chunk
    // can never be stored.
    let mut s = store_with(1 << 20);
    assert!(matches!(
        s.set(1, 1 << 20, None, 0.0),
        Err(StoreError::ItemTooLarge { .. })
    ));
    assert_eq!(s.len(), 0);

    // A page-filling item leaves room for exactly one resident: the
    // next set in that class evicts the only item instead of failing.
    let big = (1 << 20) - OVERHEAD;
    let class = s.slabs().class_for(big + OVERHEAD).unwrap();
    assert_eq!(s.slabs().classes()[class].chunks_per_page, 1);
    s.set(1, big, None, 0.0).unwrap();
    assert_eq!(s.len(), 1);
    s.set(2, big, None, 0.0).unwrap();
    assert_eq!(s.len(), 1, "single-chunk class holds exactly one item");
    assert_eq!(s.stats().evictions, 1);
    assert!(s.get(1, 0.0).is_miss());
    assert!(s.get(2, 0.0).is_hit());
}

/// Re-`set` of a resident key must refresh its recency (memcached's
/// replace makes the item MRU) without duplicating it — so under
/// pressure the victim is the least-recently *written-or-read* key, and
/// repeated re-sets of a hot key never inflate the item count.
#[test]
fn lru_order_is_stable_under_re_set() {
    let mut s = store_with(1 << 20);
    let value = 400;
    let class = s.slabs().class_for(value + OVERHEAD).unwrap();
    let per_page = s.slabs().classes()[class].chunks_per_page;
    for k in 0..per_page as u64 {
        s.set(k, value, None, 0.0).unwrap();
    }
    assert_eq!(s.len(), per_page);

    // Re-set key 0 (the current LRU tail): it must become MRU.
    s.set(0, value, None, 1.0).unwrap();
    assert_eq!(s.len(), per_page, "re-set must not duplicate");
    assert_eq!(s.stats().evictions, 0, "re-set of a resident key is free");

    // Pressure: the victim is now key 1, not the re-set key 0.
    s.set(1_000_000, value, None, 2.0).unwrap();
    assert_eq!(s.stats().evictions, 1);
    assert!(s.get(0, 2.0).is_hit(), "re-set key must be MRU-protected");
    assert!(s.get(1, 2.0).is_miss(), "key 1 was the true LRU victim");

    // Hammering one key with re-sets leaves everything else untouched.
    for i in 0..100 {
        s.set(0, value, None, 3.0 + f64::from(i)).unwrap();
    }
    assert_eq!(s.len(), per_page);
    assert_eq!(s.stats().evictions, 1);
    assert!(s.get(2, 200.0).is_hit());

    // Re-set into a *different* size class relocates the item: one copy,
    // new class, old chunk released for its own class's reuse.
    let mut s = store_with(4 << 20);
    s.set(7, 100, None, 0.0).unwrap();
    s.set(7, 5_000, None, 1.0).unwrap();
    assert_eq!(s.len(), 1);
    match s.get(7, 1.0) {
        Lookup::Hit { value_size, .. } => assert_eq!(value_size, 5_000),
        Lookup::Miss => panic!("relocated item must hit"),
    }
}
