//! Model-based property testing of the slab/LRU store against a simple
//! reference implementation.
//!
//! The reference ignores memory limits (never evicts); agreement is
//! therefore checked on the subset of behaviours that must coincide:
//! presence implies same value size, hits after sets, deletes, expiry,
//! and the store's own invariants (item count, slab accounting, LRU
//! membership).

use std::collections::HashMap;

use memlat_cache::{Lookup, Store, StoreConfig, StoreError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set {
        key: u64,
        size: usize,
        ttl: Option<f64>,
    },
    Get {
        key: u64,
    },
    Delete {
        key: u64,
    },
    Advance {
        dt: f64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..40, 1usize..4000, proptest::option::of(0.1f64..5.0))
            .prop_map(|(key, size, ttl)| Op::Set { key, size, ttl }),
        (0u64..40).prop_map(|key| Op::Get { key }),
        (0u64..40).prop_map(|key| Op::Delete { key }),
        (0.01f64..1.0).prop_map(|dt| Op::Advance { dt }),
    ]
}

#[derive(Debug, Clone, Copy)]
struct RefEntry {
    size: usize,
    expires_at: Option<f64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_agrees_with_reference(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        // Plenty of memory: no evictions, so reference and store see the
        // same world.
        let mut store = Store::new(StoreConfig::with_memory(64 << 20)).unwrap();
        let mut reference: HashMap<u64, RefEntry> = HashMap::new();
        let mut now = 0.0f64;

        for op in ops {
            match op {
                Op::Set { key, size, ttl } => {
                    let expires_at = ttl.map(|d| now + d);
                    store.set(key, size, expires_at, now).unwrap();
                    reference.insert(key, RefEntry { size, expires_at });
                }
                Op::Get { key } => {
                    let expected = reference.get(&key).copied().filter(|e| {
                        e.expires_at.is_none_or(|t| now < t)
                    });
                    match (store.get(key, now), expected) {
                        (Lookup::Hit { value_size, .. }, Some(e)) => {
                            prop_assert_eq!(value_size, e.size);
                        }
                        (Lookup::Miss, None) => {
                            // Expired entries also disappear from the
                            // reference on observation.
                            reference.remove(&key);
                        }
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "key {key} at t={now}: store={got:?} reference={want:?}"
                            )));
                        }
                    }
                    // Lazy expiry: a reference entry that expired is
                    // pruned once seen.
                    if expected.is_none() {
                        reference.remove(&key);
                    }
                }
                Op::Delete { key } => {
                    let was_store = store.delete(key);
                    let was_ref = reference.remove(&key).is_some();
                    // A lazily-expired entry may linger in the reference
                    // but must have been pruned or expired in both.
                    if was_store != was_ref {
                        prop_assert!(
                            !was_store,
                            "store deleted key {key} the reference did not know"
                        );
                    }
                }
                Op::Advance { dt } => now += dt,
            }
            // Invariants after every operation.
            prop_assert!(store.len() <= 40);
            let used: usize = store
                .slabs()
                .classes()
                .iter()
                .map(|c| c.used_chunks)
                .sum();
            prop_assert_eq!(used, store.len(), "slab chunks != live items");
        }
    }

    /// Under memory pressure, the store never exceeds its page budget and
    /// evicts strictly from the requested class.
    #[test]
    fn eviction_respects_budget(sizes in proptest::collection::vec(50usize..2000, 10..300)) {
        let mut store = Store::new(StoreConfig::with_memory(1 << 20)).unwrap();
        let budget_pages = 1;
        for (i, size) in sizes.iter().enumerate() {
            match store.set(i as u64, *size, None, 0.0) {
                Ok(()) | Err(StoreError::OutOfMemory) => {}
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
            }
            let pages: usize = store.slabs().classes().iter().map(|c| c.pages).sum();
            prop_assert!(pages <= budget_pages, "page budget exceeded: {pages}");
            prop_assert!(store.slabs().reserved_bytes() <= 1 << 20);
        }
    }

    /// Replacing a key never changes the live-item count, regardless of
    /// the size class it moves to.
    #[test]
    fn replacement_is_idempotent_on_len(a in 1usize..3000, b in 1usize..3000) {
        let mut store = Store::new(StoreConfig::with_memory(8 << 20)).unwrap();
        store.set(1, a, None, 0.0).unwrap();
        store.set(1, b, None, 0.0).unwrap();
        prop_assert_eq!(store.len(), 1);
        match store.get(1, 0.0) {
            Lookup::Hit { value_size, .. } => prop_assert_eq!(value_size, b),
            Lookup::Miss => return Err(TestCaseError::fail("replaced key missing")),
        }
    }
}
