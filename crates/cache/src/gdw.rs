//! Cost-aware eviction: a Greedy-Dual cache (GD-Wheel-lite).
//!
//! The paper's related work (§2.2, \[19\] GD-Wheel) improves latency not by
//! reducing the *number* of misses but their *cost*: items that are
//! expensive to refetch from the database are kept preferentially. This
//! module implements the classic Greedy-Dual policy the wheel
//! approximates:
//!
//! * every resident item carries a priority `H = clock + cost`;
//! * eviction removes the minimum-`H` item and advances `clock` to its
//!   `H` (the aging mechanism — recently useful items keep floating up);
//! * a hit refreshes the item's priority to `clock + cost`.
//!
//! With all costs equal the policy degenerates to LRU-like aging, so the
//! LRU [`crate::Store`] is the natural baseline; the
//! `ablation_eviction_policy` experiment compares the two on a workload
//! with heterogeneous database costs.
//!
//! Unlike [`crate::Store`] this cache uses plain byte accounting (no slab
//! classes) — Greedy-Dual's bookkeeping is priority-queue-shaped, and
//! mixing it with slab pages would obscure the policy comparison.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::KeyId;

/// Priority-ordered heap entry (lazily invalidated).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    priority: f64,
    stamp: u64,
    key: KeyId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then(self.stamp.cmp(&other.stamp))
            .then(self.key.cmp(&other.key))
    }
}

#[derive(Debug, Clone, Copy)]
struct Resident {
    size: usize,
    cost: f64,
    stamp: u64,
}

/// Cumulative statistics of a [`CostAwareCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GdwStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Total refetch cost incurred by misses (the latency the cache
    /// failed to save).
    pub miss_cost: f64,
    /// Items evicted.
    pub evictions: u64,
}

impl GdwStats {
    /// Observed miss ratio.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Mean refetch cost per lookup — the quantity Greedy-Dual minimizes
    /// (proportional to the database stage's contribution to latency).
    #[must_use]
    pub fn cost_per_lookup(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.miss_cost / total as f64
        }
    }
}

/// A Greedy-Dual (cost-aware) cache with a byte budget.
///
/// # Examples
///
/// ```
/// use memlat_cache::gdw::CostAwareCache;
///
/// let mut c = CostAwareCache::new(10_000).unwrap();
/// c.insert(1, 100, 5.0); // cheap-to-refetch item
/// c.insert(2, 100, 50.0); // expensive item
/// assert!(c.contains(1) && c.contains(2));
/// ```
#[derive(Debug, Clone)]
pub struct CostAwareCache {
    budget: usize,
    used: usize,
    clock: f64,
    next_stamp: u64,
    index: HashMap<KeyId, Resident>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    stats: GdwStats,
}

impl CostAwareCache {
    /// Creates a cache with the given byte budget.
    ///
    /// # Errors
    ///
    /// Returns a message when the budget is zero.
    pub fn new(budget_bytes: usize) -> Result<Self, String> {
        if budget_bytes == 0 {
            return Err("budget must be positive".to_string());
        }
        Ok(Self {
            budget: budget_bytes,
            used: 0,
            clock: 0.0,
            next_stamp: 0,
            index: HashMap::new(),
            heap: BinaryHeap::new(),
            stats: GdwStats::default(),
        })
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> GdwStats {
        self.stats
    }

    /// Live item count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes in use.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Whether `key` is resident (without touching statistics or
    /// priorities).
    #[must_use]
    pub fn contains(&self, key: KeyId) -> bool {
        self.index.contains_key(&key)
    }

    fn push_entry(&mut self, key: KeyId, cost: f64) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.heap.push(Reverse(HeapEntry {
            priority: self.clock + cost,
            stamp,
            key,
        }));
        stamp
    }

    /// Looks up `key`; on a hit the item's priority is refreshed, on a
    /// miss the `refetch_cost` is charged to the statistics (the caller
    /// is expected to [`insert`](Self::insert) afterwards, demand-fill
    /// style).
    pub fn get(&mut self, key: KeyId, refetch_cost: f64) -> bool {
        if let Some(r) = self.index.get(&key).copied() {
            let stamp = self.push_entry(key, r.cost);
            self.index.get_mut(&key).expect("just read").stamp = stamp;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            self.stats.miss_cost += refetch_cost;
            false
        }
    }

    /// Inserts (or replaces) `key` with the given size and refetch cost,
    /// evicting minimum-priority items as needed.
    ///
    /// Items larger than the whole budget are silently not cached
    /// (memcached behaves the same for oversized items).
    pub fn insert(&mut self, key: KeyId, size: usize, cost: f64) {
        if size > self.budget {
            return;
        }
        if let Some(old) = self.index.remove(&key) {
            self.used -= old.size;
        }
        while self.used + size > self.budget {
            self.evict_one();
        }
        let stamp = self.push_entry(key, cost);
        self.index.insert(key, Resident { size, cost, stamp });
        self.used += size;
    }

    fn evict_one(&mut self) {
        while let Some(Reverse(e)) = self.heap.pop() {
            match self.index.get(&e.key) {
                // Only the entry whose stamp matches is live; older heap
                // entries for the same key are stale.
                Some(r) if r.stamp == e.stamp => {
                    self.used -= r.size;
                    self.index.remove(&e.key);
                    // Greedy-Dual aging: the clock jumps to the evicted
                    // priority.
                    self.clock = e.priority;
                    self.stats.evictions += 1;
                    return;
                }
                _ => continue,
            }
        }
        unreachable!("eviction requested on an empty cache");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss_cycle() {
        let mut c = CostAwareCache::new(1_000).unwrap();
        assert!(!c.get(1, 10.0));
        c.insert(1, 100, 10.0);
        assert!(c.get(1, 10.0));
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(st.miss_cost, 10.0);
        assert!((st.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_budget_and_oversized_items() {
        assert!(CostAwareCache::new(0).is_err());
        let mut c = CostAwareCache::new(100).unwrap();
        c.insert(1, 500, 1.0); // larger than budget: ignored
        assert!(!c.contains(1));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn byte_budget_is_respected() {
        let mut c = CostAwareCache::new(1_000).unwrap();
        for k in 0..100u64 {
            c.insert(k, 100, 1.0);
            assert!(c.used_bytes() <= 1_000);
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.stats().evictions, 90);
    }

    #[test]
    fn expensive_items_survive_pressure() {
        let mut c = CostAwareCache::new(1_000).unwrap();
        // One precious item…
        c.insert(999, 100, 1_000.0);
        // …then a flood of cheap ones.
        for k in 0..50u64 {
            c.insert(k, 100, 1.0);
        }
        assert!(c.contains(999), "high-cost item was evicted");
        // With equal costs the same flood would have evicted it (FIFO
        // aging): demonstrate with a fresh cache.
        let mut lru_ish = CostAwareCache::new(1_000).unwrap();
        lru_ish.insert(999, 100, 1.0);
        for k in 0..50u64 {
            lru_ish.insert(k, 100, 1.0);
        }
        assert!(!lru_ish.contains(999));
    }

    #[test]
    fn hits_refresh_priority() {
        let mut c = CostAwareCache::new(300).unwrap();
        c.insert(1, 100, 1.0);
        c.insert(2, 100, 1.0);
        c.insert(3, 100, 1.0);
        // Touch 1 so its priority refreshes above 2 and 3.
        assert!(c.get(1, 1.0));
        c.insert(4, 100, 1.0); // evicts 2 (oldest untouched)
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn replacement_updates_size_and_cost() {
        let mut c = CostAwareCache::new(1_000).unwrap();
        c.insert(1, 100, 1.0);
        c.insert(1, 600, 5.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 600);
    }

    #[test]
    fn aging_lets_stale_expensive_items_leave_eventually() {
        let mut c = CostAwareCache::new(500).unwrap();
        c.insert(999, 100, 50.0); // expensive but never touched again
                                  // Keep hammering cheap items; each eviction raises the clock, so
                                  // fresh cheap items eventually outrank the stale expensive one.
        for k in 0..2_000u64 {
            c.insert(k % 64, 100, 1.0);
            let _ = c.get(k % 64, 1.0);
        }
        assert!(!c.contains(999), "aging failed: stale item pinned forever");
    }

    #[test]
    fn cost_per_lookup_tracks_misses() {
        let mut c = CostAwareCache::new(1_000).unwrap();
        for _ in 0..4 {
            let _ = c.get(7, 2.5);
        }
        assert!((c.stats().cost_per_lookup() - 2.5).abs() < 1e-12);
    }
}
