//! Memcached server internals: a slab-allocated, LRU-evicting key-value
//! store.
//!
//! The paper abstracts a memcached server as `Exp(μ_S)` service with a
//! *fixed* miss ratio `r`. This crate supplies the concrete machinery a
//! real memcached server uses to produce that miss ratio — a slab
//! allocator with per-class LRU eviction — so the simulator can let `r`
//! **emerge** from cache size, item sizes and key popularity (the
//! extension experiment in EXPERIMENTS.md), and so the repository is a
//! usable memcached model rather than a black box.
//!
//! * [`slab`] — size classes with a configurable growth factor and
//!   1 MiB pages, mirroring memcached's allocator.
//! * [`lru`] — an arena-based intrusive doubly-linked LRU list.
//! * [`store`] — the [`Store`]: get/set/delete with TTLs, per-class LRU
//!   eviction and hit/miss statistics.
//! * [`gdw`] — a Greedy-Dual **cost-aware** cache (GD-Wheel-lite, the
//!   paper's related work \[19\]) for eviction-policy ablations.
//!
//! # Examples
//!
//! ```
//! use memlat_cache::{Store, StoreConfig};
//!
//! let mut store = Store::new(StoreConfig::with_memory(16 << 20)).unwrap();
//! store.set(42, 100, None, 0.0).unwrap();
//! assert!(store.get(42, 0.0).is_hit());
//! assert!(store.get(7, 0.0).is_miss());
//! assert_eq!(store.stats().hits, 1);
//! assert_eq!(store.stats().misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod gdw;
pub mod lru;
pub mod slab;
pub mod store;

pub use bytes::Bytes;
pub use gdw::{CostAwareCache, GdwStats};
pub use slab::{SlabAllocator, SlabConfig};
pub use store::{Lookup, Store, StoreConfig, StoreError, StoreStats};

/// Key identifiers, shared with `memlat-workload`.
pub type KeyId = u64;
