//! The keyed store: memcached's get/set/delete over slab + LRU.

use std::collections::HashMap;
use std::fmt;

use crate::bytes::Bytes;

use crate::lru::{Links, LruList, SlotId};
use crate::slab::{Allocation, SlabAllocator, SlabConfig};
use crate::KeyId;

/// Store configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Slab allocator configuration (memory limit, growth factor, …).
    pub slab: SlabConfig,
    /// Per-item metadata overhead added to the value size when choosing a
    /// size class (key + item header; memcached's is ~48–56 B plus the
    /// key).
    pub item_overhead: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            slab: SlabConfig::default(),
            item_overhead: 80,
        }
    }
}

impl StoreConfig {
    /// A default-configured store with the given memory budget.
    #[must_use]
    pub fn with_memory(bytes: usize) -> Self {
        Self {
            slab: SlabConfig {
                memory_limit: bytes,
                ..SlabConfig::default()
            },
            ..Self::default()
        }
    }
}

/// Errors the store can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The item (value + overhead) exceeds the largest slab chunk.
    ItemTooLarge {
        /// The offending total item size.
        size: usize,
    },
    /// The target size class has neither free chunks, page budget, nor
    /// anything to evict.
    OutOfMemory,
    /// Configuration rejected by the slab allocator.
    Config(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ItemTooLarge { size } => {
                write!(f, "item of {size} bytes exceeds the largest chunk")
            }
            StoreError::OutOfMemory => write!(f, "no chunk available and nothing to evict"),
            StoreError::Config(m) => write!(f, "invalid store configuration: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Counters the store maintains (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups (absent or expired).
    pub misses: u64,
    /// Lookups that found an expired item (subset of `misses`).
    pub expired: u64,
    /// Completed `set` operations.
    pub sets: u64,
    /// Items evicted by LRU pressure.
    pub evictions: u64,
    /// Explicit deletions.
    pub deletes: u64,
}

impl StoreStats {
    /// Observed miss ratio `misses/(hits+misses)`; 0 with no lookups.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Result of a lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The key was cached (and unexpired); carries the stored value size
    /// and the payload when one was stored.
    Hit {
        /// Value size in bytes as recorded at `set` time.
        value_size: usize,
        /// Stored payload, if `set_with_payload` was used.
        payload: Option<Bytes>,
    },
    /// The key was absent or expired.
    Miss,
}

impl Lookup {
    /// Whether the lookup hit.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, Lookup::Hit { .. })
    }

    /// Whether the lookup missed.
    #[must_use]
    pub fn is_miss(&self) -> bool {
        matches!(self, Lookup::Miss)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    key: KeyId,
    value_size: usize,
    class: usize,
    expires_at: Option<f64>,
    payload: Option<Bytes>,
    live: bool,
}

/// A slab-allocated, per-class-LRU key-value store — one simulated
/// memcached server's memory.
///
/// Time is external (`now` parameters), matching the simulator's virtual
/// clock.
///
/// # Examples
///
/// ```
/// use memlat_cache::{Store, StoreConfig};
///
/// let mut s = Store::new(StoreConfig::with_memory(8 << 20)).unwrap();
/// s.set(1, 100, Some(10.0), 0.0).unwrap(); // expires at t = 10
/// assert!(s.get(1, 5.0).is_hit());
/// assert!(s.get(1, 11.0).is_miss()); // expired
/// ```
#[derive(Debug, Clone)]
pub struct Store {
    slabs: SlabAllocator,
    index: HashMap<KeyId, SlotId>,
    arena: Vec<Entry>,
    /// LRU link fields, parallel to `arena` (kept separate so list
    /// operations never touch — or copy — the entries themselves).
    links: Vec<Links>,
    free_slots: Vec<SlotId>,
    lrus: Vec<LruList>,
    item_overhead: usize,
    stats: StoreStats,
}

impl Store {
    /// Creates an empty store.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Config`] when the slab configuration is
    /// invalid.
    pub fn new(config: StoreConfig) -> Result<Self, StoreError> {
        let slabs = SlabAllocator::new(config.slab).map_err(StoreError::Config)?;
        let lrus = vec![LruList::new(); slabs.class_count()];
        Ok(Self {
            slabs,
            index: HashMap::new(),
            arena: Vec::new(),
            links: Vec::new(),
            free_slots: Vec::new(),
            lrus,
            item_overhead: config.item_overhead,
            stats: StoreStats::default(),
        })
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Number of live items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The underlying slab allocator (for introspection).
    #[must_use]
    pub fn slabs(&self) -> &SlabAllocator {
        &self.slabs
    }

    /// Looks up `key` at time `now`.
    pub fn get(&mut self, key: KeyId, now: f64) -> Lookup {
        let Some(&slot) = self.index.get(&key) else {
            self.stats.misses += 1;
            return Lookup::Miss;
        };
        let expired = self.arena[slot].expires_at.is_some_and(|t| now >= t);
        if expired {
            self.remove_slot(slot);
            self.stats.expired += 1;
            self.stats.misses += 1;
            return Lookup::Miss;
        }
        let class = self.arena[slot].class;
        self.lrus[class].touch(slot, &mut self.links);
        self.stats.hits += 1;
        let e = &self.arena[slot];
        Lookup::Hit {
            value_size: e.value_size,
            payload: e.payload.clone(),
        }
    }

    /// Stores `key` with a value of `value_size` bytes and optional
    /// absolute expiry time.
    ///
    /// # Errors
    ///
    /// [`StoreError::ItemTooLarge`] when the item exceeds the largest
    /// chunk; [`StoreError::OutOfMemory`] when nothing can be evicted.
    pub fn set(
        &mut self,
        key: KeyId,
        value_size: usize,
        expires_at: Option<f64>,
        now: f64,
    ) -> Result<(), StoreError> {
        self.set_impl(key, value_size, None, expires_at, now)
    }

    /// Stores `key` with an actual payload (the payload's length is the
    /// value size).
    ///
    /// # Errors
    ///
    /// Same as [`Store::set`].
    pub fn set_with_payload(
        &mut self,
        key: KeyId,
        payload: Bytes,
        expires_at: Option<f64>,
        now: f64,
    ) -> Result<(), StoreError> {
        let size = payload.len();
        self.set_impl(key, size, Some(payload), expires_at, now)
    }

    fn set_impl(
        &mut self,
        key: KeyId,
        value_size: usize,
        payload: Option<Bytes>,
        expires_at: Option<f64>,
        _now: f64,
    ) -> Result<(), StoreError> {
        let item_size = value_size + self.item_overhead;
        let class = self
            .slabs
            .class_for(item_size)
            .ok_or(StoreError::ItemTooLarge { size: item_size })?;

        // Replace semantics: drop any existing copy first.
        if let Some(&slot) = self.index.get(&key) {
            self.remove_slot(slot);
        }

        // Acquire a chunk, evicting from this class's LRU if needed.
        loop {
            match self.slabs.allocate(class) {
                Allocation::Reused | Allocation::NewPage => break,
                Allocation::NeedsEviction => {
                    let victim = self.lrus[class].pop_back(&mut self.links);
                    match victim {
                        Some(slot) => {
                            let vkey = self.arena[slot].key;
                            self.index.remove(&vkey);
                            self.arena[slot].live = false;
                            self.free_slots.push(slot);
                            self.slabs.release(class);
                            self.stats.evictions += 1;
                        }
                        None => return Err(StoreError::OutOfMemory),
                    }
                }
            }
        }

        let entry = Entry {
            key,
            value_size,
            class,
            expires_at,
            payload,
            live: true,
        };
        let slot = if let Some(slot) = self.free_slots.pop() {
            self.arena[slot] = entry;
            self.links[slot] = Links::new();
            slot
        } else {
            self.arena.push(entry);
            self.links.push(Links::new());
            self.arena.len() - 1
        };
        self.index.insert(key, slot);
        self.lrus[class].push_front(slot, &mut self.links);
        self.stats.sets += 1;
        Ok(())
    }

    /// Deletes `key`; returns whether it was present.
    pub fn delete(&mut self, key: KeyId) -> bool {
        if let Some(&slot) = self.index.get(&key) {
            self.remove_slot(slot);
            self.stats.deletes += 1;
            true
        } else {
            false
        }
    }

    fn remove_slot(&mut self, slot: SlotId) {
        let class = self.arena[slot].class;
        let key = self.arena[slot].key;
        debug_assert!(self.arena[slot].live);
        self.lrus[class].unlink(slot, &mut self.links);
        self.slabs.release(class);
        self.index.remove(&key);
        self.arena[slot].live = false;
        self.arena[slot].payload = None;
        self.free_slots.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> Store {
        // One page only: tight memory to exercise eviction.
        Store::new(StoreConfig::with_memory(1 << 20)).unwrap()
    }

    #[test]
    fn basic_get_set_delete() {
        let mut s = small_store();
        assert!(s.get(1, 0.0).is_miss());
        s.set(1, 100, None, 0.0).unwrap();
        assert!(s.get(1, 0.0).is_hit());
        assert!(s.delete(1));
        assert!(!s.delete(1));
        assert!(s.get(1, 0.0).is_miss());
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.sets, st.deletes), (1, 2, 1, 1));
    }

    #[test]
    fn replace_updates_size_and_keeps_one_copy() {
        // Two pages, so the replacement's new size class can get its own.
        let mut s = Store::new(StoreConfig::with_memory(4 << 20)).unwrap();
        s.set(1, 100, None, 0.0).unwrap();
        s.set(1, 5_000, None, 0.0).unwrap();
        assert_eq!(s.len(), 1);
        match s.get(1, 0.0) {
            Lookup::Hit { value_size, .. } => assert_eq!(value_size, 5_000),
            Lookup::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn slab_calcification_is_faithful() {
        // With a single page spent on one class, a differently-sized item
        // cannot be stored — pages are never reassigned, exactly like
        // memcached (the "calcification" problem the paper's related work
        // [2] addresses with slab rebalancing).
        let mut s = small_store();
        s.set(1, 100, None, 0.0).unwrap();
        assert_eq!(s.set(2, 5_000, None, 0.0), Err(StoreError::OutOfMemory));
    }

    #[test]
    fn ttl_expiry() {
        let mut s = small_store();
        s.set(1, 100, Some(5.0), 0.0).unwrap();
        assert!(s.get(1, 4.999).is_hit());
        assert!(s.get(1, 5.0).is_miss());
        assert_eq!(s.stats().expired, 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut s = small_store();
        // Fill one class beyond capacity: value 400 + 80 overhead → 480 →
        // class with chunk ~593; a 1 MiB page holds ~1768 chunks.
        let per_page = {
            let class = s.slabs().class_for(480).unwrap();
            s.slabs().classes()[class].chunks_per_page
        };
        for k in 0..per_page as u64 + 10 {
            s.set(k, 400, None, 0.0).unwrap();
        }
        assert_eq!(s.stats().evictions, 10);
        // The earliest keys were evicted, the latest survive.
        assert!(s.get(0, 0.0).is_miss());
        assert!(s.get(per_page as u64 + 9, 0.0).is_hit());
        assert_eq!(s.len(), per_page);
    }

    #[test]
    fn get_protects_from_eviction() {
        let mut s = small_store();
        let class = s.slabs().class_for(480).unwrap();
        let per_page = s.slabs().classes()[class].chunks_per_page;
        for k in 0..per_page as u64 {
            s.set(k, 400, None, 0.0).unwrap();
        }
        // Touch key 0: it becomes MRU and must survive the next insert.
        assert!(s.get(0, 0.0).is_hit());
        s.set(999_999, 400, None, 0.0).unwrap();
        assert!(s.get(0, 0.0).is_hit());
        assert!(s.get(1, 0.0).is_miss()); // key 1 was the LRU victim
    }

    #[test]
    fn item_too_large() {
        let mut s = small_store();
        assert!(matches!(
            s.set(1, 2 << 20, None, 0.0),
            Err(StoreError::ItemTooLarge { .. })
        ));
    }

    #[test]
    fn out_of_memory_when_class_is_empty_and_budget_spent() {
        let mut s = small_store();
        // Spend the single page on small items…
        let small_class = s.slabs().class_for(180).unwrap();
        let per_page = s.slabs().classes()[small_class].chunks_per_page;
        for k in 0..per_page as u64 {
            s.set(k, 100, None, 0.0).unwrap();
        }
        // …then a big item has no page and nothing of its own class to
        // evict.
        assert_eq!(
            s.set(10_000, 500_000, None, 0.0),
            Err(StoreError::OutOfMemory)
        );
    }

    #[test]
    fn payload_round_trip() {
        let mut s = small_store();
        let data = Bytes::from_static(b"hello memcached");
        s.set_with_payload(7, data.clone(), None, 0.0).unwrap();
        match s.get(7, 0.0) {
            Lookup::Hit {
                value_size,
                payload,
            } => {
                assert_eq!(value_size, data.len());
                assert_eq!(payload.as_deref(), Some(b"hello memcached".as_slice()));
            }
            Lookup::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn miss_ratio_stat() {
        let mut s = small_store();
        s.set(1, 10, None, 0.0).unwrap();
        for _ in 0..3 {
            let _ = s.get(1, 0.0);
        }
        let _ = s.get(2, 0.0);
        assert!((s.stats().miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut s = small_store();
        for k in 0..100u64 {
            s.set(k, 100, None, 0.0).unwrap();
        }
        for k in 0..100u64 {
            s.delete(k);
        }
        let arena_before = s.arena.len();
        for k in 100..200u64 {
            s.set(k, 100, None, 0.0).unwrap();
        }
        assert_eq!(s.arena.len(), arena_before, "slots must be reused");
        assert_eq!(s.len(), 100);
    }
}
