//! A minimal, cheaply-cloneable byte buffer.
//!
//! Stand-in for the external `bytes::Bytes` (the build is offline):
//! an `Arc<[u8]>` with the small API surface the store needs. Clones
//! share the allocation; the buffer is immutable once created.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte slice.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Wraps a static byte slice (copied once into shared storage).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self(Arc::from(bytes))
    }

    /// Copies a slice into shared storage.
    #[must_use]
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self(Arc::from(bytes))
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clones_share_and_compare_equal() {
        let a = Bytes::from_static(b"memcached");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
        assert!(!a.is_empty());
        assert_eq!(&a[..3], b"mem");
        assert_eq!(Some(&b).map(|x| x.as_ref()), Some(b"memcached".as_slice()));
    }

    #[test]
    fn from_vec_and_slice() {
        let v = Bytes::from(vec![1u8, 2, 3]);
        let s = Bytes::from(&[1u8, 2, 3][..]);
        assert_eq!(v, s);
    }
}
