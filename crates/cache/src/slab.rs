//! The slab allocator: size classes, pages, chunks.
//!
//! Mirrors memcached's allocator: memory is carved into fixed-size pages
//! (1 MiB), each page is assigned to a *size class*, and a class serves
//! items whose total size fits its chunk size. Classes grow geometrically
//! from a base chunk size by a growth factor (memcached default 1.25).

/// Configuration of the slab allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlabConfig {
    /// Total memory budget in bytes (`-m` in memcached).
    pub memory_limit: usize,
    /// Page size in bytes (memcached: 1 MiB).
    pub page_size: usize,
    /// Smallest chunk size in bytes (memcached: 96 with defaults).
    pub base_chunk: usize,
    /// Geometric growth factor between classes (`-f`, default 1.25).
    pub growth_factor: f64,
}

impl Default for SlabConfig {
    fn default() -> Self {
        Self {
            memory_limit: 64 << 20,
            page_size: 1 << 20,
            base_chunk: 96,
            growth_factor: 1.25,
        }
    }
}

/// One size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabClass {
    /// Chunk size in bytes.
    pub chunk_size: usize,
    /// Chunks per page.
    pub chunks_per_page: usize,
    /// Pages currently assigned to this class.
    pub pages: usize,
    /// Chunks currently in use.
    pub used_chunks: usize,
}

impl SlabClass {
    /// Total chunks available in assigned pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.pages * self.chunks_per_page
    }

    /// Free chunks in assigned pages.
    #[must_use]
    pub fn free_chunks(&self) -> usize {
        self.capacity() - self.used_chunks
    }
}

/// Outcome of an allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// A chunk was taken from an existing page of the class.
    Reused,
    /// A fresh page was assigned to the class.
    NewPage,
    /// The class and the global budget are exhausted — the store must
    /// evict from this class.
    NeedsEviction,
}

/// The slab allocator: tracks chunk bookkeeping, not payload bytes.
///
/// # Examples
///
/// ```
/// use memlat_cache::slab::{Allocation, SlabAllocator, SlabConfig};
///
/// let mut slabs = SlabAllocator::new(SlabConfig {
///     memory_limit: 2 << 20,
///     ..SlabConfig::default()
/// }).unwrap();
/// let class = slabs.class_for(100).unwrap();
/// assert_eq!(slabs.allocate(class), Allocation::NewPage);
/// assert_eq!(slabs.allocate(class), Allocation::Reused);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlabAllocator {
    config: SlabConfig,
    classes: Vec<SlabClass>,
    pages_assigned: usize,
}

impl SlabAllocator {
    /// Builds the class table for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration is inconsistent (zero
    /// sizes, growth factor ≤ 1, base chunk larger than a page, or a
    /// budget smaller than one page).
    pub fn new(config: SlabConfig) -> Result<Self, String> {
        if config.page_size == 0 || config.base_chunk == 0 {
            return Err("page and chunk sizes must be positive".to_string());
        }
        if config.growth_factor <= 1.0 {
            return Err(format!(
                "growth factor must exceed 1, got {}",
                config.growth_factor
            ));
        }
        if config.base_chunk > config.page_size {
            return Err("base chunk cannot exceed the page size".to_string());
        }
        if config.memory_limit < config.page_size {
            return Err("memory limit below one page".to_string());
        }
        let mut classes = Vec::new();
        let mut size = config.base_chunk as f64;
        while (size as usize) < config.page_size {
            let chunk_size = (size as usize).min(config.page_size);
            classes.push(SlabClass {
                chunk_size,
                chunks_per_page: config.page_size / chunk_size,
                pages: 0,
                used_chunks: 0,
            });
            size *= config.growth_factor;
        }
        // Final class: one chunk per page.
        classes.push(SlabClass {
            chunk_size: config.page_size,
            chunks_per_page: 1,
            pages: 0,
            used_chunks: 0,
        });
        Ok(Self {
            config,
            classes,
            pages_assigned: 0,
        })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SlabConfig {
        &self.config
    }

    /// Number of size classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The class table.
    #[must_use]
    pub fn classes(&self) -> &[SlabClass] {
        &self.classes
    }

    /// The smallest class whose chunk fits `item_size` bytes, or `None`
    /// if the item exceeds the largest chunk (memcached rejects such
    /// items).
    #[must_use]
    pub fn class_for(&self, item_size: usize) -> Option<usize> {
        self.classes.iter().position(|c| c.chunk_size >= item_size)
    }

    /// Total pages the budget allows.
    #[must_use]
    pub fn page_budget(&self) -> usize {
        self.config.memory_limit / self.config.page_size
    }

    /// Attempts to allocate one chunk in `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn allocate(&mut self, class: usize) -> Allocation {
        let budget = self.page_budget();
        let c = &mut self.classes[class];
        if c.used_chunks < c.capacity() {
            c.used_chunks += 1;
            return Allocation::Reused;
        }
        if self.pages_assigned < budget {
            c.pages += 1;
            c.used_chunks += 1;
            self.pages_assigned += 1;
            return Allocation::NewPage;
        }
        Allocation::NeedsEviction
    }

    /// Releases one chunk in `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or has no used chunks.
    pub fn release(&mut self, class: usize) {
        let c = &mut self.classes[class];
        assert!(c.used_chunks > 0, "release on empty class {class}");
        c.used_chunks -= 1;
    }

    /// Bytes currently reserved (pages assigned × page size).
    #[must_use]
    pub fn reserved_bytes(&self) -> usize {
        self.pages_assigned * self.config.page_size
    }

    /// Bytes actually in use by chunks.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.used_chunks * c.chunk_size)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_is_geometric() {
        let s = SlabAllocator::new(SlabConfig::default()).unwrap();
        let cs = s.classes();
        assert!(cs.len() > 20);
        assert_eq!(cs[0].chunk_size, 96);
        for w in cs.windows(2) {
            assert!(w[1].chunk_size > w[0].chunk_size);
            // Growth ratio ≈ 1.25 between consecutive classes (truncation
            // allows slack).
            let ratio = w[1].chunk_size as f64 / w[0].chunk_size as f64;
            assert!(
                ratio < 1.3 + 1e-9 || w[1].chunk_size == s.config().page_size,
                "{ratio}"
            );
        }
        assert_eq!(cs.last().unwrap().chunk_size, 1 << 20);
    }

    #[test]
    fn class_selection() {
        let s = SlabAllocator::new(SlabConfig::default()).unwrap();
        assert_eq!(s.class_for(1), Some(0));
        assert_eq!(s.class_for(96), Some(0));
        assert_eq!(s.class_for(97), Some(1));
        assert_eq!(s.class_for(1 << 20), Some(s.class_count() - 1));
        assert_eq!(s.class_for((1 << 20) + 1), None);
    }

    #[test]
    fn allocation_lifecycle() {
        let mut s = SlabAllocator::new(SlabConfig {
            memory_limit: 1 << 20, // exactly one page
            ..SlabConfig::default()
        })
        .unwrap();
        let class = s.class_for(500).unwrap();
        assert_eq!(s.allocate(class), Allocation::NewPage);
        let per_page = s.classes()[class].chunks_per_page;
        for _ in 1..per_page {
            assert_eq!(s.allocate(class), Allocation::Reused);
        }
        // Page full and no budget left.
        assert_eq!(s.allocate(class), Allocation::NeedsEviction);
        s.release(class);
        assert_eq!(s.allocate(class), Allocation::Reused);
        assert_eq!(s.reserved_bytes(), 1 << 20);
        assert!(s.used_bytes() > 0);
    }

    #[test]
    fn classes_compete_for_pages() {
        let mut s = SlabAllocator::new(SlabConfig {
            memory_limit: 2 << 20,
            ..SlabConfig::default()
        })
        .unwrap();
        let small = s.class_for(100).unwrap();
        let big = s.class_for(100_000).unwrap();
        assert_eq!(s.allocate(small), Allocation::NewPage);
        assert_eq!(s.allocate(big), Allocation::NewPage);
        // Budget exhausted: big class cannot take another page.
        for _ in 1..s.classes()[big].chunks_per_page {
            assert_eq!(s.allocate(big), Allocation::Reused);
        }
        assert_eq!(s.allocate(big), Allocation::NeedsEviction);
        // But the small class still has free chunks in its own page.
        assert_eq!(s.allocate(small), Allocation::Reused);
    }

    #[test]
    fn config_validation() {
        assert!(SlabAllocator::new(SlabConfig {
            growth_factor: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(SlabAllocator::new(SlabConfig {
            base_chunk: 0,
            ..Default::default()
        })
        .is_err());
        assert!(SlabAllocator::new(SlabConfig {
            memory_limit: 10,
            ..Default::default()
        })
        .is_err());
        assert!(SlabAllocator::new(SlabConfig {
            base_chunk: 2 << 20,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    #[should_panic(expected = "release on empty class")]
    fn release_on_empty_panics() {
        let mut s = SlabAllocator::new(SlabConfig::default()).unwrap();
        s.release(0);
    }
}
