//! An arena-based intrusive doubly-linked LRU list.
//!
//! Entries live in a caller-owned arena (`Vec`); the list stores only
//! indices, so there is no per-node allocation and no unsafe code.

/// Index type into the arena. `usize::MAX` encodes "none".
pub type SlotId = usize;

const NONE: SlotId = usize::MAX;

/// Link fields embedded in each arena entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Links {
    prev: SlotId,
    next: SlotId,
}

impl Default for Links {
    fn default() -> Self {
        Self {
            prev: NONE,
            next: NONE,
        }
    }
}

impl Links {
    /// Fresh, unlinked links.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A doubly-linked LRU list over an external arena.
///
/// The caller owns the entries and hands this struct mutable access to
/// each entry's [`Links`] through an accessor closure on every
/// operation — keeping the list reusable for any arena layout.
///
/// Front = most recently used; back = least recently used.
///
/// # Examples
///
/// ```
/// use memlat_cache::lru::{Links, LruList};
///
/// let mut links = vec![Links::new(); 3];
/// let mut lru = LruList::new();
/// for slot in 0..3 {
///     lru.push_front(slot, &mut links);
/// }
/// assert_eq!(lru.back(), Some(0));
/// lru.touch(0, &mut links); // 0 becomes most recent
/// assert_eq!(lru.back(), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruList {
    head: SlotId,
    tail: SlotId,
    len: usize,
}

impl Default for LruList {
    fn default() -> Self {
        Self::new()
    }
}

impl LruList {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        Self {
            head: NONE,
            tail: NONE,
            len: 0,
        }
    }

    /// Number of linked entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Most recently used slot.
    #[must_use]
    pub fn front(&self) -> Option<SlotId> {
        (self.head != NONE).then_some(self.head)
    }

    /// Least recently used slot.
    #[must_use]
    pub fn back(&self) -> Option<SlotId> {
        (self.tail != NONE).then_some(self.tail)
    }

    /// Links `slot` at the front (most recently used).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of the arena's bounds.
    pub fn push_front(&mut self, slot: SlotId, links: &mut [Links]) {
        links[slot] = Links {
            prev: NONE,
            next: self.head,
        };
        if self.head != NONE {
            links[self.head].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
        self.len += 1;
    }

    /// Unlinks `slot` from wherever it is.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds. Unlinking a slot that is not in
    /// the list corrupts the length — callers must track membership.
    pub fn unlink(&mut self, slot: SlotId, links: &mut [Links]) {
        let Links { prev, next } = links[slot];
        if prev != NONE {
            links[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            links[next].prev = prev;
        } else {
            self.tail = prev;
        }
        links[slot] = Links::default();
        self.len -= 1;
    }

    /// Moves `slot` to the front (a cache hit).
    pub fn touch(&mut self, slot: SlotId, links: &mut [Links]) {
        if self.head == slot {
            return;
        }
        self.unlink(slot, links);
        self.push_front(slot, links);
    }

    /// Unlinks and returns the least recently used slot.
    pub fn pop_back(&mut self, links: &mut [Links]) -> Option<SlotId> {
        let victim = self.back()?;
        self.unlink(victim, links);
        Some(victim)
    }

    /// Iterates from most to least recently used (O(len)).
    #[must_use]
    pub fn iter_order(&self, links: &[Links]) -> Vec<SlotId> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NONE {
            out.push(cur);
            cur = links[cur].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Vec<Links>, LruList) {
        (vec![Links::new(); n], LruList::new())
    }

    #[test]
    fn push_and_pop_order() {
        let (mut links, mut lru) = setup(4);
        for s in 0..4 {
            lru.push_front(s, &mut links);
        }
        assert_eq!(lru.len(), 4);
        assert_eq!(lru.front(), Some(3));
        // Pops come back in insertion order (LRU first).
        for expect in 0..4 {
            assert_eq!(lru.pop_back(&mut links), Some(expect));
        }
        assert!(lru.is_empty());
        assert_eq!(lru.pop_back(&mut links), None);
    }

    #[test]
    fn touch_promotes() {
        let (mut links, mut lru) = setup(3);
        for s in 0..3 {
            lru.push_front(s, &mut links);
        }
        lru.touch(0, &mut links);
        assert_eq!(lru.iter_order(&links), vec![0, 2, 1]);
        assert_eq!(lru.back(), Some(1));
        // Touching the head is a no-op.
        lru.touch(0, &mut links);
        assert_eq!(lru.iter_order(&links), vec![0, 2, 1]);
    }

    #[test]
    fn unlink_middle() {
        let (mut links, mut lru) = setup(3);
        for s in 0..3 {
            lru.push_front(s, &mut links);
        }
        lru.unlink(1, &mut links);
        assert_eq!(lru.iter_order(&links), vec![2, 0]);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn single_element_edge_cases() {
        let (mut links, mut lru) = setup(1);
        lru.push_front(0, &mut links);
        assert_eq!(lru.front(), lru.back());
        lru.unlink(0, &mut links);
        assert!(lru.is_empty());
        assert_eq!(lru.front(), None);
    }

    #[test]
    fn interleaved_operations_keep_consistency() {
        let (mut links, mut lru) = setup(64);
        let mut expect: std::collections::VecDeque<usize> = Default::default();
        for s in 0..64 {
            lru.push_front(s, &mut links);
            expect.push_front(s);
        }
        for step in 0..200 {
            match step % 3 {
                0 => {
                    let s = (step * 7) % 64;
                    if expect.contains(&s) {
                        lru.touch(s, &mut links);
                        expect.retain(|&x| x != s);
                        expect.push_front(s);
                    }
                }
                1 => {
                    if let Some(v) = lru.pop_back(&mut links) {
                        assert_eq!(Some(v), expect.pop_back());
                        lru.push_front(v, &mut links);
                        expect.push_front(v);
                    }
                }
                _ => {
                    assert_eq!(lru.iter_order(&links), Vec::from(expect.clone()));
                }
            }
        }
    }
}
