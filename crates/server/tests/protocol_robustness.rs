//! Fuzz/property suite for the text-protocol parser.
//!
//! The contract under test: the parser never panics regardless of input,
//! rejects malformed traffic with `ERROR`/`CLIENT_ERROR` lines, and is
//! *chunking-invariant* — feeding a pipelined stream split at any byte
//! boundary yields exactly the commands of the unsplit stream.

use memlat_server::protocol::parser::{parse, Command, Parsed, MAX_KEY_LEN, MAX_LINE_LEN};
use proptest::prelude::*;

/// Replays the per-connection parse loop: accumulate bytes, pull commands
/// and rejections off the front until `Incomplete`.
#[derive(Default)]
struct Harness {
    buf: Vec<u8>,
    /// Debug renderings of accepted commands (owned, comparable).
    cmds: Vec<String>,
    rejects: Vec<&'static str>,
    closed: bool,
}

impl Harness {
    fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        while !self.closed {
            let (consumed, close) = match parse(&self.buf) {
                Parsed::Incomplete => break,
                Parsed::Cmd { cmd, consumed } => {
                    self.cmds.push(format!("{cmd:?}"));
                    (consumed, false)
                }
                Parsed::Reject {
                    reply,
                    consumed,
                    close,
                } => {
                    self.rejects.push(reply);
                    (consumed, close)
                }
            };
            self.buf.drain(..consumed.min(self.buf.len()));
            if close {
                self.closed = true;
            }
            if consumed == 0 {
                break;
            }
        }
    }
}

/// A pipelined `set`(binary value containing CRLF) + `gets` + `delete
/// noreply` + `version` stream, the canonical frame for split testing.
const PIPELINE: &[u8] =
    b"set k:1 5 0 4\r\na\r\nb\r\ngets k:1 zz\r\ndelete k:1 noreply\r\nversion\r\n";

fn run_split(stream: &[u8], cuts: &[usize]) -> Harness {
    let mut h = Harness::default();
    let mut prev = 0;
    for &c in cuts {
        let c = c.min(stream.len());
        if c > prev {
            h.feed(&stream[prev..c]);
            prev = c;
        }
    }
    h.feed(&stream[prev..]);
    h
}

#[test]
fn pipeline_split_at_every_byte_boundary() {
    let whole = run_split(PIPELINE, &[]);
    assert_eq!(whole.cmds.len(), 4, "{:?}", whole.cmds);
    assert!(whole.rejects.is_empty());
    for cut in 0..=PIPELINE.len() {
        let split = run_split(PIPELINE, &[cut]);
        assert_eq!(split.cmds, whole.cmds, "split at byte {cut}");
        assert!(split.rejects.is_empty(), "split at byte {cut}");
        assert!(!split.closed);
    }
}

#[test]
fn pipeline_fed_one_byte_at_a_time() {
    let whole = run_split(PIPELINE, &[]);
    let mut h = Harness::default();
    for &b in PIPELINE {
        h.feed(&[b]);
    }
    assert_eq!(h.cmds, whole.cmds);
    assert!(h.rejects.is_empty());
}

#[test]
fn oversized_keys_rejected_with_client_error() {
    let big = "x".repeat(MAX_KEY_LEN + 1);
    for line in [
        format!("get {big}\r\n"),
        format!("set {big} 0 0 1\r\nv\r\n"),
        format!("delete {big}\r\n"),
    ] {
        match parse(line.as_bytes()) {
            Parsed::Reject { reply, close, .. } => {
                assert!(reply.starts_with("CLIENT_ERROR"), "{line:?} -> {reply}");
                assert!(!close);
            }
            other => panic!("{line:?} -> {other:?}"),
        }
    }
    // Exactly 250 bytes is legal.
    let ok = "x".repeat(MAX_KEY_LEN);
    assert!(matches!(
        parse(format!("get {ok}\r\n").as_bytes()),
        Parsed::Cmd { .. }
    ));
}

#[test]
fn malformed_lines_get_protocol_errors() {
    let cases: &[(&[u8], &str)] = &[
        (b"\r\n", "ERROR"),
        (b"   \r\n", "ERROR"),
        (b"bogus\r\n", "ERROR"),
        (b"get\r\n", "ERROR"),
        (b"set k 0 0\r\n", "CLIENT_ERROR"),
        (b"set k nope 0 1\r\nv\r\n", "CLIENT_ERROR"),
        (b"set k 0 0 -4\r\n", "CLIENT_ERROR"),
        (b"set k 0 0 1 yesreply\r\nv\r\n", "CLIENT_ERROR"),
        (b"set k 0 0 99999999999999999999999\r\n", "CLIENT_ERROR"),
        (b"delete\r\n", "CLIENT_ERROR"),
        (b"delete k not-noreply\r\n", "CLIENT_ERROR"),
        (b"get k\x01ctl\r\n", "CLIENT_ERROR"),
    ];
    for (input, prefix) in cases {
        match parse(input) {
            Parsed::Reject { reply, .. } => {
                assert!(reply.starts_with(prefix), "{input:?} -> {reply}");
            }
            other => panic!("{input:?} -> {other:?}"),
        }
    }
}

#[test]
fn unterminated_overlong_line_is_fatal() {
    let junk = vec![b'a'; MAX_LINE_LEN + 10];
    match parse(&junk) {
        Parsed::Reject { close, reply, .. } => {
            assert!(close);
            assert!(reply.starts_with("CLIENT_ERROR"));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn noreply_flags_are_parsed() {
    match parse(b"set k 1 2 3 noreply\r\nabc\r\n") {
        Parsed::Cmd {
            cmd: Command::Set { noreply, .. },
            ..
        } => assert!(noreply),
        other => panic!("unexpected: {other:?}"),
    }
    match parse(b"delete k noreply\r\n") {
        Parsed::Cmd {
            cmd: Command::Delete { noreply, .. },
            ..
        } => assert!(noreply),
        other => panic!("unexpected: {other:?}"),
    }
}

/// Owned spec for a generated valid command.
#[derive(Debug, Clone)]
enum Spec {
    Get(Vec<Vec<u8>>, bool),
    Set {
        key: Vec<u8>,
        flags: u32,
        exptime: i64,
        noreply: bool,
        data: Vec<u8>,
    },
    Delete(Vec<u8>, bool),
    Version,
    Stats,
}

fn encode(specs: &[Spec]) -> Vec<u8> {
    let mut out = Vec::new();
    for spec in specs {
        match spec {
            Spec::Get(keys, with_cas) => {
                out.extend_from_slice(if *with_cas { b"gets" } else { b"get" });
                for k in keys {
                    out.push(b' ');
                    out.extend_from_slice(k);
                }
                out.extend_from_slice(b"\r\n");
            }
            Spec::Set {
                key,
                flags,
                exptime,
                noreply,
                data,
            } => {
                out.extend_from_slice(b"set ");
                out.extend_from_slice(key);
                let tail = if *noreply { " noreply" } else { "" };
                out.extend_from_slice(
                    format!(" {flags} {exptime} {}{tail}\r\n", data.len()).as_bytes(),
                );
                out.extend_from_slice(data);
                out.extend_from_slice(b"\r\n");
            }
            Spec::Delete(key, noreply) => {
                out.extend_from_slice(b"delete ");
                out.extend_from_slice(key);
                if *noreply {
                    out.extend_from_slice(b" noreply");
                }
                out.extend_from_slice(b"\r\n");
            }
            Spec::Version => out.extend_from_slice(b"version\r\n"),
            Spec::Stats => out.extend_from_slice(b"stats\r\n"),
        }
    }
    out
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(33u8..127u8, 1..24)
}

fn spec_strategy() -> BoxedStrategy<Spec> {
    prop_oneof![
        proptest::collection::vec(key_strategy(), 1..4).prop_map(|keys| Spec::Get(keys, false)),
        proptest::collection::vec(key_strategy(), 1..3).prop_map(|keys| Spec::Get(keys, true)),
        (
            key_strategy(),
            0u32..1000,
            -5i64..100_000,
            0u8..2,
            proptest::collection::vec(0u8..=255, 0..64)
        )
            .prop_map(|(key, flags, exptime, nr, data)| Spec::Set {
                key,
                flags,
                exptime,
                noreply: nr == 1,
                data,
            }),
        (key_strategy(), 0u8..2).prop_map(|(k, nr)| Spec::Delete(k, nr == 1)),
        Just(Spec::Version),
        Just(Spec::Stats),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_chunking_is_invariant(
        specs in proptest::collection::vec(spec_strategy(), 1..8),
        f1 in 0.0f64..1.0,
        f2 in 0.0f64..1.0,
    ) {
        let stream = encode(&specs);
        let whole = run_split(&stream, &[]);
        prop_assert_eq!(whole.cmds.len(), specs.len());
        prop_assert!(whole.rejects.is_empty());
        let mut cuts = [
            (f1 * stream.len() as f64) as usize,
            (f2 * stream.len() as f64) as usize,
        ];
        cuts.sort_unstable();
        let split = run_split(&stream, &cuts);
        prop_assert_eq!(&split.cmds, &whole.cmds);
        prop_assert!(split.rejects.is_empty());
    }

    #[test]
    fn arbitrary_bytes_never_panic(
        junk in proptest::collection::vec(0u8..=255, 0..512),
        f in 0.0f64..1.0,
    ) {
        // Whole-buffer and split feeds: the parser must classify, not die.
        let mut h = Harness::default();
        let cut = (f * junk.len() as f64) as usize;
        h.feed(&junk[..cut]);
        h.feed(&junk[cut..]);
        // And it must make progress: anything left unconsumed is a strict
        // prefix needing more bytes, never the whole input when a newline
        // is present below the line-length cap.
        if !h.closed && h.buf.len() > MAX_LINE_LEN {
            prop_assert!(!h.buf.contains(&b'\n'));
        }
    }

    #[test]
    fn junk_after_valid_commands_errors_without_losing_them(
        specs in proptest::collection::vec(spec_strategy(), 1..4),
        junk_line in proptest::collection::vec(1u8..=255, 1..40),
    ) {
        let mut stream = encode(&specs);
        // A junk line that is not a valid verb (no spaces, prefix "zz").
        let mut junk: Vec<u8> = b"zz".to_vec();
        junk.extend(junk_line.iter().map(|&b| if b == b'\n' || b == b'\r' || b == b' ' { b'x' } else { b }));
        stream.extend_from_slice(&junk);
        stream.extend_from_slice(b"\r\n");
        let h = run_split(&stream, &[]);
        prop_assert_eq!(h.cmds.len(), specs.len());
        prop_assert_eq!(h.rejects.len(), 1);
        prop_assert_eq!(h.rejects[0], "ERROR\r\n");
    }
}
