//! End-to-end loopback sessions against a live in-process server, for
//! both runtime backends: protocol semantics, pipelining, error recovery,
//! and graceful shutdown with no leaked state.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use memlat_server::runtime::RuntimeKind;
use memlat_server::{start, ServerConfig, ServerHandle};

fn launch(kind: RuntimeKind) -> ServerHandle {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        shard: memlat_server::shard::ShardConfig {
            shards: 2,
            memory_bytes: 8 << 20,
            service_exp_mean: None,
            service_seed: 7,
        },
        runtime: kind,
    };
    start(&cfg).expect("server start")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        Self {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write");
    }

    fn line(&mut self) -> String {
        let mut s = String::new();
        self.reader.read_line(&mut s).expect("read line");
        s
    }

    fn exact(&mut self, n: usize) -> Vec<u8> {
        let mut buf = vec![0u8; n];
        self.reader.read_exact(&mut buf).expect("read exact");
        buf
    }
}

fn session(kind: RuntimeKind) {
    let handle = launch(kind);
    let mut c = Client::connect(&handle);

    c.send(b"version\r\n");
    assert!(c.line().starts_with("VERSION memlat-"));

    // Binary-safe value containing CRLF.
    c.send(b"set alpha 42 0 6\r\nab\r\ncd\r\n");
    assert_eq!(c.line(), "STORED\r\n");

    c.send(b"get alpha\r\n");
    assert_eq!(c.line(), "VALUE alpha 42 6\r\n");
    assert_eq!(c.exact(8), b"ab\r\ncd\r\n");
    assert_eq!(c.line(), "END\r\n");

    // gets exposes a CAS unique.
    c.send(b"gets alpha\r\n");
    let value_line = c.line();
    let parts: Vec<&str> = value_line.trim_end().split(' ').collect();
    assert_eq!(&parts[..4], &["VALUE", "alpha", "42", "6"]);
    assert!(parts[4].parse::<u64>().is_ok(), "{value_line:?}");
    let _ = c.exact(8);
    assert_eq!(c.line(), "END\r\n");

    // Miss produces just END; multiget mixes hits and misses in order.
    c.send(b"get nosuch\r\n");
    assert_eq!(c.line(), "END\r\n");
    c.send(b"set beta 0 0 1\r\nB\r\n");
    assert_eq!(c.line(), "STORED\r\n");
    c.send(b"get beta nosuch alpha\r\n");
    assert_eq!(c.line(), "VALUE beta 0 1\r\n");
    assert_eq!(c.exact(3), b"B\r\n");
    assert_eq!(c.line(), "VALUE alpha 42 6\r\n");
    let _ = c.exact(8);
    assert_eq!(c.line(), "END\r\n");

    // Pipelining: several commands in one write, responses in order.
    c.send(b"set g1 0 0 1 noreply\r\nX\r\nget g1\r\ndelete g1\r\nget g1\r\n");
    assert_eq!(c.line(), "VALUE g1 0 1\r\n");
    assert_eq!(c.exact(3), b"X\r\n");
    assert_eq!(c.line(), "END\r\n");
    assert_eq!(c.line(), "DELETED\r\n");
    assert_eq!(c.line(), "END\r\n");

    // delete of an absent key.
    c.send(b"delete never\r\n");
    assert_eq!(c.line(), "NOT_FOUND\r\n");

    // A protocol error keeps the connection usable.
    c.send(b"what is this\r\nget alpha\r\n");
    assert_eq!(c.line(), "ERROR\r\n");
    assert_eq!(c.line(), "VALUE alpha 42 6\r\n");
    let _ = c.exact(8);
    assert_eq!(c.line(), "END\r\n");

    // stats: spot-check classic and measurement fields.
    c.send(b"stats\r\n");
    let mut saw = std::collections::HashSet::new();
    loop {
        let line = c.line();
        if line == "END\r\n" {
            break;
        }
        let mut it = line.trim_end().splitn(3, ' ');
        assert_eq!(it.next(), Some("STAT"), "{line:?}");
        saw.insert(it.next().unwrap().to_string());
    }
    for field in [
        "uptime",
        "curr_connections",
        "cmd_get",
        "cmd_set",
        "get_hits",
        "get_misses",
        "curr_items",
        "bytes_read",
        "bytes_written",
        "peak_rss_bytes",
        "shard0_busy_ns",
        "shard1_queue_integral_ns",
    ] {
        assert!(saw.contains(field), "stats missing {field}");
    }

    // quit closes only this connection.
    c.send(b"quit\r\n");
    let mut rest = Vec::new();
    c.reader.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "unexpected bytes after quit: {rest:?}");

    // A fresh connection triggers graceful shutdown; server exits cleanly.
    let mut c2 = Client::connect(&handle);
    c2.send(b"shutdown\r\n");
    assert_eq!(c2.line(), "OK\r\n");
    handle.join().expect("clean shutdown");
}

#[test]
fn blocking_runtime_full_session() {
    session(RuntimeKind::Blocking);
}

#[test]
fn poll_runtime_full_session() {
    session(RuntimeKind::Poll);
}

#[test]
fn shutdown_drains_pipelined_work() {
    // Commands pipelined *before* shutdown must still be answered.
    let handle = launch(RuntimeKind::Blocking);
    let mut c = Client::connect(&handle);
    c.send(b"set k 0 0 1\r\nv\r\nget k\r\nshutdown\r\n");
    assert_eq!(c.line(), "STORED\r\n");
    assert_eq!(c.line(), "VALUE k 0 1\r\n");
    assert_eq!(c.exact(3), b"v\r\n");
    assert_eq!(c.line(), "END\r\n");
    assert_eq!(c.line(), "OK\r\n");
    handle.join().expect("clean shutdown");
}

#[test]
fn fatal_protocol_error_closes_connection_only() {
    let handle = launch(RuntimeKind::Blocking);
    let mut c = Client::connect(&handle);
    // Bad data chunk: framing lost, connection must die after the error.
    c.send(b"set k 0 0 1\r\ntoolong\r\n");
    assert!(c.line().starts_with("CLIENT_ERROR"));
    let mut rest = Vec::new();
    c.reader.read_to_end(&mut rest).expect("EOF");
    // Server itself survives.
    let mut c2 = Client::connect(&handle);
    c2.send(b"version\r\n");
    assert!(c2.line().starts_with("VERSION"));
    c2.send(b"shutdown\r\n");
    assert_eq!(c2.line(), "OK\r\n");
    handle.join().expect("clean shutdown");
}
