//! Pooled per-connection read/write buffers.
//!
//! Connections churn (the load generator opens dozens), and each one needs
//! a read-accumulation buffer and a write staging buffer. Instead of
//! allocating fresh vectors per connection, a small pool recycles them:
//! capacity survives the round trip, so steady-state serving does no
//! buffer allocation at all.

use std::sync::Mutex;

/// A recycling pool of byte buffers.
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    buf_capacity: usize,
    max_pooled: usize,
}

impl BufferPool {
    /// Creates a pool handing out buffers pre-sized to `buf_capacity`,
    /// retaining at most `max_pooled` returned buffers.
    #[must_use]
    pub fn new(buf_capacity: usize, max_pooled: usize) -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            buf_capacity,
            max_pooled,
        }
    }

    /// Takes a cleared buffer from the pool (or allocates one).
    #[must_use]
    pub fn acquire(&self) -> Vec<u8> {
        let mut free = self.free.lock().expect("pool poisoned");
        free.pop()
            .unwrap_or_else(|| Vec::with_capacity(self.buf_capacity))
    }

    /// Returns a buffer to the pool, keeping its capacity.
    pub fn release(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut free = self.free.lock().expect("pool poisoned");
        if free.len() < self.max_pooled && buf.capacity() > 0 {
            free.push(buf);
        }
    }

    /// Number of buffers currently pooled.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("pool poisoned").len()
    }
}

/// A read-accumulation buffer with a consumed prefix.
///
/// Incoming socket bytes are appended at the tail; the parser consumes
/// from the head. Consumed space is reclaimed lazily (only once it crosses
/// a threshold) so steady-state pipelined parsing does not memmove on
/// every command.
#[derive(Debug, Default)]
pub struct ReadBuf {
    data: Vec<u8>,
    start: usize,
}

const COMPACT_THRESHOLD: usize = 64 << 10;

impl ReadBuf {
    /// Wraps a (possibly pooled) backing vector.
    #[must_use]
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self { data, start: 0 }
    }

    /// Appends freshly read bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// The not-yet-consumed region.
    #[must_use]
    pub fn unread(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Marks `n` bytes consumed from the front of [`ReadBuf::unread`].
    pub fn consume(&mut self, n: usize) {
        self.start = (self.start + n).min(self.data.len());
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        } else if self.start > COMPACT_THRESHOLD {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Bytes awaiting consumption.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether nothing is awaiting consumption.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Surrenders the backing vector (for pool return).
    #[must_use]
    pub fn into_inner(self) -> Vec<u8> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let pool = BufferPool::new(1024, 2);
        let mut a = pool.acquire();
        assert!(a.capacity() >= 1024);
        a.extend_from_slice(b"junk");
        pool.release(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.acquire();
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn pool_caps_retention() {
        let pool = BufferPool::new(16, 1);
        pool.release(Vec::with_capacity(16));
        pool.release(Vec::with_capacity(16));
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn readbuf_consume_and_compact() {
        let mut rb = ReadBuf::from_vec(Vec::new());
        rb.extend_from_slice(b"hello world");
        assert_eq!(rb.unread(), b"hello world");
        rb.consume(6);
        assert_eq!(rb.unread(), b"world");
        rb.extend_from_slice(b"!");
        assert_eq!(rb.unread(), b"world!");
        rb.consume(6);
        assert!(rb.is_empty());
        assert_eq!(rb.unread(), b"");
    }
}
