//! `memlat-server` — a real memcached-protocol TCP server over the
//! `memlat-cache` slab store.
//!
//! This crate is the serving leg of the repo's three-way validation
//! (model ↔ simulator ↔ server): it speaks enough of the memcached text
//! protocol (`get`/`gets`/`set`/`delete`/`stats`/`version`/`quit`) to be
//! driven by standard tools, while its internals mirror the structure the
//! paper models — hash-partitioned stores with one worker each, whose
//! input channels are literal GI^X/M/1 queues. With `--service-exp-us`
//! the workers inject a known exponential per-key service time, making a
//! loopback measurement directly comparable to Theorem 1.
//!
//! Layering:
//!
//! * [`protocol`] — incremental parser + per-connection command driver;
//! * [`runtime`] — socket-driving backends behind the [`runtime::Runtime`]
//!   trait (blocking thread-per-connection, and a readiness-style poll
//!   loop);
//! * [`shard`] — the partitioned stores, worker threads and metrics;
//! * [`buffer`] — pooled per-connection read/write buffers.
//!
//! # Examples
//!
//! ```
//! use memlat_server::{start, ServerConfig};
//! use std::io::{Read, Write};
//!
//! let mut cfg = ServerConfig::default();
//! cfg.addr = "127.0.0.1:0".into(); // ephemeral port
//! cfg.shard.shards = 1;
//! let handle = start(&cfg).unwrap();
//! let mut c = std::net::TcpStream::connect(handle.addr()).unwrap();
//! c.write_all(b"set k 0 0 2\r\nhi\r\nget k\r\n").unwrap();
//! let mut buf = [0u8; 128];
//! let n = c.read(&mut buf).unwrap();
//! assert!(std::str::from_utf8(&buf[..n]).unwrap().starts_with("STORED"));
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod protocol;
pub mod runtime;
pub mod shard;
pub mod stats;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use buffer::BufferPool;
use runtime::{make_runtime, RuntimeKind};
use shard::{ShardConfig, ShardPool};

pub use shard::{fnv1a, shard_of};

/// Server version string reported by `version` and `stats`.
pub const VERSION: &str = "memlat-0.1.0";

/// Monotonic server clock: seconds since server start, as `f64` (matching
/// the external-time convention of `memlat-cache`).
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    origin: Instant,
}

impl Clock {
    /// Starts the clock now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }

    /// Seconds elapsed since the clock started.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

/// State shared by every connection and the runtime.
pub struct ServerShared {
    /// The shard pool.
    pub pool: ShardPool,
    /// The server clock.
    pub clock: Clock,
    /// Pooled connection buffers.
    pub buffers: BufferPool,
    /// Set once a graceful shutdown has been requested.
    pub shutdown: AtomicBool,
    /// Bound listen address (used to self-wake the accept loop).
    pub addr: SocketAddr,
    /// Open connections.
    pub curr_connections: AtomicU64,
    /// Connections ever accepted.
    pub total_connections: AtomicU64,
    /// Bytes read from clients.
    pub bytes_read: AtomicU64,
    /// Bytes written to clients.
    pub bytes_written: AtomicU64,
    /// `get`/`gets` commands parsed.
    pub cmd_get: AtomicU64,
    /// `set` commands parsed.
    pub cmd_set: AtomicU64,
    /// `delete` commands parsed.
    pub cmd_delete: AtomicU64,
}

impl ServerShared {
    /// Requests a graceful shutdown: stops accepting, drains connections,
    /// joins shard workers. Idempotent and callable from any thread.
    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake a blocking accept loop with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Shard layout and optional injected service law.
    pub shard: ShardConfig,
    /// Socket-driving backend.
    pub runtime: RuntimeKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:11211".into(),
            shard: ShardConfig::default(),
            runtime: RuntimeKind::Blocking,
        }
    }
}

/// A running server: join it or shut it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    thread: thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server state (counters, shard metrics).
    #[must_use]
    pub fn shared(&self) -> &Arc<ServerShared> {
        &self.shared
    }

    /// Blocks until the server exits (after a `shutdown` command or
    /// [`ServerShared::begin_shutdown`]).
    ///
    /// # Errors
    ///
    /// Propagates a fatal runtime error.
    pub fn join(self) -> std::io::Result<()> {
        match self.thread.join() {
            Ok(res) => res,
            Err(_) => Err(std::io::Error::other("server runtime panicked")),
        }
    }

    /// Triggers a graceful shutdown and waits for it to complete.
    ///
    /// # Errors
    ///
    /// Propagates a fatal runtime error.
    pub fn shutdown(self) -> std::io::Result<()> {
        self.shared.begin_shutdown();
        self.join()
    }
}

/// Binds and starts a server, returning once the listener is live.
///
/// # Errors
///
/// Propagates bind failures and invalid shard configuration.
pub fn start(cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let clock = Clock::new();
    let pool = ShardPool::new(&cfg.shard, clock)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e:?}")))?;
    let shared = Arc::new(ServerShared {
        pool,
        clock,
        buffers: BufferPool::new(16 << 10, 64),
        shutdown: AtomicBool::new(false),
        addr,
        curr_connections: AtomicU64::new(0),
        total_connections: AtomicU64::new(0),
        bytes_read: AtomicU64::new(0),
        bytes_written: AtomicU64::new(0),
        cmd_get: AtomicU64::new(0),
        cmd_set: AtomicU64::new(0),
        cmd_delete: AtomicU64::new(0),
    });
    let rt = make_runtime(cfg.runtime);
    let rt_shared = Arc::clone(&shared);
    let thread = thread::Builder::new()
        .name("memlat-runtime".into())
        .spawn(move || rt.run(listener, rt_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        thread,
    })
}
