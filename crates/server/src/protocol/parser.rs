//! Incremental, allocation-light parser for the memcached text protocol.
//!
//! The parser consumes a byte buffer that may hold any prefix of the
//! client's stream: half a line, one command, or many pipelined commands.
//! Each call inspects the front of the buffer and returns either a complete
//! command (borrowing key/data slices from the buffer), a protocol
//! rejection with the exact error line to send, or [`Parsed::Incomplete`]
//! when more bytes are needed. It never panics on malformed input — that
//! property is pinned by the property tests in
//! `tests/protocol_robustness.rs`.

/// Maximum key length accepted, per the memcached protocol (250 bytes).
pub const MAX_KEY_LEN: usize = 250;
/// Maximum accepted command-line length before the connection is dropped.
pub const MAX_LINE_LEN: usize = 8192;
/// Maximum accepted value length (1 MiB, memcached's classic default).
pub const MAX_VALUE_LEN: usize = 1 << 20;
/// Maximum number of keys in one multiget.
pub const MAX_GET_KEYS: usize = 1024;

/// One complete client command, borrowing from the read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command<'a> {
    /// `get`/`gets` — retrieval; `with_cas` distinguishes `gets`.
    Get {
        /// Requested keys, in client order (duplicates allowed).
        keys: Vec<&'a [u8]>,
        /// Whether the response must carry the CAS unique (the `gets` form).
        with_cas: bool,
    },
    /// `set <key> <flags> <exptime> <bytes> [noreply]` plus a data block.
    Set {
        /// Item key.
        key: &'a [u8],
        /// Opaque client flags, echoed back on `get`.
        flags: u32,
        /// Expiry in seconds relative to now; `0` = never, negative =
        /// already expired. (The 30-day absolute-timestamp rule of real
        /// memcached is intentionally not implemented.)
        exptime: i64,
        /// Whether the client suppressed the reply.
        noreply: bool,
        /// The value bytes (binary-safe; length came from the command line).
        data: &'a [u8],
    },
    /// `delete <key> [noreply]`.
    Delete {
        /// Item key.
        key: &'a [u8],
        /// Whether the client suppressed the reply.
        noreply: bool,
    },
    /// `stats` — server counters.
    Stats,
    /// `version`.
    Version,
    /// `quit` — close this connection.
    Quit,
    /// `shutdown` — non-standard admin command: graceful server stop.
    Shutdown,
}

/// Outcome of one parse attempt against the front of the read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed<'a> {
    /// A complete command occupying `consumed` bytes of the buffer.
    Cmd {
        /// The parsed command.
        cmd: Command<'a>,
        /// Bytes to drop from the front of the buffer.
        consumed: usize,
    },
    /// A protocol violation: send `reply`, drop `consumed` bytes, and close
    /// the connection when `close` is set (framing is unrecoverable).
    Reject {
        /// Full error line to send, `\r\n` included.
        reply: &'static str,
        /// Bytes to drop from the front of the buffer.
        consumed: usize,
        /// Whether the connection must be closed after replying.
        close: bool,
    },
    /// The buffer holds no complete command yet.
    Incomplete,
}

const ERR_GENERIC: &str = "ERROR\r\n";
const ERR_FORMAT: &str = "CLIENT_ERROR bad command line format\r\n";
const ERR_KEY: &str = "CLIENT_ERROR key too long or malformed\r\n";
const ERR_CHUNK: &str = "CLIENT_ERROR bad data chunk\r\n";
const ERR_TOO_LARGE: &str = "CLIENT_ERROR object too large for cache\r\n";
const ERR_LINE: &str = "CLIENT_ERROR command line too long\r\n";

/// Parses one command from the front of `buf`.
///
/// Lines are terminated by `\n`; a preceding `\r` is stripped (so both
/// strict `\r\n` clients and bare-`\n` tools like `nc` without `-C` work).
/// Data blocks, which are binary-safe, still require the strict `\r\n`
/// terminator mandated by the protocol.
#[must_use]
pub fn parse(buf: &[u8]) -> Parsed<'_> {
    let Some(nl) = buf.iter().take(MAX_LINE_LEN + 1).position(|&b| b == b'\n') else {
        if buf.len() > MAX_LINE_LEN {
            // No newline within the limit: the line can never be accepted.
            return Parsed::Reject {
                reply: ERR_LINE,
                consumed: buf.len(),
                close: true,
            };
        }
        return Parsed::Incomplete;
    };
    let after_line = nl + 1;
    let mut line = &buf[..nl];
    if let [head @ .., b'\r'] = line {
        line = head;
    }

    let mut tokens = line.split(|&b| b == b' ').filter(|t| !t.is_empty());
    let Some(verb) = tokens.next() else {
        return Parsed::Reject {
            reply: ERR_GENERIC,
            consumed: after_line,
            close: false,
        };
    };

    match verb {
        b"get" | b"gets" => parse_get(tokens, verb == b"gets", after_line),
        b"set" => parse_set(buf, tokens, after_line),
        b"delete" => parse_delete(tokens, after_line),
        b"stats" => Parsed::Cmd {
            cmd: Command::Stats,
            consumed: after_line,
        },
        b"version" => Parsed::Cmd {
            cmd: Command::Version,
            consumed: after_line,
        },
        b"quit" => Parsed::Cmd {
            cmd: Command::Quit,
            consumed: after_line,
        },
        b"shutdown" => Parsed::Cmd {
            cmd: Command::Shutdown,
            consumed: after_line,
        },
        _ => Parsed::Reject {
            reply: ERR_GENERIC,
            consumed: after_line,
            close: false,
        },
    }
}

fn valid_key(key: &[u8]) -> bool {
    !key.is_empty() && key.len() <= MAX_KEY_LEN && key.iter().all(|&b| b > 32 && b != 127)
}

fn parse_get<'a, I>(tokens: I, with_cas: bool, consumed: usize) -> Parsed<'a>
where
    I: Iterator<Item = &'a [u8]>,
{
    let mut keys = Vec::new();
    for key in tokens {
        if !valid_key(key) {
            return Parsed::Reject {
                reply: ERR_KEY,
                consumed,
                close: false,
            };
        }
        if keys.len() == MAX_GET_KEYS {
            return Parsed::Reject {
                reply: ERR_FORMAT,
                consumed,
                close: false,
            };
        }
        keys.push(key);
    }
    if keys.is_empty() {
        return Parsed::Reject {
            reply: ERR_GENERIC,
            consumed,
            close: false,
        };
    }
    Parsed::Cmd {
        cmd: Command::Get { keys, with_cas },
        consumed,
    }
}

fn parse_set<'a, I>(buf: &'a [u8], mut tokens: I, after_line: usize) -> Parsed<'a>
where
    I: Iterator<Item = &'a [u8]>,
{
    let (Some(key), Some(flags), Some(exptime), Some(bytes)) =
        (tokens.next(), tokens.next(), tokens.next(), tokens.next())
    else {
        return Parsed::Reject {
            reply: ERR_FORMAT,
            consumed: after_line,
            close: false,
        };
    };
    let noreply = match tokens.next() {
        None => false,
        Some(b"noreply") if tokens.next().is_none() => true,
        Some(_) => {
            return Parsed::Reject {
                reply: ERR_FORMAT,
                consumed: after_line,
                close: false,
            }
        }
    };
    let (Some(flags), Some(exptime), Some(len)) = (
        parse_u64(flags).and_then(|v| u32::try_from(v).ok()),
        parse_i64(exptime),
        parse_u64(bytes).and_then(|v| usize::try_from(v).ok()),
    ) else {
        return Parsed::Reject {
            reply: ERR_FORMAT,
            consumed: after_line,
            close: false,
        };
    };
    if !valid_key(key) {
        return Parsed::Reject {
            reply: ERR_KEY,
            consumed: after_line,
            close: false,
        };
    }
    if len > MAX_VALUE_LEN {
        // The framing would require swallowing an unbounded data block;
        // reject and drop the connection instead.
        return Parsed::Reject {
            reply: ERR_TOO_LARGE,
            consumed: buf.len(),
            close: true,
        };
    }
    let frame_end = after_line + len + 2;
    if buf.len() < frame_end {
        return Parsed::Incomplete;
    }
    if &buf[after_line + len..frame_end] != b"\r\n" {
        // The stated length does not line up with a terminator: framing is
        // lost, so the connection cannot be safely resynchronized.
        return Parsed::Reject {
            reply: ERR_CHUNK,
            consumed: frame_end,
            close: true,
        };
    }
    Parsed::Cmd {
        cmd: Command::Set {
            key,
            flags,
            exptime,
            noreply,
            data: &buf[after_line..after_line + len],
        },
        consumed: frame_end,
    }
}

fn parse_delete<'a, I>(mut tokens: I, consumed: usize) -> Parsed<'a>
where
    I: Iterator<Item = &'a [u8]>,
{
    let Some(key) = tokens.next() else {
        return Parsed::Reject {
            reply: ERR_FORMAT,
            consumed,
            close: false,
        };
    };
    let noreply = match tokens.next() {
        None => false,
        Some(b"noreply") if tokens.next().is_none() => true,
        Some(_) => {
            return Parsed::Reject {
                reply: ERR_FORMAT,
                consumed,
                close: false,
            }
        }
    };
    if !valid_key(key) {
        return Parsed::Reject {
            reply: ERR_KEY,
            consumed,
            close: false,
        };
    }
    Parsed::Cmd {
        cmd: Command::Delete { key, noreply },
        consumed,
    }
}

fn parse_u64(tok: &[u8]) -> Option<u64> {
    if tok.is_empty() || tok.len() > 20 {
        return None;
    }
    let mut v: u64 = 0;
    for &b in tok {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    Some(v)
}

fn parse_i64(tok: &[u8]) -> Option<i64> {
    let (neg, digits) = match tok {
        [b'-', rest @ ..] => (true, rest),
        _ => (false, tok),
    };
    let v = parse_u64(digits)?;
    let v = i64::try_from(v).ok()?;
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_get() {
        match parse(b"get foo\r\nrest") {
            Parsed::Cmd {
                cmd: Command::Get { keys, with_cas },
                consumed,
            } => {
                assert_eq!(keys, vec![b"foo".as_slice()]);
                assert!(!with_cas);
                assert_eq!(consumed, 9);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn multiget_and_gets() {
        match parse(b"gets a bb ccc\n") {
            Parsed::Cmd {
                cmd: Command::Get { keys, with_cas },
                ..
            } => {
                assert_eq!(keys.len(), 3);
                assert!(with_cas);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn set_roundtrip_binary_value() {
        let frame = b"set k 7 0 4 noreply\r\nA\r\nB\r\n";
        match parse(frame) {
            Parsed::Cmd {
                cmd:
                    Command::Set {
                        key,
                        flags,
                        exptime,
                        noreply,
                        data,
                    },
                consumed,
            } => {
                assert_eq!(key, b"k");
                assert_eq!(flags, 7);
                assert_eq!(exptime, 0);
                assert!(noreply);
                assert_eq!(data, b"A\r\nB");
                assert_eq!(consumed, frame.len());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn set_waits_for_data() {
        assert_eq!(parse(b"set k 0 0 10\r\nabc"), Parsed::Incomplete);
        assert_eq!(parse(b"set k 0 0 "), Parsed::Incomplete);
    }

    #[test]
    fn bad_chunk_terminator_closes() {
        match parse(b"set k 0 0 2\r\nabcd\r\n") {
            Parsed::Reject { reply, close, .. } => {
                assert!(reply.starts_with("CLIENT_ERROR"));
                assert!(close);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn oversized_key_rejected() {
        let key = vec![b'x'; MAX_KEY_LEN + 1];
        let mut line = b"get ".to_vec();
        line.extend_from_slice(&key);
        line.extend_from_slice(b"\r\n");
        match parse(&line) {
            Parsed::Reject { reply, close, .. } => {
                assert!(reply.starts_with("CLIENT_ERROR"));
                assert!(!close);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unknown_verb_is_error() {
        match parse(b"frobnicate now\r\n") {
            Parsed::Reject { reply, .. } => assert_eq!(reply, "ERROR\r\n"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn negative_exptime_parses() {
        match parse(b"set k 0 -1 1\r\nx\r\n") {
            Parsed::Cmd {
                cmd: Command::Set { exptime, .. },
                ..
            } => assert_eq!(exptime, -1),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
