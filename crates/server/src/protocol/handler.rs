//! Per-connection command execution: eager dispatch, in-order replies.
//!
//! The driver is the connection's state machine, deliberately split from
//! I/O so both runtimes share it. Its reader side parses as many pipelined
//! commands as the buffer holds and dispatches every shard job
//! *immediately* — it never waits for a reply before parsing the next
//! command. This matters for the physics of the system: back-to-back
//! requests must queue in the shard channel (the modeled GI^X/M/1 queue),
//! not in the socket buffer behind a synchronous handler. The writer side
//! reassembles completions — which arrive out of order across shards — and
//! emits responses in strict command order via a ticket sequence.

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};

use memlat_cache::Bytes;

use crate::buffer::ReadBuf;
use crate::protocol::parser::{parse, Command, Parsed};
use crate::shard::{shard_of, ConnEvent, Job, JobReply, ShardOp, ShardReply};
use crate::{stats, ServerShared};

enum PlanKind {
    /// Response bytes were computed inline (stats, version, errors, ...).
    Local(Vec<u8>),
    /// A `get`/`gets` split into `parts` shard jobs.
    Get {
        parts: u32,
        with_cas: bool,
        keys: Vec<Vec<u8>>,
        /// For each requested key: (part index, index within that part).
        order: Vec<(u32, u32)>,
    },
    /// A single-shard `set`.
    Set { noreply: bool },
    /// A single-shard `delete`.
    Delete { noreply: bool },
}

struct Plan {
    ticket: u64,
    kind: PlanKind,
}

/// Connection state machine shared by both runtimes.
pub struct ConnDriver {
    shared: Arc<ServerShared>,
    read: ReadBuf,
    out: Vec<u8>,
    plans: VecDeque<Plan>,
    stash: HashMap<(u64, u32), ShardReply>,
    event_tx: mpsc::Sender<ConnEvent>,
    next_ticket: u64,
    closing: bool,
    reader_done: bool,
}

impl ConnDriver {
    /// Creates a driver; `event_tx` is the sender cloned into shard jobs.
    #[must_use]
    pub fn new(shared: Arc<ServerShared>, event_tx: mpsc::Sender<ConnEvent>) -> Self {
        let read = ReadBuf::from_vec(shared.buffers.acquire());
        let out = shared.buffers.acquire();
        Self {
            shared,
            read,
            out,
            plans: VecDeque::new(),
            stash: HashMap::new(),
            event_tx,
            next_ticket: 0,
            closing: false,
            reader_done: false,
        }
    }

    /// Whether the reader side should stop accepting input.
    #[must_use]
    pub fn closing(&self) -> bool {
        self.closing
    }

    /// Marks the input side finished (EOF, error, or server shutdown).
    pub fn begin_drain(&mut self) {
        self.closing = true;
        self.reader_done = true;
    }

    /// Whether every pending response has been assembled into the output
    /// buffer and no more input will arrive.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.reader_done && self.plans.is_empty()
    }

    /// Whether responses are still owed (for writer-side wakeups).
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !self.plans.is_empty()
    }

    /// Feeds freshly read socket bytes through the parser, dispatching
    /// shard jobs eagerly for every complete pipelined command.
    pub fn on_bytes(&mut self, bytes: &[u8]) {
        self.read.extend_from_slice(bytes);
        self.pump_parser();
    }

    /// Integrates a completion event from a shard worker.
    pub fn handle_event(&mut self, ev: ConnEvent) {
        if let ConnEvent::Reply(JobReply {
            ticket,
            part,
            reply,
        }) = ev
        {
            self.stash.insert((ticket, part), reply);
        }
    }

    /// Assembles every completable response and surrenders the output
    /// bytes accumulated so far.
    pub fn take_output(&mut self) -> Vec<u8> {
        self.assemble();
        std::mem::replace(&mut self.out, self.shared.buffers.acquire())
    }

    fn pump_parser(&mut self) {
        while !self.closing {
            // Temporarily move the read buffer out so the parsed command
            // may borrow it while the rest of `self` stays mutable.
            let read = std::mem::take(&mut self.read);
            let consumed = match parse(read.unread()) {
                Parsed::Incomplete => 0,
                Parsed::Reject {
                    reply,
                    consumed,
                    close,
                } => {
                    self.push_plan(PlanKind::Local(reply.as_bytes().to_vec()));
                    if close {
                        self.closing = true;
                    }
                    consumed
                }
                Parsed::Cmd { cmd, consumed } => {
                    self.execute(&cmd);
                    consumed
                }
            };
            self.read = read;
            if consumed == 0 {
                break;
            }
            self.read.consume(consumed);
        }
    }

    fn push_plan(&mut self, kind: PlanKind) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.plans.push_back(Plan { ticket, kind });
        ticket
    }

    fn execute(&mut self, cmd: &Command<'_>) {
        match cmd {
            Command::Get { keys, with_cas } => {
                self.shared.cmd_get.fetch_add(1, Ordering::Relaxed);
                let shards = self.shared.pool.shards();
                let mut part_of_shard: HashMap<usize, u32> = HashMap::new();
                let mut parts: Vec<(usize, Vec<Vec<u8>>)> = Vec::new();
                let mut order = Vec::with_capacity(keys.len());
                let mut owned_keys = Vec::with_capacity(keys.len());
                for key in keys {
                    let shard = shard_of(key, shards);
                    let part = *part_of_shard.entry(shard).or_insert_with(|| {
                        parts.push((shard, Vec::new()));
                        (parts.len() - 1) as u32
                    });
                    let bucket = &mut parts[part as usize].1;
                    order.push((part, bucket.len() as u32));
                    bucket.push(key.to_vec());
                    owned_keys.push(key.to_vec());
                }
                let n_parts = parts.len() as u32;
                let ticket = self.push_plan(PlanKind::Get {
                    parts: n_parts,
                    with_cas: *with_cas,
                    keys: owned_keys,
                    order,
                });
                for (part, (shard, part_keys)) in parts.into_iter().enumerate() {
                    self.shared.pool.dispatch(
                        shard,
                        Job {
                            op: ShardOp::GetMany(part_keys),
                            ticket,
                            part: part as u32,
                            enqueued: 0.0,
                            reply: self.event_tx.clone(),
                        },
                    );
                }
            }
            Command::Set {
                key,
                flags,
                exptime,
                noreply,
                data,
            } => {
                self.shared.cmd_set.fetch_add(1, Ordering::Relaxed);
                let shard = shard_of(key, self.shared.pool.shards());
                let ticket = self.push_plan(PlanKind::Set { noreply: *noreply });
                self.shared.pool.dispatch(
                    shard,
                    Job {
                        op: ShardOp::Set {
                            key: key.to_vec(),
                            flags: *flags,
                            exptime: *exptime,
                            data: Bytes::copy_from_slice(data),
                        },
                        ticket,
                        part: 0,
                        enqueued: 0.0,
                        reply: self.event_tx.clone(),
                    },
                );
            }
            Command::Delete { key, noreply } => {
                self.shared.cmd_delete.fetch_add(1, Ordering::Relaxed);
                let shard = shard_of(key, self.shared.pool.shards());
                let ticket = self.push_plan(PlanKind::Delete { noreply: *noreply });
                self.shared.pool.dispatch(
                    shard,
                    Job {
                        op: ShardOp::Delete(key.to_vec()),
                        ticket,
                        part: 0,
                        enqueued: 0.0,
                        reply: self.event_tx.clone(),
                    },
                );
            }
            Command::Stats => {
                let body = stats::render_stats(&self.shared);
                self.push_plan(PlanKind::Local(body));
            }
            Command::Version => {
                let line = format!("VERSION {}\r\n", crate::VERSION).into_bytes();
                self.push_plan(PlanKind::Local(line));
            }
            Command::Quit => {
                self.push_plan(PlanKind::Local(Vec::new()));
                self.closing = true;
            }
            Command::Shutdown => {
                self.push_plan(PlanKind::Local(b"OK\r\n".to_vec()));
                self.closing = true;
                self.shared.begin_shutdown();
            }
        }
    }

    fn assemble(&mut self) {
        while let Some(front) = self.plans.front() {
            let ticket = front.ticket;
            let ready = match &front.kind {
                PlanKind::Local(_) => true,
                PlanKind::Get { parts, .. } => {
                    (0..*parts).all(|p| self.stash.contains_key(&(ticket, p)))
                }
                PlanKind::Set { .. } | PlanKind::Delete { .. } => {
                    self.stash.contains_key(&(ticket, 0))
                }
            };
            if !ready {
                break;
            }
            let plan = self.plans.pop_front().expect("front checked");
            match plan.kind {
                PlanKind::Local(bytes) => self.out.extend_from_slice(&bytes),
                PlanKind::Get {
                    parts,
                    with_cas,
                    keys,
                    order,
                } => {
                    let mut replies = Vec::with_capacity(parts as usize);
                    for p in 0..parts {
                        match self.stash.remove(&(ticket, p)) {
                            Some(ShardReply::Values(vals)) => replies.push(vals),
                            _ => replies.push(Vec::new()),
                        }
                    }
                    for (key, (part, within)) in keys.iter().zip(&order) {
                        let slot = replies
                            .get(*part as usize)
                            .and_then(|vals| vals.get(*within as usize));
                        if let Some(Some(v)) = slot {
                            self.out.extend_from_slice(b"VALUE ");
                            self.out.extend_from_slice(key);
                            if with_cas {
                                let _ =
                                    write!(self.out, " {} {} {}\r\n", v.flags, v.data.len(), v.cas);
                            } else {
                                let _ = write!(self.out, " {} {}\r\n", v.flags, v.data.len());
                            }
                            self.out.extend_from_slice(&v.data);
                            self.out.extend_from_slice(b"\r\n");
                        }
                    }
                    self.out.extend_from_slice(b"END\r\n");
                }
                PlanKind::Set { noreply } => {
                    let reply = self.stash.remove(&(ticket, 0));
                    if !noreply {
                        match reply {
                            Some(ShardReply::Stored(Ok(()))) => {
                                self.out.extend_from_slice(b"STORED\r\n");
                            }
                            Some(ShardReply::Stored(Err(line))) => {
                                self.out.extend_from_slice(line.as_bytes());
                            }
                            _ => self.out.extend_from_slice(b"SERVER_ERROR internal\r\n"),
                        }
                    }
                }
                PlanKind::Delete { noreply } => {
                    let reply = self.stash.remove(&(ticket, 0));
                    if !noreply {
                        match reply {
                            Some(ShardReply::Deleted(true)) => {
                                self.out.extend_from_slice(b"DELETED\r\n");
                            }
                            _ => self.out.extend_from_slice(b"NOT_FOUND\r\n"),
                        }
                    }
                }
            }
        }
    }
}

impl Drop for ConnDriver {
    fn drop(&mut self) {
        let read = std::mem::take(&mut self.read);
        self.shared.buffers.release(read.into_inner());
        self.shared.buffers.release(std::mem::take(&mut self.out));
    }
}
