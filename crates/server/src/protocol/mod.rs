//! The memcached text protocol: wire parsing and command execution.

pub mod handler;
pub mod parser;
