//! Hash-partitioned store shards, one worker thread each.
//!
//! Connections never touch a store directly: the reader side of a
//! connection parses a command, picks the shard by FNV-1a hash of the key
//! and enqueues a [`Job`] on that shard's channel. There is no global lock
//! on this path — each shard owns its [`Store`] exclusively and the only
//! shared state per shard is its metrics block. The channel itself is the
//! physical realization of the GI^X/M/1 queue the latency model describes:
//! jobs wait in it while the worker serves earlier batches.
//!
//! For model-conformance runs the worker can *inject* an exponential
//! service time per key (wall-clock deadline waiting, not CPU burning, so
//! several shards plus a load generator coexist on a single core). The
//! injected law makes the service-time distribution known, which is what
//! lets a measured loopback run be compared against Theorem 1.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use memlat_cache::{Bytes, Lookup, Store, StoreConfig, StoreError};
use memlat_dist::Exponential;
use rand::{rngs::StdRng, SeedableRng};

use crate::Clock;

/// FNV-1a hash of a byte key (stable across runs; shared with the load
/// generator so both sides agree on key → shard placement).
#[must_use]
pub fn fnv1a(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shard index for `key` among `shards` partitions.
#[must_use]
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    (fnv1a(key) % shards.max(1) as u64) as usize
}

/// Configuration of the shard pool.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of hash partitions (worker threads).
    pub shards: usize,
    /// Slab memory per shard, in bytes.
    pub memory_bytes: usize,
    /// Optional injected per-key service time: mean of an exponential law,
    /// in seconds. `None` serves at native speed.
    pub service_exp_mean: Option<f64>,
    /// Seed for the per-shard service-time RNG streams.
    pub service_seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            memory_bytes: 64 << 20,
            service_exp_mean: None,
            service_seed: 0x5eed,
        }
    }
}

/// A stored value as returned to the protocol layer.
#[derive(Debug, Clone)]
pub struct OwnedValue {
    /// Client flags recorded at `set` time.
    pub flags: u32,
    /// CAS unique (monotone per shard).
    pub cas: u64,
    /// The payload.
    pub data: Bytes,
}

/// The store operation carried by a job.
#[derive(Debug)]
pub enum ShardOp {
    /// Look up a batch of keys (all belonging to this shard).
    GetMany(Vec<Vec<u8>>),
    /// Store one key.
    Set {
        /// Item key.
        key: Vec<u8>,
        /// Client flags to echo back on retrieval.
        flags: u32,
        /// Relative expiry seconds (`0` never, negative = already expired).
        exptime: i64,
        /// Value bytes.
        data: Bytes,
    },
    /// Delete one key.
    Delete(Vec<u8>),
}

impl ShardOp {
    /// Number of key accesses the operation performs (for μ̂ accounting).
    #[must_use]
    pub fn key_count(&self) -> u64 {
        match self {
            ShardOp::GetMany(keys) => keys.len() as u64,
            ShardOp::Set { .. } | ShardOp::Delete(_) => 1,
        }
    }
}

/// A worker's answer to one job.
#[derive(Debug)]
pub enum ShardReply {
    /// Per-key results aligned with the request's key order.
    Values(Vec<Option<OwnedValue>>),
    /// `set` outcome: `Ok` or the full error line to send.
    Stored(Result<(), &'static str>),
    /// `delete` outcome: whether the key existed.
    Deleted(bool),
}

/// A completed job flowing back to the connection's writer side.
#[derive(Debug)]
pub struct JobReply {
    /// Ticket of the command this job belongs to.
    pub ticket: u64,
    /// Part index within the command (multigets split across shards).
    pub part: u32,
    /// The result.
    pub reply: ShardReply,
}

/// Events delivered to a connection's writer side.
#[derive(Debug)]
pub enum ConnEvent {
    /// A shard finished one part of a command.
    Reply(JobReply),
    /// The reader side changed connection state (new plans, or EOF).
    Wake,
}

/// One queued unit of shard work.
#[derive(Debug)]
pub struct Job {
    /// The operation.
    pub op: ShardOp,
    /// Command ticket (per connection, monotone).
    pub ticket: u64,
    /// Part index within the command.
    pub part: u32,
    /// Dispatch timestamp from the server [`Clock`], for sojourn metrics.
    pub enqueued: f64,
    /// Where to deliver the reply.
    pub reply: mpsc::Sender<ConnEvent>,
}

enum WorkerMsg {
    Work(Box<Job>),
    Halt,
}

#[derive(Debug, Default)]
struct Gauge {
    last: f64,
    inflight: u64,
    integral: f64,
}

impl Gauge {
    fn advance(&mut self, now: f64) {
        if now > self.last {
            self.integral += self.inflight as f64 * (now - self.last);
            self.last = now;
        }
    }
}

/// Per-shard counters and the jobs-in-system gauge.
///
/// The gauge integrates the number of in-flight jobs (dispatched but not
/// completed) over time; divided by the observation window it yields the
/// time-average N̄ that Little's law relates to λ·E\[T\].
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Keys touched by completed jobs.
    pub keys_served: AtomicU64,
    /// Wall-clock nanoseconds the worker spent processing jobs (includes
    /// injected service time); `busy_ns / keys_served` estimates `1/μ̂`.
    pub busy_ns: AtomicU64,
    /// Completed jobs (batches).
    pub jobs: AtomicU64,
    /// Summed dispatch→completion sojourn, nanoseconds.
    pub sojourn_ns: AtomicU64,
    /// Store hits (mirrored from the worker-owned store).
    pub hits: AtomicU64,
    /// Store misses, including lookups of never-seen keys.
    pub misses: AtomicU64,
    /// Successful sets.
    pub sets: AtomicU64,
    /// Successful deletes.
    pub deletes: AtomicU64,
    /// LRU evictions.
    pub evictions: AtomicU64,
    /// Lazy-expiry reclaims.
    pub expired: AtomicU64,
    /// Live items.
    pub curr_items: AtomicU64,
    gauge: Mutex<Gauge>,
}

impl ShardMetrics {
    fn on_dispatch(&self, now: f64) {
        let mut g = self.gauge.lock().expect("gauge poisoned");
        g.advance(now);
        g.inflight += 1;
    }

    fn on_complete(&self, now: f64) {
        let mut g = self.gauge.lock().expect("gauge poisoned");
        g.advance(now);
        g.inflight = g.inflight.saturating_sub(1);
    }

    /// Jobs-in-system time integral (job·seconds) up to `now`.
    #[must_use]
    pub fn queue_integral(&self, now: f64) -> f64 {
        let mut g = self.gauge.lock().expect("gauge poisoned");
        g.advance(now);
        g.integral
    }

    /// Currently in-flight jobs.
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.gauge.lock().expect("gauge poisoned").inflight
    }
}

struct KeyMeta {
    id: u64,
    flags: u32,
    cas: u64,
}

/// Injected exponential per-key service time.
///
/// Sleeps the bulk of the drawn duration and yield-spins only the final
/// stretch: on a single-core host the load generator and every shard
/// worker share that core, so a worker that spins its whole service time
/// starves response delivery (and the client's RTT timestamps) whenever
/// the summed shard utilization approaches one core. Sleeping leaves the
/// core free; the short spin tail keeps the achieved duration close to
/// the drawn one despite timer slack. The measured `busy_ns` absorbs
/// whatever remains, and conformance runs evaluate the model at the
/// measured μ̂ rather than the nominal one, so residual oversleep biases
/// the comparison nothing.
struct ServiceInjector {
    law: Exponential,
    rng: StdRng,
}

/// How much of the injected wait is yield-spun instead of slept, to
/// cover typical Linux timer slack (~50 µs) without burning the core.
const SPIN_TAIL: Duration = Duration::from_micros(150);

impl ServiceInjector {
    fn wait(&mut self) {
        let d = self.law.sample_with(&mut self.rng);
        let deadline = Instant::now() + Duration::from_secs_f64(d);
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let left = deadline - now;
            if left > SPIN_TAIL {
                thread::sleep(left - SPIN_TAIL);
            } else {
                thread::yield_now();
            }
        }
    }
}

/// The pool of shard workers.
pub struct ShardPool {
    senders: Vec<mpsc::Sender<WorkerMsg>>,
    metrics: Vec<Arc<ShardMetrics>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    clock: Clock,
}

impl ShardPool {
    /// Spawns one worker per shard.
    ///
    /// # Errors
    ///
    /// Propagates store-configuration errors and injected-law parameter
    /// errors as a [`StoreError`].
    pub fn new(cfg: &ShardConfig, clock: Clock) -> Result<Self, StoreError> {
        let shards = cfg.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut metrics = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for j in 0..shards {
            let store = Store::new(StoreConfig::with_memory(cfg.memory_bytes))?;
            let injector = match cfg.service_exp_mean {
                Some(mean) if mean > 0.0 => Some(ServiceInjector {
                    law: Exponential::new(1.0 / mean)
                        .map_err(|e| StoreError::Config(e.to_string()))?,
                    rng: StdRng::seed_from_u64(cfg.service_seed ^ (j as u64).wrapping_mul(0x9e37)),
                }),
                _ => None,
            };
            let m = Arc::new(ShardMetrics::default());
            let (tx, rx) = mpsc::channel();
            let worker_metrics = Arc::clone(&m);
            let handle = thread::Builder::new()
                .name(format!("memlat-shard-{j}"))
                .spawn(move || worker_loop(&rx, store, clock, &worker_metrics, injector))
                .expect("spawn shard worker");
            senders.push(tx);
            metrics.push(m);
            workers.push(handle);
        }
        Ok(Self {
            senders,
            metrics,
            workers: Mutex::new(workers),
            clock,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Per-shard metrics blocks.
    #[must_use]
    pub fn metrics(&self) -> &[Arc<ShardMetrics>] {
        &self.metrics
    }

    /// Enqueues a job on `shard`, stamping the queue gauge.
    pub fn dispatch(&self, shard: usize, mut job: Job) {
        let now = self.clock.now();
        job.enqueued = now;
        self.metrics[shard].on_dispatch(now);
        // A send can only fail after shutdown; the conn is closing anyway.
        let _ = self.senders[shard].send(WorkerMsg::Work(Box::new(job)));
    }

    /// Stops all workers and joins them. Idempotent.
    pub fn shutdown(&self) {
        for tx in &self.senders {
            let _ = tx.send(WorkerMsg::Halt);
        }
        let mut workers = self.workers.lock().expect("workers poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    rx: &mpsc::Receiver<WorkerMsg>,
    mut store: Store,
    clock: Clock,
    metrics: &ShardMetrics,
    mut injector: Option<ServiceInjector>,
) {
    let mut interner: HashMap<Vec<u8>, KeyMeta> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut next_cas: u64 = 1;
    let mut extra_misses: u64 = 0;
    while let Ok(WorkerMsg::Work(job)) = rx.recv() {
        let t0 = Instant::now();
        let reply = match job.op {
            ShardOp::GetMany(ref keys) => {
                let mut out = Vec::with_capacity(keys.len());
                for key in keys {
                    if let Some(inj) = injector.as_mut() {
                        inj.wait();
                    }
                    let hit = interner.get(key.as_slice()).and_then(|meta| {
                        match store.get(meta.id, clock.now()) {
                            Lookup::Hit {
                                payload: Some(data),
                                ..
                            } => Some(OwnedValue {
                                flags: meta.flags,
                                cas: meta.cas,
                                data,
                            }),
                            _ => None,
                        }
                    });
                    if hit.is_none() && !interner.contains_key(key.as_slice()) {
                        extra_misses += 1;
                    }
                    out.push(hit);
                }
                ShardReply::Values(out)
            }
            ShardOp::Set {
                ref key,
                flags,
                exptime,
                ref data,
            } => {
                let now = clock.now();
                let expires_at = match exptime {
                    0 => None,
                    t if t < 0 => Some(-1.0),
                    t => Some(now + t as f64),
                };
                let id = match interner.get(key.as_slice()) {
                    Some(meta) => meta.id,
                    None => {
                        let id = next_id;
                        next_id += 1;
                        id
                    }
                };
                match store.set_with_payload(id, data.clone(), expires_at, now) {
                    Ok(()) => {
                        let cas = next_cas;
                        next_cas += 1;
                        interner.insert(key.clone(), KeyMeta { id, flags, cas });
                        ShardReply::Stored(Ok(()))
                    }
                    Err(StoreError::ItemTooLarge { .. }) => {
                        ShardReply::Stored(Err("SERVER_ERROR object too large for cache\r\n"))
                    }
                    Err(_) => {
                        ShardReply::Stored(Err("SERVER_ERROR out of memory storing object\r\n"))
                    }
                }
            }
            ShardOp::Delete(ref key) => {
                let existed = interner
                    .get(key.as_slice())
                    .is_some_and(|meta| store.delete(meta.id));
                if existed {
                    interner.remove(key.as_slice());
                }
                ShardReply::Deleted(existed)
            }
        };

        let keys = job.op.key_count();
        metrics
            .busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        metrics.keys_served.fetch_add(keys, Ordering::Relaxed);
        metrics.jobs.fetch_add(1, Ordering::Relaxed);
        let done = clock.now();
        metrics.on_complete(done);
        let sojourn = ((done - job.enqueued).max(0.0) * 1e9) as u64;
        metrics.sojourn_ns.fetch_add(sojourn, Ordering::Relaxed);

        let st = store.stats();
        metrics.hits.store(st.hits, Ordering::Relaxed);
        metrics
            .misses
            .store(st.misses + extra_misses, Ordering::Relaxed);
        metrics.sets.store(st.sets, Ordering::Relaxed);
        metrics.deletes.store(st.deletes, Ordering::Relaxed);
        metrics.evictions.store(st.evictions, Ordering::Relaxed);
        metrics.expired.store(st.expired, Ordering::Relaxed);
        metrics
            .curr_items
            .store(store.len() as u64, Ordering::Relaxed);

        let _ = job.reply.send(ConnEvent::Reply(JobReply {
            ticket: job.ticket,
            part: job.part,
            reply,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in 1..8 {
            for key in [&b"alpha"[..], b"beta", b"gamma"] {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards));
            }
        }
    }

    #[test]
    fn pool_set_get_delete_roundtrip() {
        let clock = Clock::new();
        let pool = ShardPool::new(
            &ShardConfig {
                shards: 2,
                memory_bytes: 8 << 20,
                service_exp_mean: None,
                service_seed: 1,
            },
            clock,
        )
        .unwrap();
        let (tx, rx) = mpsc::channel();
        let shard = shard_of(b"k1", 2);
        pool.dispatch(
            shard,
            Job {
                op: ShardOp::Set {
                    key: b"k1".to_vec(),
                    flags: 9,
                    exptime: 0,
                    data: Bytes::copy_from_slice(b"hello"),
                },
                ticket: 1,
                part: 0,
                enqueued: 0.0,
                reply: tx.clone(),
            },
        );
        match rx.recv().unwrap() {
            ConnEvent::Reply(JobReply {
                reply: ShardReply::Stored(Ok(())),
                ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        pool.dispatch(
            shard,
            Job {
                op: ShardOp::GetMany(vec![b"k1".to_vec(), b"nope".to_vec()]),
                ticket: 2,
                part: 0,
                enqueued: 0.0,
                reply: tx.clone(),
            },
        );
        match rx.recv().unwrap() {
            ConnEvent::Reply(JobReply {
                reply: ShardReply::Values(vals),
                ..
            }) => {
                assert_eq!(vals.len(), 2);
                let v = vals[0].as_ref().expect("hit");
                assert_eq!(v.flags, 9);
                assert_eq!(&v.data[..], b"hello");
                assert!(vals[1].is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
        pool.dispatch(
            shard,
            Job {
                op: ShardOp::Delete(b"k1".to_vec()),
                ticket: 3,
                part: 0,
                enqueued: 0.0,
                reply: tx,
            },
        );
        match rx.recv().unwrap() {
            ConnEvent::Reply(JobReply {
                reply: ShardReply::Deleted(true),
                ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        let m = &pool.metrics()[shard];
        assert_eq!(m.keys_served.load(Ordering::Relaxed), 4);
        assert!(m.busy_ns.load(Ordering::Relaxed) > 0);
        assert_eq!(m.inflight(), 0);
        pool.shutdown();
    }

    #[test]
    fn negative_exptime_is_immediately_expired() {
        let clock = Clock::new();
        let pool = ShardPool::new(
            &ShardConfig {
                shards: 1,
                memory_bytes: 4 << 20,
                service_exp_mean: None,
                service_seed: 1,
            },
            clock,
        )
        .unwrap();
        let (tx, rx) = mpsc::channel();
        pool.dispatch(
            0,
            Job {
                op: ShardOp::Set {
                    key: b"gone".to_vec(),
                    flags: 0,
                    exptime: -1,
                    data: Bytes::copy_from_slice(b"x"),
                },
                ticket: 1,
                part: 0,
                enqueued: 0.0,
                reply: tx.clone(),
            },
        );
        let _ = rx.recv().unwrap();
        pool.dispatch(
            0,
            Job {
                op: ShardOp::GetMany(vec![b"gone".to_vec()]),
                ticket: 2,
                part: 0,
                enqueued: 0.0,
                reply: tx,
            },
        );
        match rx.recv().unwrap() {
            ConnEvent::Reply(JobReply {
                reply: ShardReply::Values(vals),
                ..
            }) => assert!(vals[0].is_none()),
            other => panic!("unexpected: {other:?}"),
        }
        pool.shutdown();
    }

    #[test]
    fn queue_gauge_integrates_inflight_time() {
        let m = ShardMetrics::default();
        m.on_dispatch(1.0);
        m.on_dispatch(2.0);
        // Two jobs in flight over [2, 3]: integral = 1·1 + 2·1 = 3.
        assert!((m.queue_integral(3.0) - 3.0).abs() < 1e-12);
        m.on_complete(3.0);
        assert!((m.queue_integral(4.0) - 4.0).abs() < 1e-12);
        assert_eq!(m.inflight(), 1);
    }
}
