//! The `memlat-server` binary: a memcached-text-protocol server.
//!
//! ```text
//! memlat-server [--addr HOST:PORT] [--shards N] [--memory-mb MB]
//!               [--service-exp-us MEAN] [--service-seed SEED]
//!               [--runtime blocking|poll]
//! ```
//!
//! Prints `LISTENING <addr>` once the socket is bound (so harnesses using
//! port 0 can discover the ephemeral port), then serves until a client
//! sends the `shutdown` admin command, at which point it drains all
//! connections and exits 0.

use std::process::ExitCode;

use memlat_server::{start, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: memlat-server [--addr HOST:PORT] [--shards N] [--memory-mb MB]\n\
         \x20                    [--service-exp-us MEAN_US] [--service-seed SEED]\n\
         \x20                    [--runtime blocking|poll]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:11211".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--shards" => match val("--shards").parse() {
                Ok(n) if n > 0 => cfg.shard.shards = n,
                _ => usage(),
            },
            "--memory-mb" => match val("--memory-mb").parse::<usize>() {
                Ok(mb) if mb > 0 => cfg.shard.memory_bytes = mb << 20,
                _ => usage(),
            },
            "--service-exp-us" => match val("--service-exp-us").parse::<f64>() {
                Ok(us) if us > 0.0 => cfg.shard.service_exp_mean = Some(us * 1e-6),
                _ => usage(),
            },
            "--service-seed" => match val("--service-seed").parse() {
                Ok(seed) => cfg.shard.service_seed = seed,
                Err(_) => usage(),
            },
            "--runtime" => match val("--runtime").parse() {
                Ok(kind) => cfg.runtime = kind,
                Err(e) => {
                    eprintln!("{e}");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }

    let handle = match start(&cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("memlat-server: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Announce the bound address on a line of its own; harnesses that
    // requested port 0 parse this to find the real port.
    println!("LISTENING {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match handle.join() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("memlat-server: runtime error: {e}");
            ExitCode::FAILURE
        }
    }
}
