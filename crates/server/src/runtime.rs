//! Connection runtimes behind a small trait.
//!
//! The [`Runtime`] trait isolates "how sockets are driven" from everything
//! else (parsing, sharding, response assembly live in [`ConnDriver`] and
//! are runtime-agnostic). Two safe-Rust backends are provided:
//!
//! * [`BlockingRuntime`] — two OS threads per connection (reader +
//!   writer). Lowest latency on loopback (futex wakeups, no polling), the
//!   default, and the one conformance runs use.
//! * [`PollRuntime`] — a single event-loop thread multiplexing every
//!   connection over nonblocking sockets, treating `WouldBlock` as "not
//!   ready" in the style of an epoll/mio readiness loop (the standard
//!   library exposes no safe `epoll_wait`, so readiness is discovered by
//!   polling with an adaptive idle backoff). An io_uring or true-epoll
//!   backend can slot in behind the same trait.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::protocol::handler::ConnDriver;
use crate::shard::ConnEvent;
use crate::ServerShared;

/// Which runtime backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// Thread-per-connection blocking I/O (default).
    Blocking,
    /// Single-threaded readiness-style event loop.
    Poll,
}

impl std::str::FromStr for RuntimeKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "blocking" => Ok(Self::Blocking),
            "poll" => Ok(Self::Poll),
            other => Err(format!("unknown runtime {other:?} (blocking|poll)")),
        }
    }
}

/// A socket-driving strategy. `run` owns the accept loop and returns only
/// when the server has fully shut down (all connections drained, shard
/// workers joined).
pub trait Runtime: Send {
    /// Serves `listener` until [`ServerShared::begin_shutdown`] is called.
    ///
    /// # Errors
    ///
    /// Returns fatal listener errors; per-connection errors only drop that
    /// connection.
    fn run(&self, listener: TcpListener, shared: Arc<ServerShared>) -> std::io::Result<()>;
}

/// Thread-per-connection blocking backend.
#[derive(Debug, Default)]
pub struct BlockingRuntime;

impl Runtime for BlockingRuntime {
    fn run(&self, listener: TcpListener, shared: Arc<ServerShared>) -> std::io::Result<()> {
        let registry: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut conn_threads = Vec::new();
        let mut next_conn: u64 = 0;
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let id = next_conn;
            next_conn += 1;
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                registry
                    .lock()
                    .expect("registry poisoned")
                    .insert(id, clone);
            }
            shared.curr_connections.fetch_add(1, Ordering::Relaxed);
            shared.total_connections.fetch_add(1, Ordering::Relaxed);
            let conn_shared = Arc::clone(&shared);
            let conn_registry = Arc::clone(&registry);
            let handle = thread::Builder::new()
                .name(format!("memlat-conn-{id}"))
                .spawn(move || {
                    run_blocking_conn(stream, &conn_shared);
                    conn_registry.lock().expect("registry poisoned").remove(&id);
                    conn_shared.curr_connections.fetch_sub(1, Ordering::Relaxed);
                })
                .expect("spawn connection thread");
            conn_threads.push(handle);
        }
        // Drain: force every live connection's reader to see EOF, then let
        // the writers flush their pending responses and exit.
        for (_, s) in registry.lock().expect("registry poisoned").iter() {
            let _ = s.shutdown(Shutdown::Read);
        }
        for handle in conn_threads {
            let _ = handle.join();
        }
        shared.pool.shutdown();
        Ok(())
    }
}

fn run_blocking_conn(stream: TcpStream, shared: &Arc<ServerShared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (event_tx, event_rx) = mpsc::channel::<ConnEvent>();
    let driver = Arc::new(Mutex::new(ConnDriver::new(
        Arc::clone(shared),
        event_tx.clone(),
    )));

    let writer_driver = Arc::clone(&driver);
    let writer_shared = Arc::clone(shared);
    let writer = thread::Builder::new()
        .name("memlat-conn-writer".into())
        .spawn(move || {
            let mut stream = write_half;
            loop {
                let ev = event_rx.recv_timeout(Duration::from_millis(50));
                let out = {
                    let mut d = writer_driver.lock().expect("driver poisoned");
                    if let Ok(ev) = ev {
                        d.handle_event(ev);
                        // Batch: integrate whatever else already arrived.
                        while let Ok(more) = event_rx.try_recv() {
                            d.handle_event(more);
                        }
                    }
                    d.take_output()
                };
                if !out.is_empty() {
                    if stream.write_all(&out).is_err() {
                        // Client went away: unblock our reader and stop.
                        let _ = stream.shutdown(Shutdown::Both);
                        writer_shared.buffers.release(out);
                        break;
                    }
                    writer_shared
                        .bytes_written
                        .fetch_add(out.len() as u64, Ordering::Relaxed);
                }
                writer_shared.buffers.release(out);
                if writer_driver.lock().expect("driver poisoned").drained() {
                    break;
                }
            }
        })
        .expect("spawn connection writer");

    let mut reader = stream;
    let mut chunk = [0u8; 16 << 10];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                shared.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                let closing = {
                    let mut d = driver.lock().expect("driver poisoned");
                    d.on_bytes(&chunk[..n]);
                    d.closing()
                };
                let _ = event_tx.send(ConnEvent::Wake);
                if closing {
                    break;
                }
            }
        }
    }
    driver.lock().expect("driver poisoned").begin_drain();
    let _ = event_tx.send(ConnEvent::Wake);
    let _ = writer.join();
    let _ = reader.shutdown(Shutdown::Both);
}

/// Single-threaded readiness-style event loop backend.
#[derive(Debug, Default)]
pub struct PollRuntime;

struct PollConn {
    stream: TcpStream,
    driver: ConnDriver,
    event_rx: mpsc::Receiver<ConnEvent>,
    pending: Vec<u8>,
    written: usize,
    dead: bool,
}

impl Runtime for PollRuntime {
    fn run(&self, listener: TcpListener, shared: Arc<ServerShared>) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut conns: Vec<PollConn> = Vec::new();
        let mut chunk = [0u8; 16 << 10];
        let mut idle_sweeps: u32 = 0;
        loop {
            let shutting_down = shared.shutdown.load(Ordering::SeqCst);
            let mut active = false;

            if !shutting_down {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let (event_tx, event_rx) = mpsc::channel();
                            shared.curr_connections.fetch_add(1, Ordering::Relaxed);
                            shared.total_connections.fetch_add(1, Ordering::Relaxed);
                            conns.push(PollConn {
                                stream,
                                driver: ConnDriver::new(Arc::clone(&shared), event_tx),
                                event_rx,
                                pending: Vec::new(),
                                written: 0,
                                dead: false,
                            });
                            active = true;
                        }
                        Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }

            for conn in &mut conns {
                // 1. Integrate shard completions.
                while let Ok(ev) = conn.event_rx.try_recv() {
                    conn.driver.handle_event(ev);
                    active = true;
                }
                // 2. Read whatever the socket has.
                if !conn.driver.closing() && !conn.dead {
                    loop {
                        match conn.stream.read(&mut chunk) {
                            Ok(0) => {
                                conn.driver.begin_drain();
                                break;
                            }
                            Ok(n) => {
                                shared.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                                conn.driver.on_bytes(&chunk[..n]);
                                active = true;
                                if conn.driver.closing() {
                                    break;
                                }
                            }
                            Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(_) => {
                                conn.dead = true;
                                break;
                            }
                        }
                    }
                }
                if shutting_down || conn.driver.closing() {
                    conn.driver.begin_drain();
                }
                // 3. Assemble and write what's flushable.
                let out = conn.driver.take_output();
                if out.is_empty() {
                    shared.buffers.release(out);
                } else {
                    conn.pending.extend_from_slice(&out);
                    shared.buffers.release(out);
                }
                while conn.written < conn.pending.len() && !conn.dead {
                    match conn.stream.write(&conn.pending[conn.written..]) {
                        Ok(n) => {
                            conn.written += n;
                            shared.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
                            active = true;
                        }
                        Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                if conn.written == conn.pending.len() && conn.written > 0 {
                    conn.pending.clear();
                    conn.written = 0;
                }
            }

            // 4. Reap finished connections.
            conns.retain(|c| {
                let done =
                    c.dead || (c.driver.closing() && c.driver.drained() && c.pending.is_empty());
                if done {
                    let _ = c.stream.shutdown(Shutdown::Both);
                    shared.curr_connections.fetch_sub(1, Ordering::Relaxed);
                }
                !done
            });

            if shutting_down && conns.is_empty() {
                break;
            }
            if active {
                idle_sweeps = 0;
            } else {
                idle_sweeps = idle_sweeps.saturating_add(1);
                if idle_sweeps > 32 {
                    thread::sleep(Duration::from_micros(200));
                } else {
                    thread::yield_now();
                }
            }
        }
        shared.pool.shutdown();
        Ok(())
    }
}

/// Constructs the backend for `kind`.
#[must_use]
pub fn make_runtime(kind: RuntimeKind) -> Box<dyn Runtime> {
    match kind {
        RuntimeKind::Blocking => Box::new(BlockingRuntime),
        RuntimeKind::Poll => Box::new(PollRuntime),
    }
}
