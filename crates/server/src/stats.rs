//! `stats` command rendering and process-level gauges.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::ServerShared;

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 when unavailable.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Renders the full `STAT ... END` response for the `stats` command.
///
/// Beyond the classic memcached counters this exposes per-shard
/// measurement extras (`shard<j>_busy_ns`, `shard<j>_sojourn_ns`,
/// `shard<j>_queue_integral_ns`, ...) that the conformance load generator
/// uses to compute measured μ̂ and the Little's-law jobs-in-system
/// average without any client-side assumption.
#[must_use]
pub fn render_stats(shared: &ServerShared) -> Vec<u8> {
    let now = shared.clock.now();
    let mut s = String::with_capacity(1024);
    let metrics = shared.pool.metrics();
    let (mut hits, mut misses, mut items, mut evictions, mut expired) = (0, 0, 0, 0, 0);
    for m in metrics {
        hits += m.hits.load(Ordering::Relaxed);
        misses += m.misses.load(Ordering::Relaxed);
        items += m.curr_items.load(Ordering::Relaxed);
        evictions += m.evictions.load(Ordering::Relaxed);
        expired += m.expired.load(Ordering::Relaxed);
    }
    let _ = writeln!(s, "STAT pid {}\r", std::process::id());
    let _ = writeln!(s, "STAT uptime {}\r", now as u64);
    let _ = writeln!(s, "STAT version {}\r", crate::VERSION);
    let _ = writeln!(s, "STAT pointer_size {}\r", usize::BITS);
    let _ = writeln!(s, "STAT threads {}\r", shared.pool.shards());
    let _ = writeln!(
        s,
        "STAT curr_connections {}\r",
        shared.curr_connections.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "STAT total_connections {}\r",
        shared.total_connections.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "STAT cmd_get {}\r",
        shared.cmd_get.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "STAT cmd_set {}\r",
        shared.cmd_set.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "STAT cmd_delete {}\r",
        shared.cmd_delete.load(Ordering::Relaxed)
    );
    let _ = writeln!(s, "STAT get_hits {hits}\r");
    let _ = writeln!(s, "STAT get_misses {misses}\r");
    let _ = writeln!(s, "STAT curr_items {items}\r");
    let _ = writeln!(s, "STAT evictions {evictions}\r");
    let _ = writeln!(s, "STAT expired {expired}\r");
    let _ = writeln!(
        s,
        "STAT bytes_read {}\r",
        shared.bytes_read.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "STAT bytes_written {}\r",
        shared.bytes_written.load(Ordering::Relaxed)
    );
    let _ = writeln!(s, "STAT peak_rss_bytes {}\r", peak_rss_bytes());
    for (j, m) in metrics.iter().enumerate() {
        let _ = writeln!(
            s,
            "STAT shard{j}_keys_served {}\r",
            m.keys_served.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "STAT shard{j}_busy_ns {}\r",
            m.busy_ns.load(Ordering::Relaxed)
        );
        let _ = writeln!(s, "STAT shard{j}_jobs {}\r", m.jobs.load(Ordering::Relaxed));
        let _ = writeln!(
            s,
            "STAT shard{j}_sojourn_ns {}\r",
            m.sojourn_ns.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            s,
            "STAT shard{j}_queue_integral_ns {}\r",
            (m.queue_integral(now) * 1e9) as u64
        );
        let _ = writeln!(s, "STAT shard{j}_inflight {}\r", m.inflight());
    }
    let _ = write!(s, "END\r\n");
    s.into_bytes()
}
