//! `E[T_S(N)]` — processing latency at the memcached servers
//! (paper §4.3).

use memlat_queue::GixM1;

use crate::{latency::Bounds, params::ModelParams, ModelError};

/// The per-server queueing layer of the model: one solved GI^X/M/1 queue
/// per memcached server, plus the fork-join aggregation of §4.3.2.
///
/// Two estimators are provided for `E[T_S(N)] ≈ (T_S(1))_{N/(N+1)}`:
///
/// * [`theorem1_bounds`](Self::theorem1_bounds) — the paper's closed form
///   (eq. 14), i.e. Proposition 1 applied to the heaviest server;
/// * [`product_form_bounds`](Self::product_form_bounds) — a numerically
///   inverted product CDF `Π_j [T_Sj(t)]^{p_j}` (eq. 11), which is tighter
///   (it is exact under the model's independence assumptions given the
///   per-server bound CDFs) and reduces to the single-server law for
///   balanced clusters — this is how Table 3's 351–366 µs band arises.
///
/// # Examples
///
/// ```
/// use memlat_model::{ModelParams, ServerLatencyModel};
///
/// # fn main() -> Result<(), memlat_model::ModelError> {
/// let params = ModelParams::builder().build()?;
/// let model = ServerLatencyModel::new(&params)?;
/// let b = model.product_form_bounds(150);
/// assert!((340e-6..=380e-6).contains(&b.upper), "upper={}", b.upper);
/// assert!((330e-6..=372e-6).contains(&b.lower), "lower={}", b.lower);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServerLatencyModel {
    /// Solved queues, one per server, ordered as the load shares.
    queues: Vec<GixM1>,
    /// Load shares `{p_j}`, same order.
    shares: Vec<f64>,
    /// Index of the heaviest server.
    heaviest: usize,
}

impl ServerLatencyModel {
    /// Solves the per-server queues for the given parameters.
    ///
    /// Servers with zero load share are excluded from the fork-join
    /// product (they receive no keys).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::Queue`] — most importantly
    /// `QueueError::Unstable` when the heaviest server is driven at or
    /// beyond `μ_S`.
    pub fn new(params: &ModelParams) -> Result<Self, ModelError> {
        let shares_all = params.load().shares(params.servers())?;
        let q = params.concurrency();
        let mut queues = Vec::new();
        let mut shares = Vec::new();
        for &p in &shares_all {
            if p <= 0.0 {
                continue;
            }
            let lam_j = p * params.total_key_rate();
            // Batch rate is (1−q)·λ so the *key* rate is λ.
            let gaps = params.arrival().interarrival((1.0 - q) * lam_j)?;
            queues.push(GixM1::new(gaps.as_ref(), q, params.service_rate())?);
            shares.push(p);
        }
        if queues.is_empty() {
            return Err(ModelError::InvalidParam(
                "all servers have zero load".into(),
            ));
        }
        // Re-normalize in case zero-share servers were dropped (they keep
        // Σ p_j = 1 anyway, but guard against fp drift).
        let heaviest = shares
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(Self {
            queues,
            shares,
            heaviest,
        })
    }

    /// The solved queue of server `j`.
    #[must_use]
    pub fn queue(&self, j: usize) -> Option<&GixM1> {
        self.queues.get(j)
    }

    /// The solved queue of the heaviest server.
    #[must_use]
    pub fn heaviest_queue(&self) -> &GixM1 {
        &self.queues[self.heaviest]
    }

    /// The load share of the heaviest server, `p_1`.
    #[must_use]
    pub fn p1(&self) -> f64 {
        self.shares[self.heaviest]
    }

    /// Number of loaded servers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// True when no server carries load (cannot occur for a validated
    /// model).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// The paper's closed-form Theorem 1 bounds on `E[T_S(N)]` (eq. 14):
    ///
    /// * upper: `(T_C1)_k = ln(N+1)/((1−δ₁)(1−q)μ_S)` with `k = N/(N+1)`,
    ///   where server 1 is the heaviest;
    /// * lower: `(T_Q1)_{k^{1/p1}}` per Proposition 1.
    ///
    /// # Panics
    ///
    /// Never panics for `n ≥ 1` (enforced by clamping).
    #[must_use]
    pub fn theorem1_bounds(&self, n: u64) -> Bounds {
        let n = n.max(1);
        let k = n as f64 / (n as f64 + 1.0);
        let q1 = self.heaviest_queue();
        let upper = q1.batch_queue().sojourn_quantile(k);
        let k_lower = k.powf(1.0 / self.p1());
        let lower = q1.batch_queue().waiting_quantile(k_lower);
        Bounds::new(lower.min(upper), upper)
    }

    /// CDF lower/upper envelopes of `T_S(1)` from the product form
    /// (eq. 11): `Π_j [T_Q,j(t)]^{p_j}` and `Π_j [T_C,j(t)]^{p_j}`.
    ///
    /// Because `T_Q ≤ T_S ≤ T_C` per key, the completion-based product is
    /// a *lower* envelope of the `T_S(1)` CDF (an upper bound in latency)
    /// and the queueing-based product an upper envelope.
    fn product_cdf(&self, t: f64, use_completion: bool) -> f64 {
        let mut log_acc = 0.0;
        for (queue, p) in self.queues.iter().zip(&self.shares) {
            let f = if use_completion {
                queue.completion_time_cdf(t)
            } else {
                queue.queueing_time_cdf(t)
            };
            if f <= 0.0 {
                return 0.0;
            }
            log_acc += p * f.ln();
        }
        log_acc.exp()
    }

    /// Inverts a product CDF at probability `k` by bracket doubling and
    /// bisection.
    fn product_quantile(&self, k: f64, use_completion: bool) -> f64 {
        debug_assert!((0.0..1.0).contains(&k));
        // An upper-envelope starting bracket: the heaviest server's own
        // quantile is within a factor of ~1/p1 of the product quantile.
        let mut hi = self
            .heaviest_queue()
            .batch_queue()
            .sojourn_quantile(k)
            .max(1e-12);
        let mut guard = 0;
        while self.product_cdf(hi, use_completion) < k {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                break;
            }
        }
        memlat_numerics::bisect(
            |t| self.product_cdf(t, use_completion) - k,
            0.0,
            hi,
            hi * 1e-12,
            200,
        )
        .unwrap_or(hi)
    }

    /// Tighter bounds on `E[T_S(N)] ≈ (T_S(1))_{N/(N+1)}` via numeric
    /// inversion of the product-form CDF (extension over the paper's
    /// closed form; coincides with it for a single loaded server).
    #[must_use]
    pub fn product_form_bounds(&self, n: u64) -> Bounds {
        let n = n.max(1);
        let k = n as f64 / (n as f64 + 1.0);
        let upper = self.product_quantile(k, true);
        let lower = self.product_quantile(k, false).min(upper);
        Bounds::new(lower, upper)
    }

    /// The model's point estimate of `E[T_S(N)]`: the completion-based
    /// product-form quantile (the curve the paper plots as "Theorem 1" in
    /// Figs. 5–10 and 12 tracks this upper estimate).
    #[must_use]
    pub fn expected_latency(&self, n: u64) -> f64 {
        self.product_form_bounds(n).upper
    }

    /// The `k`-th quantile bounds for a *single* key's processing latency
    /// at the heaviest server — the paper's eq. (9), plotted in Fig. 4.
    ///
    /// # Panics
    ///
    /// Panics unless `k ∈ [0, 1)`.
    #[must_use]
    pub fn single_key_quantile_bounds(&self, k: f64) -> (f64, f64) {
        self.heaviest_queue().key_latency_quantile_bounds(k)
    }

    /// The full fork-join CDF of `T_S(N)` (eq. 10):
    /// `P{T_S(N) ≤ t} = Π_j [F_j(t)]^{p_j·N}`, using the **exact**
    /// per-key law of each server (which coincides with eq. 5's
    /// completion law — see `memlat_queue::exact_key`).
    ///
    /// Extension over the paper, which only estimates `E[T_S(N)]`; the
    /// full CDF yields tail percentiles (p99, p999) of the request's
    /// server stage directly.
    #[must_use]
    pub fn fork_join_cdf(&self, n: u64, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let n = n.max(1) as f64;
        let mut log_acc = 0.0;
        for (queue, p) in self.queues.iter().zip(&self.shares) {
            let f = memlat_queue::ExactKeyLatency::new(queue).cdf(t);
            if f <= 0.0 {
                return 0.0;
            }
            log_acc += p * n * f.ln();
        }
        log_acc.exp()
    }

    /// The `p`-th percentile of `T_S(N)` from [`fork_join_cdf`]
    /// (e.g. `p = 0.999` for the tail latency SLOs the paper's §4.5
    /// mentions and declines to use).
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 1)`.
    ///
    /// [`fork_join_cdf`]: Self::fork_join_cdf
    #[must_use]
    pub fn fork_join_quantile(&self, n: u64, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        // Upper bracket from the heaviest server's exact law: the
        // fork-join maximum of N keys is below that server's
        // (p^{1/N})-quantile scaled out to all keys landing there.
        let per_key = p.powf(1.0 / n.max(1) as f64);
        let mut hi = memlat_queue::ExactKeyLatency::new(self.heaviest_queue())
            .quantile(per_key.max(0.5))
            .max(1e-12);
        let mut guard = 0;
        while self.fork_join_cdf(n, hi) < p {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                break;
            }
        }
        memlat_numerics::bisect(|t| self.fork_join_cdf(n, t) - p, 0.0, hi, hi * 1e-12, 200)
            .unwrap_or(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ArrivalPattern, LoadDistribution, ModelParams};

    fn base() -> ModelParams {
        ModelParams::builder().build().unwrap()
    }

    #[test]
    fn table3_band_reproduced() {
        // Paper Table 3: Theorem 1 gives T_S(N) ∈ [351 µs, 366 µs].
        let m = ServerLatencyModel::new(&base()).unwrap();
        let b = m.product_form_bounds(150);
        assert!(
            (b.lower * 1e6 - 351.0).abs() < 8.0,
            "lower {} µs vs paper 351 µs",
            b.lower * 1e6
        );
        assert!(
            (b.upper * 1e6 - 366.0).abs() < 8.0,
            "upper {} µs vs paper 366 µs",
            b.upper * 1e6
        );
    }

    #[test]
    fn balanced_product_form_equals_single_server() {
        let m = ServerLatencyModel::new(&base()).unwrap();
        let k: f64 = 150.0 / 151.0;
        let single_upper = m.heaviest_queue().batch_queue().sojourn_quantile(k);
        let b = m.product_form_bounds(150);
        assert!((b.upper - single_upper).abs() < 1e-9);
        let single_lower = m.heaviest_queue().batch_queue().waiting_quantile(k);
        assert!((b.lower - single_lower).abs() < 1e-9);
    }

    #[test]
    fn theorem1_bounds_contain_product_form() {
        for p1 in [0.3, 0.5, 0.75] {
            let params = ModelParams::builder()
                .load(LoadDistribution::HotServer { p1 })
                .total_key_rate(80_000.0)
                .build()
                .unwrap();
            let m = ServerLatencyModel::new(&params).unwrap();
            let wide = m.theorem1_bounds(150);
            let tight = m.product_form_bounds(150);
            assert!(wide.lower <= tight.lower + 1e-12, "p1={p1}");
            assert!(tight.upper <= wide.upper + 1e-12, "p1={p1}");
        }
    }

    #[test]
    fn latency_grows_logarithmically_in_n() {
        // E[T_S(N)] = Θ(log N): the increment per decade is ~constant.
        let m = ServerLatencyModel::new(&base()).unwrap();
        let l10 = m.expected_latency(10);
        let l100 = m.expected_latency(100);
        let l1000 = m.expected_latency(1_000);
        let d1 = l100 - l10;
        let d2 = l1000 - l100;
        assert!(d1 > 0.0 && d2 > 0.0);
        assert!((d2 / d1 - 1.0).abs() < 0.15, "d1={d1} d2={d2}");
    }

    #[test]
    fn hotter_server_dominates_latency() {
        let mut prev = 0.0;
        for p1 in [0.3, 0.5, 0.7, 0.9] {
            let params = ModelParams::builder()
                .load(LoadDistribution::HotServer { p1 })
                .total_key_rate(80_000.0)
                .build()
                .unwrap();
            let m = ServerLatencyModel::new(&params).unwrap();
            let l = m.expected_latency(150);
            assert!(l > prev, "p1={p1}: {l} vs {prev}");
            prev = l;
        }
    }

    #[test]
    fn unstable_heaviest_server_is_an_error() {
        let params = ModelParams::builder()
            .load(LoadDistribution::HotServer { p1: 0.9 })
            .total_key_rate(100_000.0) // heaviest sees 90 Kps > μ_S = 80 Kps
            .build()
            .unwrap();
        assert!(matches!(
            ServerLatencyModel::new(&params),
            Err(ModelError::Queue(memlat_queue::QueueError::Unstable { .. }))
        ));
    }

    #[test]
    fn zero_share_servers_are_skipped() {
        let params = ModelParams::builder()
            .load(LoadDistribution::Custom(vec![0.5, 0.5, 0.0, 0.0]))
            .total_key_rate(100_000.0)
            .build()
            .unwrap();
        let m = ServerLatencyModel::new(&params).unwrap();
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn poisson_less_latency_than_pareto_at_same_load() {
        let pareto = ServerLatencyModel::new(&base())
            .unwrap()
            .expected_latency(150);
        let poisson_params = ModelParams::builder()
            .arrival(ArrivalPattern::Poisson)
            .build()
            .unwrap();
        let poisson = ServerLatencyModel::new(&poisson_params)
            .unwrap()
            .expected_latency(150);
        assert!(poisson < pareto);
    }

    #[test]
    fn fork_join_cdf_is_proper_and_median_matches_e_estimate() {
        let m = ServerLatencyModel::new(&base()).unwrap();
        // Proper CDF in t.
        let mut prev = 0.0;
        for i in 1..100 {
            let t = i as f64 * 2e-5;
            let f = m.fork_join_cdf(150, t);
            assert!((0.0..=1.0).contains(&f) && f >= prev, "t={t}");
            prev = f;
        }
        // Balanced cluster: the fork-join quantile at p = N/(N+1)-ish
        // median sits near the expectation estimate.
        let med = m.fork_join_quantile(150, 0.5);
        let e = m.expected_latency(150);
        assert!((med / e - 1.0).abs() < 0.25, "median {med} vs E {e}");
    }

    #[test]
    fn fork_join_tail_percentiles_ordered_and_log_in_n() {
        let m = ServerLatencyModel::new(&base()).unwrap();
        let p50 = m.fork_join_quantile(150, 0.5);
        let p99 = m.fork_join_quantile(150, 0.99);
        let p999 = m.fork_join_quantile(150, 0.999);
        assert!(p50 < p99 && p99 < p999);
        // Balanced identical servers: tail of max of N·M exact-law keys
        // ⇒ p999 − p99 = ln(10)/decay.
        let decay = m.heaviest_queue().decay_rate();
        assert!(((p999 - p99) - 10f64.ln() / decay).abs() / p999 < 0.02);
        // p99 of a 10× larger fan-out ≈ p99 + ln(10)/decay.
        let p99_big = m.fork_join_quantile(1_500, 0.99);
        assert!(((p99_big - p99) - 10f64.ln() / decay).abs() / p99 < 0.05);
    }

    #[test]
    fn fork_join_quantile_respects_imbalance() {
        let hot = ModelParams::builder()
            .load(LoadDistribution::HotServer { p1: 0.7 })
            .total_key_rate(80_000.0)
            .build()
            .unwrap();
        let balanced = ModelParams::builder()
            .total_key_rate(80_000.0)
            .build()
            .unwrap();
        let q_hot = ServerLatencyModel::new(&hot)
            .unwrap()
            .fork_join_quantile(150, 0.99);
        let q_bal = ServerLatencyModel::new(&balanced)
            .unwrap()
            .fork_join_quantile(150, 0.99);
        assert!(q_hot > q_bal, "{q_hot} vs {q_bal}");
    }

    #[test]
    fn single_key_bounds_are_eq9() {
        let m = ServerLatencyModel::new(&base()).unwrap();
        let q1 = m.heaviest_queue();
        let (lo, hi) = m.single_key_quantile_bounds(0.9);
        let decay = q1.decay_rate();
        let delta = q1.delta();
        assert!((hi - (-(0.1f64).ln()) / decay).abs() < 1e-12);
        assert!((lo - ((delta.ln() - (0.1f64).ln()) / decay).max(0.0)).abs() < 1e-12);
    }
}
