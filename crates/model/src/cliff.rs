//! Proposition 2 — the latency cliff utilization `ρ_S(ξ)` and Table 4.
//!
//! The paper proves that `δ` depends only on the *shape* of the
//! inter-arrival law and the utilization (scale invariance), so the
//! utilization at which `E[T_S(N)]` "reaches a cliff point" is a function
//! of the burst degree `ξ` alone. The paper never states the numeric
//! criterion behind its Table 4; we reverse-engineered it as a **fixed-δ
//! threshold**: the cliff is where `δ(ρ, ξ)` crosses [`DELTA_STAR`],
//! equivalently where the latency multiplier `1/(1−δ)` crosses a fixed
//! value. `DELTA_STAR = 0.80` is a one-parameter least-squares fit to the
//! twenty Table 4 rows (RMSE ≈ 0.033 utilization points); all rows are
//! then *predictions* of the calibrated criterion. See EXPERIMENTS.md for
//! the row-by-row comparison.

use crate::{params::ArrivalPattern, ModelError};

/// The calibrated δ threshold that defines the latency cliff.
///
/// At the cliff the mean per-key latency is `1/(1−δ*) = 5×` the no-queue
/// service time of a batch.
pub const DELTA_STAR: f64 = 0.80;

/// Solves `δ` for the given arrival shape at utilization `ρ` and
/// concurrency `q` (scale-free: the absolute rates cancel per
/// Proposition 2).
///
/// # Errors
///
/// Propagates solver errors; `ρ ≥ 1` is unstable.
pub fn delta_at_utilization(pattern: ArrivalPattern, rho: f64, q: f64) -> Result<f64, ModelError> {
    if !(rho.is_finite() && rho > 0.0 && rho < 1.0) {
        return Err(ModelError::InvalidParam(format!(
            "utilization must be in (0,1), got {rho}"
        )));
    }
    // Work at an arbitrary μ_S = 1: λ = ρ, batch rate (1−q)ρ, batch
    // service (1−q).
    let gaps = pattern.interarrival((1.0 - q) * rho)?;
    let delta = memlat_queue::solve_delta(gaps.as_ref(), 1.0 - q)?;
    Ok(delta)
}

/// The cliff utilization `ρ_S(ξ)` for a Generalized-Pareto workload with
/// burst degree `ξ` — the paper's Proposition 2 / Table 4 quantity.
///
/// Computed by bisecting `δ(ρ) = threshold`.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParam`] for `ξ ∉ [0, 1)`, `q ∉ [0, 1)`
/// or a threshold outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use memlat_model::cliff::{cliff_utilization_with_threshold, DELTA_STAR};
/// # fn main() -> Result<(), memlat_model::ModelError> {
/// // Facebook workload (ξ = 0.15): paper reports ≈75%.
/// let rho = cliff_utilization_with_threshold(0.15, 0.1, DELTA_STAR)?;
/// assert!((rho - 0.75).abs() < 0.06);
/// # Ok(())
/// # }
/// ```
pub fn cliff_utilization_with_threshold(
    xi: f64,
    q: f64,
    threshold: f64,
) -> Result<f64, ModelError> {
    if !(threshold.is_finite() && threshold > 0.0 && threshold < 1.0) {
        return Err(ModelError::InvalidParam(format!(
            "delta threshold must be in (0,1), got {threshold}"
        )));
    }
    let pattern = ArrivalPattern::GeneralizedPareto { xi };
    // δ(ρ) is increasing in ρ; bisect.
    let (mut lo, mut hi) = (1e-4, 1.0 - 1e-6);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let d = delta_at_utilization(pattern, mid, q)?;
        if d < threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// [`cliff_utilization_with_threshold`] with the calibrated
/// [`DELTA_STAR`].
///
/// # Errors
///
/// Same as [`cliff_utilization_with_threshold`].
pub fn cliff_utilization(xi: f64, q: f64) -> Result<f64, ModelError> {
    cliff_utilization_with_threshold(xi, q, DELTA_STAR)
}

/// The paper's Table 4 values `(ξ, ρ_S(ξ))` as published, for comparison.
pub const TABLE4_PAPER: [(f64, f64); 20] = [
    (0.00, 0.77),
    (0.05, 0.76),
    (0.10, 0.76),
    (0.15, 0.75),
    (0.20, 0.74),
    (0.25, 0.73),
    (0.30, 0.72),
    (0.35, 0.71),
    (0.40, 0.69),
    (0.45, 0.67),
    (0.50, 0.65),
    (0.55, 0.62),
    (0.60, 0.59),
    (0.65, 0.55),
    (0.70, 0.50),
    (0.75, 0.45),
    (0.80, 0.39),
    (0.85, 0.31),
    (0.90, 0.21),
    (0.95, 0.09),
];

/// Regenerates Table 4: for each of the paper's ξ values, the cliff
/// utilization under the calibrated criterion.
///
/// # Errors
///
/// Propagates solver errors (none occur for the published grid).
pub fn table4(q: f64) -> Result<Vec<(f64, f64)>, ModelError> {
    TABLE4_PAPER
        .iter()
        .map(|&(xi, _)| Ok((xi, cliff_utilization(xi, q)?)))
        .collect()
}

/// An alternative, criterion-free knee detector (for the ablation in
/// EXPERIMENTS.md): the point of maximum distance below the chord of the
/// normalized latency–utilization curve `1/(1−δ(ρ))` over
/// `ρ ∈ [lo, hi]`.
///
/// Unlike the fixed-δ criterion this depends on the sweep range and turns
/// out to be nearly independent of ξ — evidence that the paper's Table 4
/// was *not* produced this way.
///
/// # Errors
///
/// Propagates solver errors.
pub fn knee_utilization(
    pattern: ArrivalPattern,
    q: f64,
    lo: f64,
    hi: f64,
    samples: usize,
) -> Result<f64, ModelError> {
    if !(0.0 < lo && lo < hi && hi < 1.0) {
        return Err(ModelError::InvalidParam(format!(
            "need 0 < lo < hi < 1, got [{lo}, {hi}]"
        )));
    }
    let n = samples.max(8);
    let l_lo = 1.0 / (1.0 - delta_at_utilization(pattern, lo, q)?);
    let l_hi = 1.0 / (1.0 - delta_at_utilization(pattern, hi, q)?);
    let mut best = (f64::MIN, lo);
    for i in 0..=n {
        let rho = lo + (hi - lo) * i as f64 / n as f64;
        let l = 1.0 / (1.0 - delta_at_utilization(pattern, rho, q)?);
        let xn = (rho - lo) / (hi - lo);
        let yn = (l - l_lo) / (l_hi - l_lo);
        if xn - yn > best.0 {
            best = (xn - yn, rho);
        }
    }
    Ok(best.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_cliff_is_delta_star() {
        // For ξ = 0 (Poisson), δ = ρ, so the cliff is exactly δ*.
        let rho = cliff_utilization(0.0, 0.1).unwrap();
        assert!((rho - DELTA_STAR).abs() < 1e-6, "{rho}");
    }

    #[test]
    fn facebook_cliff_near_75_percent() {
        let rho = cliff_utilization(0.15, 0.1).unwrap();
        assert!((rho - 0.75).abs() < 0.06, "{rho}");
    }

    #[test]
    fn cliff_decreases_with_burstiness() {
        let mut prev = 1.0;
        for xi in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95] {
            let rho = cliff_utilization(xi, 0.1).unwrap();
            assert!(rho < prev, "xi={xi}: {rho} !< {prev}");
            prev = rho;
        }
    }

    #[test]
    fn table4_within_tolerance_of_paper() {
        // Reproduction criterion: every row within 9 utilization points,
        // RMSE under 0.05 (the criterion itself is reverse-engineered).
        let mine = table4(0.1).unwrap();
        let mut sse = 0.0;
        for ((xi, rho), (xi_p, rho_p)) in mine.iter().zip(TABLE4_PAPER.iter()) {
            assert_eq!(xi, xi_p);
            let err = (rho - rho_p).abs();
            assert!(err < 0.09, "xi={xi}: mine={rho:.3} paper={rho_p}");
            sse += err * err;
        }
        let rmse = (sse / 20.0f64).sqrt();
        assert!(rmse < 0.05, "rmse={rmse}");
    }

    #[test]
    fn cliff_is_insensitive_to_q() {
        // Proposition 2: the value is determined by the burst degree; q
        // only rescales both axes of the δ fixed point.
        let a = cliff_utilization(0.3, 0.0).unwrap();
        let b = cliff_utilization(0.3, 0.1).unwrap();
        let c = cliff_utilization(0.3, 0.4).unwrap();
        assert!((a - b).abs() < 0.02, "{a} {b}");
        assert!((b - c).abs() < 0.05, "{b} {c}");
    }

    #[test]
    fn custom_threshold_monotone() {
        let low = cliff_utilization_with_threshold(0.15, 0.1, 0.6).unwrap();
        let high = cliff_utilization_with_threshold(0.15, 0.1, 0.9).unwrap();
        assert!(low < high);
        assert!(cliff_utilization_with_threshold(0.15, 0.1, 1.5).is_err());
    }

    #[test]
    fn knee_detector_is_range_sensitive_not_xi_sensitive() {
        let a = knee_utilization(
            ArrivalPattern::GeneralizedPareto { xi: 0.0 },
            0.1,
            0.1,
            0.95,
            100,
        )
        .unwrap();
        let b = knee_utilization(
            ArrivalPattern::GeneralizedPareto { xi: 0.6 },
            0.1,
            0.1,
            0.95,
            100,
        )
        .unwrap();
        // Both knees sit high and close together — the ablation result.
        assert!(a > 0.6 && b > 0.6);
        assert!((a - b).abs() < 0.15);
        assert!(knee_utilization(ArrivalPattern::Poisson, 0.1, 0.5, 0.4, 10).is_err());
    }
}
