//! # The memcached latency model (Cheng, Ren, Jiang, Zhang — ICDCS 2017)
//!
//! This crate is the paper's primary contribution: an analytical model of
//! end-user request latency in a memcached deployment, combining
//!
//! 1. an **unbalanced load distribution** `{p_j}` over the `M` memcached
//!    servers,
//! 2. a **GI^X/M/1** queue per server capturing burst (general
//!    inter-arrival gaps, e.g. the Facebook Generalized Pareto law) and
//!    concurrency (geometric batches with parameter `q`), and
//! 3. an **M/M/1 cache-miss stage**: each key misses with ratio `r` and is
//!    relayed to a database with service rate `μ_D`.
//!
//! The end-user latency of a request that fans out into `N` keys is
//! bounded by (Theorem 1)
//!
//! ```text
//! max{T_N(N), T_S(N), T_D(N)}  ≤  T(N)  ≤  T_N(N) + T_S(N) + T_D(N)
//! ```
//!
//! with `T_N` constant network latency, `E[T_S(N)]` estimated through the
//! `δ` fixed point and max-statistics (eq. 14 / Proposition 1), and
//! `E[T_D(N)] ≈ (1−(1−r)^N)/μ_D · ln(N·r/(1−(1−r)^N) + 1)` (eq. 23).
//!
//! Modules:
//!
//! * [`params`] — [`ModelParams`] and its builder: one value object holds
//!   every factor of the paper's Table 2.
//! * [`server`] — `E[T_S(N)]`: closed-form Theorem 1 bounds, Proposition 1,
//!   and a tighter numeric product-form quantile (eq. 11) as an extension.
//! * [`database`] — `E[T_D(N)]`: eq. 23 plus an exact harmonic-number
//!   variant quantifying the paper's `ln(K+1)` approximation.
//! * [`latency`] — [`LatencyEstimate`]: the assembled Theorem 1.
//! * [`cliff`] — Proposition 2: the cliff utilization `ρ_S(ξ)`, Table 4.
//! * [`delayed_hit`] — extension: per-key fetch coalescing closed forms
//!   (Jiang & Ma, arXiv 2505.15531) for the simulator's coalescing relay.
//! * [`analysis`] — §5.3: quantitative factor comparison and
//!   recommendations.
//! * [`asymptotics`] — eq. 25 and the `Θ(log N)` growth laws.
//!
//! # Examples
//!
//! The paper's Table 3 configuration:
//!
//! ```
//! use memlat_model::{ArrivalPattern, ModelParams};
//!
//! # fn main() -> Result<(), memlat_model::ModelError> {
//! let params = ModelParams::builder()
//!     .servers(4)
//!     .keys_per_request(150)
//!     .arrival(ArrivalPattern::GeneralizedPareto { xi: 0.15 })
//!     .key_rate_per_server(62_500.0)
//!     .concurrency(0.1)
//!     .service_rate(80_000.0)
//!     .miss_ratio(0.01)
//!     .db_service_rate(1_000.0)
//!     .network_latency(20e-6)
//!     .build()?;
//! let est = params.estimate()?;
//! assert!(est.server.lower > 300e-6 && est.server.upper < 420e-6);
//! assert!((est.database - 836e-6).abs() < 20e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod analysis;
pub mod asymptotics;
pub mod cliff;
pub mod database;
pub mod delayed_hit;
pub mod latency;
pub mod params;
pub mod request_law;
pub mod server;
pub mod sla;

pub use analysis::{FactorImpact, Recommendation};
pub use asymptotics::{
    che_miss_ratio, cluster_miss_ratio_asymptotic, lru_miss_ratio_asymptotic, DbScalingRegime,
};
pub use cliff::{cliff_utilization, table4, DELTA_STAR};
pub use latency::{Bounds, LatencyEstimate};
pub use params::{ArrivalPattern, LoadDistribution, ModelParams, ModelParamsBuilder};
pub use request_law::RequestLatencyLaw;
pub use server::ServerLatencyModel;
pub use sla::{plan, CapacityPlan, PlanningRequest};

/// Error type of the model crate.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A model parameter failed validation.
    InvalidParam(String),
    /// The underlying queueing solver failed (instability, solver issues).
    Queue(memlat_queue::QueueError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParam(what) => write!(f, "invalid model parameter: {what}"),
            ModelError::Queue(e) => write!(f, "queueing model failed: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Queue(e) => Some(e),
            ModelError::InvalidParam(_) => None,
        }
    }
}

impl From<memlat_queue::QueueError> for ModelError {
    fn from(e: memlat_queue::QueueError) -> Self {
        ModelError::Queue(e)
    }
}

impl From<memlat_dist::ParamError> for ModelError {
    fn from(e: memlat_dist::ParamError) -> Self {
        ModelError::InvalidParam(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = ModelError::InvalidParam("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let q: ModelError = memlat_queue::QueueError::Unstable { utilization: 1.5 }.into();
        assert!(q.source().is_some());
    }
}
