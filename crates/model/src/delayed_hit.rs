//! Delayed-hit latency under per-key fetch coalescing (extension).
//!
//! The source paper relays every cache miss to the database as an
//! independent trip. Real caches coalesce: while a fetch for key `k` is
//! outstanding, further misses for `k` park as waiters and resolve at
//! the fetch's completion — **delayed hits** (Atre et al., SIGCOMM
//! 2020). This module carries the closed forms from Jiang & Ma,
//! *"Modeling and Analysis of Delayed-Hit Caching with Stochastic Miss
//! Latency"* (arXiv 2505.15531), specialized to the regime our
//! simulator can realize exactly.
//!
//! **Setting.** Misses for one key form a Poisson process with rate
//! `λ`; each dispatched fetch takes a random latency `Z` (i.i.d.,
//! independent of arrivals). A miss arriving while no fetch is
//! outstanding dispatches one (and itself waits `Z`); a miss arriving
//! during an outstanding fetch is a delayed hit waiting the residual of
//! that `Z`. By renewal–reward over dispatch cycles (one fetch of
//! length `Z`, then an `Exp(λ)` idle gap to the next dispatch):
//!
//! * a fraction `λ·E[Z] / (1 + λ·E[Z])` of misses are delayed hits,
//! * fetches dispatch at rate `λ / (1 + λ·E[Z])`,
//! * the mean database-path latency over all misses is
//!
//! ```text
//! E[L] = (E[Z] + λ·E[Z²]/2) / (1 + λ·E[Z])
//! ```
//!
//! (the dispatching miss waits `E[Z]`; a delayed hit waits the
//! length-biased residual, mean `E[Z²]/(2·E[Z])`, and there are
//! `λ·E[Z]` of them per dispatch on average).
//!
//! **The memoryless identity.** When `Z ~ Exp(ν)`, `E[Z²] = 2/ν²` and
//! the formula collapses to `E[L] = 1/ν` — coalescing leaves the
//! *marginal* latency of every database-path resolution exactly
//! `Exp(ν)`: the residual of an exponential fetch is again `Exp(ν)`.
//! Mean *and every quantile* are then known in closed form, which is
//! what the conformance harness gates. Coalescing still matters through
//! the *dispatch rate*: fewer fetches mean less database load, which is
//! where the simulator shows mean/p99 reductions once shards are
//! loaded.

use crate::ModelError;

fn check_rate(name: &str, x: f64) -> Result<(), ModelError> {
    if !(x.is_finite() && x >= 0.0) {
        return Err(ModelError::InvalidParam(format!(
            "{name} must be finite and non-negative, got {x}"
        )));
    }
    Ok(())
}

fn check_positive(name: &str, x: f64) -> Result<(), ModelError> {
    if !(x.is_finite() && x > 0.0) {
        return Err(ModelError::InvalidParam(format!(
            "{name} must be finite and positive, got {x}"
        )));
    }
    Ok(())
}

/// Fraction of misses for one key that resolve as delayed hits:
/// `λ·E[Z] / (1 + λ·E[Z])`.
///
/// # Errors
///
/// Rejects a negative/non-finite `lambda` or non-positive `mean_z`.
pub fn delayed_fraction(lambda: f64, mean_z: f64) -> Result<f64, ModelError> {
    check_rate("lambda", lambda)?;
    check_positive("mean_z", mean_z)?;
    let a = lambda * mean_z;
    Ok(a / (1.0 + a))
}

/// Rate at which fetches are actually dispatched for one key:
/// `λ / (1 + λ·E[Z])`. Always `≤ λ` (coalescing never adds fetches) and
/// `≤ 1/E[Z]` (at most one outstanding fetch at a time).
///
/// # Errors
///
/// Rejects a negative/non-finite `lambda` or non-positive `mean_z`.
pub fn dispatch_rate(lambda: f64, mean_z: f64) -> Result<f64, ModelError> {
    check_rate("lambda", lambda)?;
    check_positive("mean_z", mean_z)?;
    Ok(lambda / (1.0 + lambda * mean_z))
}

/// Mean database-path latency over all misses for one key:
/// `(E[Z] + λ·E[Z²]/2) / (1 + λ·E[Z])`.
///
/// # Errors
///
/// Rejects invalid rates and a second moment below `E[Z]²` (impossible
/// for any distribution).
pub fn mean_latency(lambda: f64, mean_z: f64, second_moment_z: f64) -> Result<f64, ModelError> {
    check_rate("lambda", lambda)?;
    check_positive("mean_z", mean_z)?;
    if !(second_moment_z.is_finite() && second_moment_z >= mean_z * mean_z) {
        return Err(ModelError::InvalidParam(format!(
            "second_moment_z must be finite and >= mean_z^2, got {second_moment_z}"
        )));
    }
    Ok((mean_z + lambda * second_moment_z / 2.0) / (1.0 + lambda * mean_z))
}

/// [`mean_latency`] for deterministic fetch latency `Z ≡ z`:
/// `z·(1 + λ·z/2) / (1 + λ·z)`. Equals `z` at `λ = 0` and decreases
/// toward `z/2` as `λ → ∞` — a delayed hit waits only the residual
/// `z/2` on average, so with constant fetches coalescing lowers even
/// the marginal mean.
///
/// # Errors
///
/// Rejects invalid rates.
pub fn deterministic_mean_latency(lambda: f64, z: f64) -> Result<f64, ModelError> {
    mean_latency(lambda, z, z * z)
}

/// [`mean_latency`] for exponential fetch latency `Z ~ Exp(nu)`: exactly
/// `1/ν` for **every** `λ` (the memoryless identity — residuals of an
/// exponential are exponential).
///
/// # Errors
///
/// Rejects a non-positive `nu`.
pub fn exponential_mean_latency(nu: f64) -> Result<f64, ModelError> {
    check_positive("nu", nu)?;
    Ok(1.0 / nu)
}

/// The `p`-quantile of the database-path latency when `Z ~ Exp(nu)`:
/// `−ln(1−p)/ν`, for any `λ` — both direct misses (full fetch) and
/// delayed hits (residual) are marginally `Exp(ν)`.
///
/// # Errors
///
/// Rejects a non-positive `nu` or `p ∉ [0, 1)`.
pub fn exponential_latency_quantile(nu: f64, p: f64) -> Result<f64, ModelError> {
    check_positive("nu", nu)?;
    if !(p.is_finite() && (0.0..1.0).contains(&p)) {
        return Err(ModelError::InvalidParam(format!(
            "quantile level must be in [0, 1), got {p}"
        )));
    }
    Ok(-(1.0 - p).ln() / nu)
}

/// Aggregate delayed-hit fraction over a keyspace with per-key Poisson
/// miss rates `rates`: each key contributes misses proportionally to its
/// rate, so the pooled fraction is
/// `Σ_k λ_k²·E[Z]/(1+λ_k·E[Z]) / Σ_k λ_k`.
///
/// Returns 0 when every rate is zero.
///
/// # Errors
///
/// Rejects invalid rates or a non-positive `mean_z`.
pub fn aggregate_delayed_fraction(rates: &[f64], mean_z: f64) -> Result<f64, ModelError> {
    check_positive("mean_z", mean_z)?;
    let mut num = 0.0;
    let mut den = 0.0;
    for &lam in rates {
        check_rate("rate", lam)?;
        num += lam * (lam * mean_z) / (1.0 + lam * mean_z);
        den += lam;
    }
    Ok(if den > 0.0 { num / den } else { 0.0 })
}

/// Aggregate fetch dispatch rate over a keyspace with per-key Poisson
/// miss rates `rates`: `Σ_k λ_k/(1+λ_k·E[Z])`.
///
/// # Errors
///
/// Rejects invalid rates or a non-positive `mean_z`.
pub fn aggregate_dispatch_rate(rates: &[f64], mean_z: f64) -> Result<f64, ModelError> {
    check_positive("mean_z", mean_z)?;
    let mut total = 0.0;
    for &lam in rates {
        check_rate("rate", lam)?;
        total += lam / (1.0 + lam * mean_z);
    }
    Ok(total)
}

/// Aggregate mean database-path latency over a keyspace: the miss-rate
/// weighted mixture of the per-key [`mean_latency`] values.
///
/// Returns 0 when every rate is zero.
///
/// # Errors
///
/// Same contract as [`mean_latency`].
pub fn aggregate_mean_latency(
    rates: &[f64],
    mean_z: f64,
    second_moment_z: f64,
) -> Result<f64, ModelError> {
    let mut num = 0.0;
    let mut den = 0.0;
    for &lam in rates {
        num += lam * mean_latency(lam, mean_z, second_moment_z)?;
        den += lam;
    }
    Ok(if den > 0.0 { num / den } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_fetch_is_the_memoryless_identity() {
        // For Z ~ Exp(ν): E[Z] = 1/ν, E[Z²] = 2/ν² ⇒ E[L] = 1/ν at any λ.
        let nu = 1_000.0;
        for lambda in [0.0, 1.0, 500.0, 1e6] {
            let m = mean_latency(lambda, 1.0 / nu, 2.0 / (nu * nu)).unwrap();
            assert!((m - 1.0 / nu).abs() < 1e-15, "lambda={lambda}: {m}");
        }
        assert_eq!(exponential_mean_latency(nu).unwrap(), 1.0 / nu);
        // Median of Exp(1000): ln 2 ms.
        let q = exponential_latency_quantile(nu, 0.5).unwrap();
        assert!((q - 2.0f64.ln() / nu).abs() < 1e-15);
        assert_eq!(exponential_latency_quantile(nu, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn deterministic_fetch_mean_decreases_with_lambda() {
        // Delayed hits wait on average z/2 < z, so the mixture mean falls
        // from z (λ=0) toward z/2 (λ→∞).
        let z = 10e-3;
        let m0 = deterministic_mean_latency(0.0, z).unwrap();
        let m1 = deterministic_mean_latency(100.0, z).unwrap();
        let m2 = deterministic_mean_latency(10_000.0, z).unwrap();
        assert!((m0 - z).abs() < 1e-15);
        assert!(m1 < m0 && m2 < m1, "{m0} {m1} {m2}");
        assert!(m2 > z / 2.0);
        // Matches the general formula with E[Z²] = z².
        let general = mean_latency(100.0, z, z * z).unwrap();
        assert!((m1 - general).abs() < 1e-18);
    }

    #[test]
    fn fraction_and_dispatch_rate_bounds() {
        let mean_z = 5e-3;
        let mut prev = -1.0;
        for lambda in [0.0, 1.0, 10.0, 100.0, 1e4, 1e8] {
            let f = delayed_fraction(lambda, mean_z).unwrap();
            assert!((0.0..1.0).contains(&f) || (f - 1.0).abs() < 1e-9);
            assert!(f > prev, "fraction must be strictly increasing");
            prev = f;
            let d = dispatch_rate(lambda, mean_z).unwrap();
            assert!(d <= lambda + 1e-12, "never more fetches than misses");
            assert!(d <= 1.0 / mean_z + 1e-9, "at most one outstanding fetch");
        }
        assert_eq!(delayed_fraction(0.0, mean_z).unwrap(), 0.0);
        // λ·E[Z] = 1 ⇒ half the misses are delayed hits.
        let f = delayed_fraction(200.0, mean_z).unwrap();
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregates_reduce_to_scalars_on_one_key() {
        let mean_z = 2e-3;
        let lam = 300.0;
        let f = aggregate_delayed_fraction(&[lam], mean_z).unwrap();
        assert!((f - delayed_fraction(lam, mean_z).unwrap()).abs() < 1e-15);
        let d = aggregate_dispatch_rate(&[lam], mean_z).unwrap();
        assert!((d - dispatch_rate(lam, mean_z).unwrap()).abs() < 1e-15);
        let m = aggregate_mean_latency(&[lam], mean_z, 2.0 * mean_z * mean_z).unwrap();
        assert!((m - mean_latency(lam, mean_z, 2.0 * mean_z * mean_z).unwrap()).abs() < 1e-15);
    }

    #[test]
    fn aggregates_weight_by_rate() {
        // One hot key (coalesces a lot) + many cold keys (never): the
        // pooled fraction sits between the per-key extremes, nearer the
        // hot key's, and the dispatch rate is dominated by cold keys.
        let mean_z = 10e-3;
        let mut rates = vec![1_000.0];
        rates.extend(std::iter::repeat_n(0.1, 100));
        let f = aggregate_delayed_fraction(&rates, mean_z).unwrap();
        let hot = delayed_fraction(1_000.0, mean_z).unwrap();
        let cold = delayed_fraction(0.1, mean_z).unwrap();
        assert!(f > cold && f < hot);
        let d = aggregate_dispatch_rate(&rates, mean_z).unwrap();
        let total: f64 = rates.iter().sum();
        assert!(d < total, "coalescing must shed dispatches");
        // Zero traffic: zero everything, no division blowup.
        assert_eq!(aggregate_delayed_fraction(&[0.0], mean_z).unwrap(), 0.0);
        assert_eq!(
            aggregate_mean_latency(&[], mean_z, mean_z * mean_z).unwrap(),
            0.0
        );
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(delayed_fraction(-1.0, 1.0).is_err());
        assert!(delayed_fraction(1.0, 0.0).is_err());
        assert!(mean_latency(1.0, 1.0, 0.5).is_err(), "E[Z²] < E[Z]²");
        assert!(exponential_latency_quantile(1.0, 1.0).is_err());
        assert!(exponential_latency_quantile(0.0, 0.5).is_err());
        assert!(dispatch_rate(f64::NAN, 1.0).is_err());
    }
}
