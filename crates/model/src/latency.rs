//! Theorem 1 — the assembled end-user latency estimate.

use std::fmt;

use crate::{database, params::ModelParams, server::ServerLatencyModel, ModelError};

/// A closed interval `[lower, upper]` of latencies (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Lower bound (seconds).
    pub lower: f64,
    /// Upper bound (seconds).
    pub upper: f64,
}

impl Bounds {
    /// Creates a bounds pair; callers must pass `lower ≤ upper`.
    ///
    /// # Panics
    ///
    /// Debug-panics when the interval is inverted beyond fp noise.
    #[must_use]
    pub fn new(lower: f64, upper: f64) -> Self {
        debug_assert!(
            lower <= upper + 1e-15,
            "inverted bounds: [{lower}, {upper}]"
        );
        Self { lower, upper }
    }

    /// Interval midpoint.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether `x` lies inside the interval (with optional slack).
    #[must_use]
    pub fn contains(&self, x: f64, slack: f64) -> bool {
        x >= self.lower - slack && x <= self.upper + slack
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1} µs, {:.1} µs]",
            self.lower * 1e6,
            self.upper * 1e6
        )
    }
}

/// The output of Theorem 1 for a parameter set: the three latency parts
/// and the combined end-user bounds.
///
/// ```text
/// max{T_N, E[T_S(N)], E[T_D(N)]}  ≤  E[T(N)]  ≤  T_N + E[T_S(N)] + E[T_D(N)]
/// ```
///
/// # Examples
///
/// ```
/// use memlat_model::{LatencyEstimate, ModelParams};
///
/// # fn main() -> Result<(), memlat_model::ModelError> {
/// let est = LatencyEstimate::compute(&ModelParams::builder().build()?)?;
/// assert!(est.total.lower <= est.total.upper);
/// println!("{est}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyEstimate {
    /// `T_N(N)`: the constant network latency (paper eq. 2).
    pub network: f64,
    /// Bounds on `E[T_S(N)]` (paper eq. 14, via the product form).
    pub server: Bounds,
    /// The paper's closed-form bounds on `E[T_S(N)]` (Proposition 1
    /// applied to the heaviest server); wider than `server` when the
    /// load is unbalanced.
    pub server_closed_form: Bounds,
    /// `E[T_D(N)]` (paper eq. 23).
    pub database: f64,
    /// Exact-within-model database latency (binomial × harmonic numbers);
    /// extension quantifying eq. 23's approximation error.
    pub database_exact: f64,
    /// Bounds on the end-user latency `E[T(N)]` (Theorem 1): lower is the
    /// max of the parts (using each part's lower value), upper the sum
    /// (using each part's upper value).
    pub total: Bounds,
}

impl LatencyEstimate {
    /// Evaluates Theorem 1 for the given parameters.
    ///
    /// # Errors
    ///
    /// Propagates queueing errors — most importantly instability of the
    /// heaviest memcached server.
    pub fn compute(params: &ModelParams) -> Result<Self, ModelError> {
        let n = params.keys_per_request();
        let server_model = ServerLatencyModel::new(params)?;
        let server = server_model.product_form_bounds(n);
        let server_closed_form = server_model.theorem1_bounds(n);
        let network = params.network_latency();
        let database = database::db_latency_mean(n, params.miss_ratio(), params.db_service_rate());
        let database_exact =
            database::db_latency_mean_exact(n, params.miss_ratio(), params.db_service_rate());
        let total = Bounds::new(
            network.max(server.lower).max(database),
            network + server.upper + database,
        );
        Ok(Self {
            network,
            server,
            server_closed_form,
            database,
            database_exact,
            total,
        })
    }

    /// A single point estimate of the end-user latency: network plus the
    /// server point estimate plus the database estimate (the sum form,
    /// which §5.1's measurements sit closest to).
    #[must_use]
    pub fn point(&self) -> f64 {
        self.network + self.server.upper + self.database
    }
}

impl fmt::Display for LatencyEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "T_N(N)  = {:>9.1} µs (constant)", self.network * 1e6)?;
        writeln!(
            f,
            "T_S(N)  = {} (closed form {})",
            self.server, self.server_closed_form
        )?;
        writeln!(
            f,
            "T_D(N)  = {:>9.1} µs (exact-in-model {:.1} µs)",
            self.database * 1e6,
            self.database_exact * 1e6
        )?;
        write!(f, "T(N)    = {}", self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;

    fn base_estimate() -> LatencyEstimate {
        LatencyEstimate::compute(&ModelParams::builder().build().unwrap()).unwrap()
    }

    #[test]
    fn table3_all_rows() {
        let est = base_estimate();
        // T_N = 20 µs by configuration.
        assert_eq!(est.network, 20e-6);
        // T_S(N): paper 351–366 µs.
        assert!(est.server.contains(358e-6, 12e-6), "{}", est.server);
        // T_D(N): paper 836 µs.
        assert!((est.database * 1e6 - 836.0).abs() < 2.0);
        // T(N): paper bounds 836–1222 µs; measured 1144 µs inside.
        assert!((est.total.lower * 1e6 - 836.0).abs() < 5.0, "{}", est.total);
        assert!(
            (est.total.upper * 1e6 - 1222.0).abs() < 15.0,
            "{}",
            est.total
        );
        assert!(est.total.contains(1144e-6, 0.0));
    }

    #[test]
    fn bounds_helpers() {
        let b = Bounds::new(1.0, 3.0);
        assert_eq!(b.midpoint(), 2.0);
        assert_eq!(b.width(), 2.0);
        assert!(b.contains(1.5, 0.0));
        assert!(!b.contains(3.5, 0.0));
        assert!(b.contains(3.5, 1.0));
        assert!(!b.to_string().is_empty());
    }

    #[test]
    fn point_estimate_within_total_bounds() {
        let est = base_estimate();
        assert!(est.total.contains(est.point(), 1e-12));
    }

    #[test]
    fn display_mentions_all_parts() {
        let s = base_estimate().to_string();
        assert!(s.contains("T_N"));
        assert!(s.contains("T_S"));
        assert!(s.contains("T_D"));
        assert!(s.contains("T(N)"));
    }

    #[test]
    fn zero_miss_ratio_removes_db_part() {
        let params = ModelParams::builder().miss_ratio(0.0).build().unwrap();
        let est = LatencyEstimate::compute(&params).unwrap();
        assert_eq!(est.database, 0.0);
        assert_eq!(est.database_exact, 0.0);
        // Total lower bound then comes from the server part.
        assert!((est.total.lower - est.server.lower).abs() < 1e-15);
    }

    #[test]
    fn db_dominates_total_lower_bound_in_base_config() {
        // In Table 3, max{20, ~360, 836} = 836: the database part.
        let est = base_estimate();
        assert_eq!(est.total.lower, est.database);
    }
}
