//! Asymptotic regimes (paper eq. 25 and §5.2.4).

use crate::database::prob_no_miss;

/// Which asymptotic regime the database latency `E[T_D(N)]` is in as a
/// function of the miss ratio `r` (paper eq. 25).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbScalingRegime {
    /// Few keys per request: misses are rare events, `E[T_D(N)] = Θ(r)` —
    /// reducing the miss ratio pays off linearly.
    LinearInMissRatio,
    /// Many keys per request: misses are inevitable,
    /// `E[T_D(N)] = Θ(log r)` — reducing the miss ratio pays off only
    /// logarithmically.
    LogarithmicInMissRatio,
}

/// Classifies the regime of eq. 25 for the given fan-out and miss ratio.
///
/// The boundary is where misses stop being rare: we use
/// `P{K = 0} = (1−r)^N < ½` as the crossover (at least one key misses more
/// often than not).
///
/// # Examples
///
/// ```
/// use memlat_model::asymptotics::{db_scaling_regime, DbScalingRegime};
/// assert_eq!(db_scaling_regime(4, 0.01), DbScalingRegime::LinearInMissRatio);
/// assert_eq!(db_scaling_regime(10_000, 0.01), DbScalingRegime::LogarithmicInMissRatio);
/// ```
#[must_use]
pub fn db_scaling_regime(n: u64, r: f64) -> DbScalingRegime {
    if prob_no_miss(n, r) > 0.5 {
        DbScalingRegime::LinearInMissRatio
    } else {
        DbScalingRegime::LogarithmicInMissRatio
    }
}

/// Local elasticity `d ln f / d ln x` of a positive function, estimated by
/// central differences. An elasticity near 1 means `f = Θ(x)` locally;
/// elasticity falling like `1/ln x` indicates logarithmic growth.
///
/// Used by the experiments to verify the Θ-claims of eq. 25 and
/// `E[T_S(N)] = Θ(log N)` numerically.
///
/// # Examples
///
/// ```
/// use memlat_model::asymptotics::elasticity;
/// let e = elasticity(|x| 3.0 * x, 10.0);
/// assert!((e - 1.0).abs() < 1e-6);
/// ```
#[must_use]
pub fn elasticity<F: Fn(f64) -> f64>(f: F, x: f64) -> f64 {
    let h = 1e-4;
    let up = f(x * (1.0 + h)).max(f64::MIN_POSITIVE).ln();
    let dn = f(x * (1.0 - h)).max(f64::MIN_POSITIVE).ln();
    (up - dn) / ((1.0 + h).ln() - (1.0 - h).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::db_latency_mean;

    #[test]
    fn regimes_match_eq_25() {
        // Small N: linear.
        assert_eq!(
            db_scaling_regime(1, 0.01),
            DbScalingRegime::LinearInMissRatio
        );
        assert_eq!(
            db_scaling_regime(10, 0.01),
            DbScalingRegime::LinearInMissRatio
        );
        // Large N: logarithmic.
        assert_eq!(
            db_scaling_regime(1_000, 0.01),
            DbScalingRegime::LogarithmicInMissRatio
        );
        // Large r flips even small N.
        assert_eq!(
            db_scaling_regime(10, 0.5),
            DbScalingRegime::LogarithmicInMissRatio
        );
    }

    #[test]
    fn elasticity_identifies_power_laws() {
        assert!((elasticity(|x| x * x, 5.0) - 2.0).abs() < 1e-5);
        assert!((elasticity(|x| 7.0 / x, 3.0) + 1.0).abs() < 1e-5);
        // Logarithmic: elasticity ≈ 1/ln x, small.
        let e = elasticity(|x| x.ln(), 1e4);
        assert!(e < 0.15, "{e}");
    }

    #[test]
    fn db_latency_elasticity_matches_regime() {
        // Small N: elasticity in r near 1.
        let e_small = elasticity(|r| db_latency_mean(4, r, 1_000.0), 1e-3);
        assert!((e_small - 1.0).abs() < 0.05, "{e_small}");
        // Large N: elasticity in r far below 1.
        let e_large = elasticity(|r| db_latency_mean(100_000, r, 1_000.0), 1e-3);
        assert!(e_large < 0.35, "{e_large}");
    }
}
