//! Asymptotic regimes (paper eq. 25 and §5.2.4), plus the emergent
//! miss-ratio law: the Ji/Quan/Tan asymptotic for LRU caching behind
//! consistent-hash routing (arXiv 1801.02436).

use memlat_dist::Discrete;

use crate::database::prob_no_miss;
use crate::ModelError;

/// Asymptotic miss ratio of a single LRU cache of `capacity_items` items
/// under Zipf(`keys`, `skew`) traffic with `skew > 1` (Ji/Quan/Tan,
/// arXiv 1801.02436; the single-cache form goes back to Jelenković).
///
/// With popularity `q_i = c / i^α` (so `c = 1 / H_{n,α}` is the Zipf
/// normalizer) and cache size `x` items, the Che characteristic-time
/// analysis gives
///
/// ```text
/// m(x) ≈ (c / α) · [Γ(1 − 1/α)]^α · x^{−(α−1)}
/// ```
///
/// The value is clamped to `[0, 1]` — the power law exceeds 1 for tiny
/// caches where the asymptotic regime has not set in.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParam`] unless `keys ≥ 1`,
/// `skew > 1` (the theorem's heavy-tail condition), and
/// `capacity_items` is finite and positive.
///
/// # Examples
///
/// ```
/// use memlat_model::asymptotics::lru_miss_ratio_asymptotic;
/// let m = lru_miss_ratio_asymptotic(1_000_000, 1.3, 10_000.0).unwrap();
/// assert!(m > 0.0 && m < 1.0);
/// // Bigger cache, fewer misses.
/// let m2 = lru_miss_ratio_asymptotic(1_000_000, 1.3, 40_000.0).unwrap();
/// assert!(m2 < m);
/// ```
pub fn lru_miss_ratio_asymptotic(
    keys: u64,
    skew: f64,
    capacity_items: f64,
) -> Result<f64, ModelError> {
    if skew <= 1.0 || !skew.is_finite() {
        return Err(ModelError::InvalidParam(format!(
            "asymptotic miss ratio needs Zipf skew > 1, got {skew}"
        )));
    }
    if !(capacity_items.is_finite() && capacity_items > 0.0) {
        return Err(ModelError::InvalidParam(format!(
            "cache capacity must be positive, got {capacity_items}"
        )));
    }
    let zipf = memlat_dist::Zipf::new(keys, skew)?;
    // pmf(1) = 1/H_{n,α} is exactly the normalizer c.
    let c = zipf.pmf(1);
    let gamma = memlat_numerics::special::ln_gamma(1.0 - 1.0 / skew).exp();
    let m = (c / skew) * gamma.powf(skew) * capacity_items.powf(-(skew - 1.0));
    Ok(m.clamp(0.0, 1.0))
}

/// Asymptotic aggregate miss ratio of `servers` LRU caches of
/// `per_server_items` each behind consistent-hash key routing
/// (Ji/Quan/Tan Theorem 4, arXiv 1801.02436).
///
/// The theorem's punchline is an *insensitivity*: hashing thins the Zipf
/// stream so that each server sees the same power-law tail, and the
/// per-server factors cancel — the fleet misses exactly as often as one
/// big LRU holding the combined `servers × per_server_items` budget.
/// Splitting a fixed memory budget across more servers costs nothing
/// asymptotically.
///
/// # Errors
///
/// As [`lru_miss_ratio_asymptotic`], plus `servers ≥ 1`.
///
/// # Examples
///
/// ```
/// use memlat_model::asymptotics::{cluster_miss_ratio_asymptotic, lru_miss_ratio_asymptotic};
/// let fleet = cluster_miss_ratio_asymptotic(1_000_000, 1.3, 8, 5_000.0).unwrap();
/// let single = lru_miss_ratio_asymptotic(1_000_000, 1.3, 40_000.0).unwrap();
/// assert_eq!(fleet, single);
/// ```
pub fn cluster_miss_ratio_asymptotic(
    keys: u64,
    skew: f64,
    servers: u64,
    per_server_items: f64,
) -> Result<f64, ModelError> {
    if servers == 0 {
        return Err(ModelError::InvalidParam(
            "cluster miss ratio needs at least one server".into(),
        ));
    }
    lru_miss_ratio_asymptotic(keys, skew, servers as f64 * per_server_items)
}

/// Finite-population Che approximation: the LRU miss ratio of a cache of
/// `capacity_items` under Zipf(`keys`, `skew`), solved numerically.
///
/// Solves `Σ_i (1 − e^{−q_i T}) = x` for the characteristic time `T` by
/// bisection and returns `m = Σ_i q_i e^{−q_i T}`. This is the
/// non-asymptotic parent of [`lru_miss_ratio_asymptotic`]: exact in the
/// Che-approximation sense at any cache size, `O(keys)` per evaluation.
/// The conformance harness gates the simulator against the asymptotic
/// and uses this form to quantify the finite-size gap.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParam`] unless `keys ≥ 1`, `skew ≥ 0` is
/// finite, and `0 < capacity_items < keys` (a cache at least as large as
/// the key space never misses — that degenerate case returns `Ok(0.0)`).
///
/// # Examples
///
/// ```
/// use memlat_model::asymptotics::{che_miss_ratio, lru_miss_ratio_asymptotic};
/// let che = che_miss_ratio(1_000_000, 1.4, 8_000.0).unwrap();
/// let asy = lru_miss_ratio_asymptotic(1_000_000, 1.4, 8_000.0).unwrap();
/// // The asymptotic tracks the finite-size solution.
/// assert!((che - asy).abs() / che < 0.35, "che={che} asy={asy}");
/// ```
pub fn che_miss_ratio(keys: u64, skew: f64, capacity_items: f64) -> Result<f64, ModelError> {
    if !(capacity_items.is_finite() && capacity_items > 0.0) {
        return Err(ModelError::InvalidParam(format!(
            "cache capacity must be positive, got {capacity_items}"
        )));
    }
    let zipf = memlat_dist::Zipf::new(keys, skew)?;
    if capacity_items >= keys as f64 {
        return Ok(0.0);
    }
    let pmf: Vec<f64> = (1..=keys).map(|i| zipf.pmf(i)).collect();
    let occupancy = |t: f64| -> f64 { pmf.iter().map(|&q| -(-q * t).exp_m1()).sum() };
    // Bracket the root: occupancy is 0 at T = 0 and → keys as T → ∞.
    let mut hi = 1.0 / pmf[pmf.len() - 1];
    while occupancy(hi) < capacity_items {
        hi *= 2.0;
        if !hi.is_finite() {
            return Err(ModelError::InvalidParam(
                "Che characteristic time diverged".into(),
            ));
        }
    }
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if occupancy(mid) < capacity_items {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-12 * hi {
            break;
        }
    }
    let t = 0.5 * (lo + hi);
    Ok(pmf.iter().map(|&q| q * (-q * t).exp()).sum())
}

/// Which asymptotic regime the database latency `E[T_D(N)]` is in as a
/// function of the miss ratio `r` (paper eq. 25).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbScalingRegime {
    /// Few keys per request: misses are rare events, `E[T_D(N)] = Θ(r)` —
    /// reducing the miss ratio pays off linearly.
    LinearInMissRatio,
    /// Many keys per request: misses are inevitable,
    /// `E[T_D(N)] = Θ(log r)` — reducing the miss ratio pays off only
    /// logarithmically.
    LogarithmicInMissRatio,
}

/// Classifies the regime of eq. 25 for the given fan-out and miss ratio.
///
/// The boundary is where misses stop being rare: we use
/// `P{K = 0} = (1−r)^N < ½` as the crossover (at least one key misses more
/// often than not).
///
/// # Examples
///
/// ```
/// use memlat_model::asymptotics::{db_scaling_regime, DbScalingRegime};
/// assert_eq!(db_scaling_regime(4, 0.01), DbScalingRegime::LinearInMissRatio);
/// assert_eq!(db_scaling_regime(10_000, 0.01), DbScalingRegime::LogarithmicInMissRatio);
/// ```
#[must_use]
pub fn db_scaling_regime(n: u64, r: f64) -> DbScalingRegime {
    if prob_no_miss(n, r) > 0.5 {
        DbScalingRegime::LinearInMissRatio
    } else {
        DbScalingRegime::LogarithmicInMissRatio
    }
}

/// Local elasticity `d ln f / d ln x` of a positive function, estimated by
/// central differences. An elasticity near 1 means `f = Θ(x)` locally;
/// elasticity falling like `1/ln x` indicates logarithmic growth.
///
/// Used by the experiments to verify the Θ-claims of eq. 25 and
/// `E[T_S(N)] = Θ(log N)` numerically.
///
/// # Examples
///
/// ```
/// use memlat_model::asymptotics::elasticity;
/// let e = elasticity(|x| 3.0 * x, 10.0);
/// assert!((e - 1.0).abs() < 1e-6);
/// ```
#[must_use]
pub fn elasticity<F: Fn(f64) -> f64>(f: F, x: f64) -> f64 {
    let h = 1e-4;
    let up = f(x * (1.0 + h)).max(f64::MIN_POSITIVE).ln();
    let dn = f(x * (1.0 - h)).max(f64::MIN_POSITIVE).ln();
    (up - dn) / ((1.0 + h).ln() - (1.0 - h).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::db_latency_mean;

    #[test]
    fn regimes_match_eq_25() {
        // Small N: linear.
        assert_eq!(
            db_scaling_regime(1, 0.01),
            DbScalingRegime::LinearInMissRatio
        );
        assert_eq!(
            db_scaling_regime(10, 0.01),
            DbScalingRegime::LinearInMissRatio
        );
        // Large N: logarithmic.
        assert_eq!(
            db_scaling_regime(1_000, 0.01),
            DbScalingRegime::LogarithmicInMissRatio
        );
        // Large r flips even small N.
        assert_eq!(
            db_scaling_regime(10, 0.5),
            DbScalingRegime::LogarithmicInMissRatio
        );
    }

    #[test]
    fn elasticity_identifies_power_laws() {
        assert!((elasticity(|x| x * x, 5.0) - 2.0).abs() < 1e-5);
        assert!((elasticity(|x| 7.0 / x, 3.0) + 1.0).abs() < 1e-5);
        // Logarithmic: elasticity ≈ 1/ln x, small.
        let e = elasticity(|x| x.ln(), 1e4);
        assert!(e < 0.15, "{e}");
    }

    #[test]
    fn asymptotic_matches_the_che_solver() {
        // The closed form must track the finite-population Che solution
        // wherever keyspace ≫ cache ≫ 1 — the regime the conformance
        // grid lives in.
        // The finite-size gap shrinks with keyspace and skew: the
        // asymptotic sits above the truncated-tail Che solution by a
        // factor that dies off as the tail mass beyond the key space
        // vanishes. These points bracket the conformance grid.
        for &(keys, skew, x, tol) in &[
            (1_000_000u64, 1.4f64, 2_000.0f64, 0.12f64),
            (1_000_000, 1.4, 5_000.0, 0.16),
            (1_000_000, 1.5, 5_000.0, 0.10),
            (4_000_000, 1.4, 5_000.0, 0.10),
            (4_000_000, 1.5, 10_000.0, 0.07),
            (500_000, 1.3, 2_000.0, 0.25),
        ] {
            let asy = lru_miss_ratio_asymptotic(keys, skew, x).unwrap();
            let che = che_miss_ratio(keys, skew, x).unwrap();
            let rel = (asy - che).abs() / che;
            assert!(
                rel < tol,
                "keys={keys} skew={skew} x={x}: asy={asy} che={che} rel={rel}"
            );
        }
    }

    #[test]
    fn asymptotic_power_law_exponent() {
        // m(x) ∝ x^{−(α−1)}: doubling the cache must scale the miss
        // ratio by exactly 2^{−(α−1)}.
        let a = lru_miss_ratio_asymptotic(1_000_000, 1.4, 4_000.0).unwrap();
        let b = lru_miss_ratio_asymptotic(1_000_000, 1.4, 8_000.0).unwrap();
        let ratio = b / a;
        let expect = 2f64.powf(-0.4);
        assert!((ratio - expect).abs() < 1e-12, "{ratio} vs {expect}");
    }

    #[test]
    fn cluster_form_is_insensitive_to_the_split() {
        let one = cluster_miss_ratio_asymptotic(2_000_000, 1.25, 1, 64_000.0).unwrap();
        let many = cluster_miss_ratio_asymptotic(2_000_000, 1.25, 64, 1_000.0).unwrap();
        assert_eq!(one, many);
    }

    #[test]
    fn miss_ratio_laws_reject_bad_params() {
        assert!(lru_miss_ratio_asymptotic(1_000, 1.0, 100.0).is_err());
        assert!(lru_miss_ratio_asymptotic(1_000, 0.9, 100.0).is_err());
        assert!(lru_miss_ratio_asymptotic(1_000, 1.2, 0.0).is_err());
        assert!(lru_miss_ratio_asymptotic(1_000, 1.2, f64::NAN).is_err());
        assert!(lru_miss_ratio_asymptotic(0, 1.2, 100.0).is_err());
        assert!(cluster_miss_ratio_asymptotic(1_000, 1.2, 0, 100.0).is_err());
        assert!(che_miss_ratio(1_000, 1.2, -5.0).is_err());
        // Cache covering the whole key space: no misses.
        assert_eq!(che_miss_ratio(1_000, 1.2, 2_000.0).unwrap(), 0.0);
        // Tiny caches clamp to at most 1.
        let m = lru_miss_ratio_asymptotic(1_000_000, 1.8, 1.0).unwrap();
        assert!(m <= 1.0);
    }

    #[test]
    fn che_solver_is_monotone_in_capacity() {
        let m1 = che_miss_ratio(100_000, 1.1, 1_000.0).unwrap();
        let m2 = che_miss_ratio(100_000, 1.1, 4_000.0).unwrap();
        let m3 = che_miss_ratio(100_000, 1.1, 16_000.0).unwrap();
        assert!(m1 > m2 && m2 > m3, "{m1} {m2} {m3}");
        assert!(m1 < 1.0 && m3 > 0.0);
    }

    #[test]
    fn db_latency_elasticity_matches_regime() {
        // Small N: elasticity in r near 1.
        let e_small = elasticity(|r| db_latency_mean(4, r, 1_000.0), 1e-3);
        assert!((e_small - 1.0).abs() < 0.05, "{e_small}");
        // Large N: elasticity in r far below 1.
        let e_large = elasticity(|r| db_latency_mean(100_000, r, 1_000.0), 1e-3);
        assert!(e_large < 0.35, "{e_large}");
    }
}
