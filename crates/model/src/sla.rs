//! SLA-driven capacity planning on top of Theorem 1 and Proposition 2.
//!
//! Operationalizes the paper's recommendations: given a latency budget
//! for the server stage, find the highest sustainable per-server rate,
//! the implied fleet size for a target aggregate load, and the headroom
//! to the latency cliff.

use crate::{
    cliff,
    params::{ArrivalPattern, ModelParams},
    server::ServerLatencyModel,
    ModelError,
};

/// A capacity plan for one workload shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPlan {
    /// Highest per-server key rate meeting the SLA (keys/s).
    pub max_rate_per_server: f64,
    /// Utilization at that rate.
    pub utilization_at_sla: f64,
    /// The cliff utilization `ρ_S(ξ)` for reference (Proposition 2).
    pub cliff_utilization: f64,
    /// Servers needed for the requested aggregate load.
    pub servers_needed: u64,
}

/// Parameters of a planning question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanningRequest {
    /// Arrival shape (burst degree etc.).
    pub arrival: ArrivalPattern,
    /// Concurrency probability `q`.
    pub concurrency: f64,
    /// Per-key service rate `μ_S`.
    pub service_rate: f64,
    /// Keys per request `N`.
    pub keys_per_request: u64,
    /// Server-stage latency budget: `E[T_S(N)] ≤ sla` (seconds).
    pub sla: f64,
    /// Aggregate load to place (keys/s).
    pub total_load: f64,
}

impl PlanningRequest {
    /// A request pre-filled with the paper's Facebook workload shape.
    #[must_use]
    pub fn facebook(sla: f64, total_load: f64) -> Self {
        Self {
            arrival: ArrivalPattern::GeneralizedPareto { xi: 0.15 },
            concurrency: 0.1,
            service_rate: 80_000.0,
            keys_per_request: 150,
            sla,
            total_load,
        }
    }
}

/// `E[T_S(N)]` for a single balanced server driven at `rate`, or `None`
/// when unstable.
fn latency_at(req: &PlanningRequest, rate: f64) -> Option<f64> {
    let params = ModelParams::builder()
        .servers(1)
        .keys_per_request(req.keys_per_request)
        .arrival(req.arrival)
        .key_rate_per_server(rate)
        .concurrency(req.concurrency)
        .service_rate(req.service_rate)
        .build()
        .ok()?;
    ServerLatencyModel::new(&params)
        .ok()
        .map(|m| m.expected_latency(req.keys_per_request))
}

/// Computes a [`CapacityPlan`] by bisecting the per-server rate against
/// the SLA.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParam`] when the SLA is unreachable even
/// at negligible load (budget below the no-queue service floor), or when
/// request parameters are invalid.
pub fn plan(req: &PlanningRequest) -> Result<CapacityPlan, ModelError> {
    if !(req.sla.is_finite() && req.sla > 0.0) {
        return Err(ModelError::InvalidParam(format!(
            "SLA must be positive, got {}",
            req.sla
        )));
    }
    if !(req.total_load.is_finite() && req.total_load > 0.0) {
        return Err(ModelError::InvalidParam(format!(
            "total load must be positive, got {}",
            req.total_load
        )));
    }
    let floor_rate = req.service_rate * 1e-4;
    let floor = latency_at(req, floor_rate)
        .ok_or_else(|| ModelError::InvalidParam("invalid planning parameters".into()))?;
    if floor > req.sla {
        return Err(ModelError::InvalidParam(format!(
            "SLA of {:.1} µs is below the no-queue floor of {:.1} µs",
            req.sla * 1e6,
            floor * 1e6
        )));
    }

    let (mut lo, mut hi) = (floor_rate, req.service_rate * 0.9999);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        match latency_at(req, mid) {
            Some(l) if l <= req.sla => lo = mid,
            _ => hi = mid,
        }
    }
    let max_rate = lo;
    let xi = req.arrival.burst_degree().unwrap_or(0.0);
    Ok(CapacityPlan {
        max_rate_per_server: max_rate,
        utilization_at_sla: max_rate / req.service_rate,
        cliff_utilization: cliff::cliff_utilization(xi, req.concurrency)?,
        servers_needed: (req.total_load / max_rate).ceil() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facebook_plan_is_reasonable() {
        let p = plan(&PlanningRequest::facebook(500e-6, 1_000_000.0)).unwrap();
        // From the capacity example: ~67 Kps per server, ~84% util, 15
        // servers.
        assert!(
            (p.max_rate_per_server / 1e3 - 67.0).abs() < 3.0,
            "{}",
            p.max_rate_per_server
        );
        assert!((p.utilization_at_sla - 0.84).abs() < 0.04);
        assert!(
            (14..=16).contains(&p.servers_needed),
            "{}",
            p.servers_needed
        );
        assert!((p.cliff_utilization - 0.77).abs() < 0.03);
    }

    #[test]
    fn tighter_sla_needs_more_servers() {
        let loose = plan(&PlanningRequest::facebook(800e-6, 1_000_000.0)).unwrap();
        let tight = plan(&PlanningRequest::facebook(250e-6, 1_000_000.0)).unwrap();
        assert!(tight.servers_needed > loose.servers_needed);
        assert!(tight.max_rate_per_server < loose.max_rate_per_server);
    }

    #[test]
    fn burstier_traffic_needs_more_servers() {
        let calm = plan(&PlanningRequest {
            arrival: ArrivalPattern::GeneralizedPareto { xi: 0.0 },
            ..PlanningRequest::facebook(500e-6, 1_000_000.0)
        })
        .unwrap();
        let bursty = plan(&PlanningRequest {
            arrival: ArrivalPattern::GeneralizedPareto { xi: 0.6 },
            ..PlanningRequest::facebook(500e-6, 1_000_000.0)
        })
        .unwrap();
        assert!(bursty.servers_needed > calm.servers_needed);
        assert!(bursty.cliff_utilization < calm.cliff_utilization);
    }

    #[test]
    fn impossible_sla_rejected() {
        // 1 µs budget is below even the bare service time (12.5 µs).
        let err = plan(&PlanningRequest::facebook(1e-6, 1_000_000.0));
        assert!(matches!(err, Err(ModelError::InvalidParam(_))));
        assert!(plan(&PlanningRequest::facebook(0.0, 1.0)).is_err());
        assert!(plan(&PlanningRequest::facebook(1e-3, -1.0)).is_err());
    }
}
