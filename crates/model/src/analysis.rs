//! §5.3 — quantitative factor comparison and optimization
//! recommendations.
//!
//! The paper's headline contribution beyond the formulas is a ranking:
//! *which* factor is worth optimizing, and by how much. This module turns
//! Theorem 1 into that ranking for a concrete configuration, following
//! the paper's three recommendations:
//!
//! 1. keep server utilization below the cliff `ρ_S(ξ)`;
//! 2. engage load balancing only when the heaviest server exceeds the
//!    cliff;
//! 3. reduce the keys-per-request fan-out `N` rather than chase a tiny
//!    miss ratio once `N` is large.

use std::fmt;

use crate::{
    asymptotics::{db_scaling_regime, DbScalingRegime},
    cliff,
    latency::LatencyEstimate,
    params::{ArrivalPattern, LoadDistribution, ModelParams},
    ModelError,
};

/// How much one factor, improved in isolation, would move the end-user
/// latency point estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorImpact {
    /// Human-readable factor name (matches the paper's Table 2).
    pub factor: &'static str,
    /// The improvement that was applied, described for reporting.
    pub change: String,
    /// Point-estimate latency before the change (seconds).
    pub before: f64,
    /// Point-estimate latency after the change (seconds).
    pub after: f64,
}

impl FactorImpact {
    /// Relative improvement, `(before − after)/before`.
    #[must_use]
    pub fn relative_gain(&self) -> f64 {
        if self.before <= 0.0 {
            0.0
        } else {
            (self.before - self.after) / self.before
        }
    }
}

impl fmt::Display for FactorImpact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:<28} {:>8.1} µs → {:>8.1} µs ({:+.1}%)",
            self.factor,
            self.change,
            self.before * 1e6,
            self.after * 1e6,
            -self.relative_gain() * 100.0
        )
    }
}

/// A recommendation derived from the model, in the spirit of §5.3.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Short headline.
    pub headline: String,
    /// Supporting quantitative detail.
    pub detail: String,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.headline, self.detail)
    }
}

/// Computes the latency impact of improving each factor of Table 2 in
/// isolation, sorted by descending gain.
///
/// The standard improvements are deliberately comparable in "effort":
/// halving the concurrency probability, halving the burst degree,
/// shedding 20% of the load, raising the service rate 20%, halving the
/// hot-server excess, halving the miss ratio, and halving `N`.
///
/// # Errors
///
/// Propagates estimation errors for the base configuration; factors whose
/// *improved* configuration still fails (cannot happen for improvements)
/// are skipped.
pub fn factor_impacts(params: &ModelParams) -> Result<Vec<FactorImpact>, ModelError> {
    let base = LatencyEstimate::compute(params)?.point();
    let mut out = Vec::new();

    let mut push = |factor: &'static str, change: String, alt: Result<ModelParams, ModelError>| {
        if let Ok(p) = alt {
            if let Ok(est) = LatencyEstimate::compute(&p) {
                out.push(FactorImpact {
                    factor,
                    change,
                    before: base,
                    after: est.point(),
                });
            }
        }
    };

    // q: halve the concurrency probability.
    {
        let q = params.concurrency();
        let alt = rebuild(params, |b| b.concurrency(q / 2.0));
        push("concurrency q", format!("q: {q} → {}", q / 2.0), alt);
    }
    // ξ: halve the burst degree when the arrival law exposes one.
    if let Some(xi) = params.arrival().burst_degree() {
        if xi > 0.0 {
            let alt = rebuild(params, |b| {
                b.arrival(ArrivalPattern::GeneralizedPareto { xi: xi / 2.0 })
            });
            push("burst degree ξ", format!("ξ: {xi} → {}", xi / 2.0), alt);
        }
    }
    // λ: shed 20% of the load.
    {
        let lam = params.total_key_rate();
        let alt = rebuild(params, |b| b.total_key_rate(lam * 0.8));
        push("arrival rate λ", "Λ → 0.8·Λ".to_string(), alt);
    }
    // μ_S: 20% faster servers.
    {
        let mu = params.service_rate();
        let alt = rebuild(params, |b| b.service_rate(mu * 1.2));
        push("service rate μ_S", "μ_S → 1.2·μ_S".to_string(), alt);
    }
    // p1: halve the hot server's excess over balanced.
    {
        let m = params.servers();
        if let Ok(p1) = params.load().p1(m) {
            let balanced = 1.0 / m as f64;
            if p1 > balanced + 1e-9 {
                let new_p1 = balanced + (p1 - balanced) / 2.0;
                let alt = rebuild(params, |b| {
                    b.load(LoadDistribution::HotServer { p1: new_p1 })
                });
                push(
                    "load imbalance p1",
                    format!("p1: {p1:.2} → {new_p1:.2}"),
                    alt,
                );
            }
        }
    }
    // r: halve the miss ratio.
    {
        let r = params.miss_ratio();
        if r > 0.0 {
            let alt = params.with_miss_ratio(r / 2.0);
            push("miss ratio r", format!("r: {r} → {}", r / 2.0), alt);
        }
    }
    // N: halve the fan-out.
    {
        let n = params.keys_per_request();
        if n > 1 {
            let alt = Ok(params.with_keys_per_request(n / 2));
            push("keys per request N", format!("N: {n} → {}", n / 2), alt);
        }
    }

    out.sort_by(|a, b| b.relative_gain().total_cmp(&a.relative_gain()));
    Ok(out)
}

fn rebuild(
    params: &ModelParams,
    f: impl FnOnce(crate::params::ModelParamsBuilder) -> crate::params::ModelParamsBuilder,
) -> Result<ModelParams, ModelError> {
    let b = ModelParams::builder()
        .keys_per_request(params.keys_per_request())
        .servers(params.servers())
        .load(params.load().clone())
        .arrival(params.arrival())
        .total_key_rate(params.total_key_rate())
        .concurrency(params.concurrency())
        .service_rate(params.service_rate())
        .miss_ratio(params.miss_ratio())
        .db_service_rate(params.db_service_rate())
        .network_latency(params.network_latency());
    f(b).build()
}

/// Produces the paper's §5.3-style recommendations for a configuration.
///
/// # Errors
///
/// Propagates estimation errors.
pub fn recommendations(params: &ModelParams) -> Result<Vec<Recommendation>, ModelError> {
    let mut recs = Vec::new();
    let xi = params.arrival().burst_degree().unwrap_or(0.0);
    let cliff = cliff::cliff_utilization(xi, params.concurrency())?;
    let peak = params.peak_utilization()?;
    let mean_util = params.total_key_rate() / (params.servers() as f64 * params.service_rate());

    // Recommendation 1: utilization headroom.
    if peak > cliff {
        recs.push(Recommendation {
            headline: "reduce peak server utilization".into(),
            detail: format!(
                "heaviest server runs at {:.0}% utilization, beyond the latency cliff \
                 ρ_S(ξ={xi}) ≈ {:.0}%; add capacity or shed load",
                peak * 100.0,
                cliff * 100.0
            ),
        });
    } else {
        recs.push(Recommendation {
            headline: "utilization is below the cliff".into(),
            detail: format!(
                "heaviest server at {:.0}% vs cliff {:.0}%; {:.0} percentage points of \
                 headroom remain before latency degrades sharply",
                peak * 100.0,
                cliff * 100.0,
                (cliff - peak) * 100.0
            ),
        });
    }

    // Recommendation 2: load balancing only when the hot server crosses
    // the cliff while the average does not.
    if peak > cliff && mean_util < cliff {
        recs.push(Recommendation {
            headline: "enable load balancing".into(),
            detail: format!(
                "imbalance pushes the hot server past the cliff ({:.0}% > {:.0}%) while the \
                 average utilization is only {:.0}%; rebalancing alone restores headroom",
                peak * 100.0,
                cliff * 100.0,
                mean_util * 100.0
            ),
        });
    } else if peak <= cliff {
        recs.push(Recommendation {
            headline: "load balancing unnecessary".into(),
            detail: format!(
                "even the heaviest server ({:.0}%) sits below the cliff ({:.0}%); \
                 per the paper, balancing adds nothing until the cliff is crossed",
                peak * 100.0,
                cliff * 100.0
            ),
        });
    }

    // Recommendation 3: N vs r.
    match db_scaling_regime(params.keys_per_request(), params.miss_ratio()) {
        DbScalingRegime::LogarithmicInMissRatio => recs.push(Recommendation {
            headline: "shrink the request fan-out, not the miss ratio".into(),
            detail: format!(
                "with N = {} keys per request, misses are inevitable and E[T_D] grows only \
                 logarithmically as r falls; halving N buys more than halving r",
                params.keys_per_request()
            ),
        }),
        DbScalingRegime::LinearInMissRatio => recs.push(Recommendation {
            headline: "miss-ratio work pays off linearly".into(),
            detail: format!(
                "with N = {} keys per request, most requests see no miss at all; here \
                 E[T_D] = Θ(r) and cache improvements translate directly",
                params.keys_per_request()
            ),
        }),
    }

    Ok(recs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ModelParams {
        ModelParams::builder().build().unwrap()
    }

    #[test]
    fn impacts_cover_all_factors() {
        let impacts = factor_impacts(&base()).unwrap();
        let names: Vec<_> = impacts.iter().map(|i| i.factor).collect();
        for expect in [
            "concurrency q",
            "burst degree ξ",
            "arrival rate λ",
            "service rate μ_S",
            "miss ratio r",
            "keys per request N",
        ] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
        // Balanced base config ⇒ no p1 row.
        assert!(!names.contains(&"load imbalance p1"));
    }

    #[test]
    fn impacts_sorted_by_gain_and_all_improvements() {
        let impacts = factor_impacts(&base()).unwrap();
        let mut prev = f64::INFINITY;
        for i in &impacts {
            assert!(i.relative_gain() <= prev + 1e-12);
            assert!(
                i.after <= i.before + 1e-12,
                "{} made things worse",
                i.factor
            );
            prev = i.relative_gain();
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn unbalanced_config_reports_p1() {
        let p = ModelParams::builder()
            .load(LoadDistribution::HotServer { p1: 0.6 })
            .total_key_rate(80_000.0)
            .build()
            .unwrap();
        let impacts = factor_impacts(&p).unwrap();
        assert!(impacts.iter().any(|i| i.factor == "load imbalance p1"));
    }

    #[test]
    fn base_recommendations_match_paper_story() {
        // Base config: ρ = 78% — just past the ~75% cliff for ξ=0.15, so
        // the model recommends reducing utilization; and N = 150 is the
        // logarithmic regime, so it recommends reducing N over r.
        let recs = recommendations(&base()).unwrap();
        let text = recs
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("reduce peak server utilization"), "{text}");
        assert!(text.contains("fan-out"), "{text}");
    }

    #[test]
    fn light_load_recommends_nothing_drastic() {
        let p = ModelParams::builder()
            .key_rate_per_server(20_000.0)
            .build()
            .unwrap();
        let recs = recommendations(&p).unwrap();
        let text = recs
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("below the cliff"), "{text}");
        assert!(text.contains("load balancing unnecessary"), "{text}");
    }

    #[test]
    fn small_fanout_flips_db_recommendation() {
        let p = ModelParams::builder().keys_per_request(4).build().unwrap();
        let recs = recommendations(&p).unwrap();
        let text = recs
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("linearly"), "{text}");
    }

    #[test]
    fn n_is_the_dominant_factor_in_base_config() {
        // The paper's second insight: with numerous keys and tiny r,
        // halving N beats halving r.
        let impacts = factor_impacts(&base()).unwrap();
        let gain = |name: &str| {
            impacts
                .iter()
                .find(|i| i.factor == name)
                .map(|i| i.relative_gain())
                .unwrap()
        };
        assert!(gain("keys per request N") > gain("miss ratio r"));
    }
}
