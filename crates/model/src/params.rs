//! Model parameters — the factors of the paper's Table 2, as one value
//! object.

use memlat_dist::{
    Continuous, Deterministic, Exponential, Gamma, GapLaw, GeneralizedPareto, Hyperexponential,
    Uniform,
};

use crate::{latency::LatencyEstimate, ModelError};

/// The arrival pattern of key batches at a memcached server.
///
/// All variants describe the *shape* of the inter-batch gap `T_X`; the
/// rate is supplied separately so sweeps can vary load and shape
/// independently (the scale-invariance behind Proposition 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Poisson arrivals (exponential gaps) — the paper's `ξ = 0` case.
    Poisson,
    /// Generalized Pareto gaps with burst degree `ξ ∈ [0, 1)` — the
    /// Facebook workload (paper eq. 24; `ξ = 0.15` measured).
    GeneralizedPareto {
        /// Burst degree `ξ`.
        xi: f64,
    },
    /// Perfectly paced arrivals (deterministic gaps) — least bursty.
    Deterministic,
    /// Erlang-`k` gaps — smoother than Poisson, burstier than
    /// deterministic.
    Erlang {
        /// Number of exponential phases.
        k: u32,
    },
    /// Uniform gaps on `[0, 2/λ]`.
    Uniform,
    /// Two-phase hyperexponential gaps with the given squared coefficient
    /// of variation (`scv > 1`) — burstier than Poisson with a closed-form
    /// transform.
    Hyperexponential {
        /// Squared coefficient of variation of the gap.
        scv: f64,
    },
}

impl ArrivalPattern {
    /// Materializes the inter-batch gap distribution with mean `1/rate`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParam`] if `rate ≤ 0` or the pattern's
    /// own parameter is out of range.
    pub fn interarrival(&self, rate: f64) -> Result<Box<dyn Continuous>, ModelError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ModelError::InvalidParam(format!(
                "arrival rate must be positive, got {rate}"
            )));
        }
        Ok(match self {
            ArrivalPattern::Poisson => Box::new(Exponential::new(rate)?),
            ArrivalPattern::GeneralizedPareto { xi } => {
                Box::new(GeneralizedPareto::facebook(*xi, rate)?)
            }
            ArrivalPattern::Deterministic => Box::new(Deterministic::new(1.0 / rate)?),
            ArrivalPattern::Erlang { k } => Box::new(Gamma::erlang(*k, 1.0 / rate)?),
            ArrivalPattern::Uniform => Box::new(Uniform::with_mean(1.0 / rate)?),
            ArrivalPattern::Hyperexponential { scv } => {
                Box::new(Hyperexponential::with_mean_scv(1.0 / rate, *scv)?)
            }
        })
    }

    /// Materializes the gap distribution as a [`GapLaw`] — the closed
    /// enum the simulator's hot path samples without virtual dispatch.
    ///
    /// Draws are bit-identical to the boxed law from
    /// [`ArrivalPattern::interarrival`] with the same RNG state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParam`] if `rate ≤ 0` or the pattern's
    /// own parameter is out of range.
    pub fn gap_law(&self, rate: f64) -> Result<GapLaw, ModelError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ModelError::InvalidParam(format!(
                "arrival rate must be positive, got {rate}"
            )));
        }
        Ok(match self {
            ArrivalPattern::Poisson => GapLaw::from(Exponential::new(rate)?),
            ArrivalPattern::GeneralizedPareto { xi } => {
                GapLaw::from(GeneralizedPareto::facebook(*xi, rate)?)
            }
            ArrivalPattern::Deterministic => GapLaw::from(Deterministic::new(1.0 / rate)?),
            ArrivalPattern::Erlang { k } => GapLaw::from(Gamma::erlang(*k, 1.0 / rate)?),
            ArrivalPattern::Uniform => GapLaw::from(Uniform::with_mean(1.0 / rate)?),
            ArrivalPattern::Hyperexponential { scv } => {
                GapLaw::from(Hyperexponential::with_mean_scv(1.0 / rate, *scv)?)
            }
        })
    }

    /// The paper's burst degree `ξ` when the pattern is Generalized
    /// Pareto; 0 for Poisson; `None` for shapes outside that family.
    #[must_use]
    pub fn burst_degree(&self) -> Option<f64> {
        match self {
            ArrivalPattern::Poisson => Some(0.0),
            ArrivalPattern::GeneralizedPareto { xi } => Some(*xi),
            _ => None,
        }
    }
}

/// How total key load spreads across the `M` memcached servers — the
/// paper's `{p_j}` with `Σ p_j = 1`.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadDistribution {
    /// Every server receives `1/M` of the keys.
    Balanced,
    /// The heaviest server receives `p1`; the remainder splits evenly
    /// (the shape of the paper's Fig. 10 sweep).
    HotServer {
        /// Load share of the heaviest server, `1/M ≤ p1 < 1`.
        p1: f64,
    },
    /// Fully explicit shares (must sum to 1).
    Custom(Vec<f64>),
}

impl LoadDistribution {
    /// Resolves to an explicit probability vector of length `m`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParam`] if the shares are
    /// inconsistent with `m` servers or do not sum to 1.
    pub fn shares(&self, m: usize) -> Result<Vec<f64>, ModelError> {
        if m == 0 {
            return Err(ModelError::InvalidParam("need at least one server".into()));
        }
        match self {
            LoadDistribution::Balanced => Ok(vec![1.0 / m as f64; m]),
            LoadDistribution::HotServer { p1 } => {
                if m == 1 {
                    if (*p1 - 1.0).abs() > 1e-12 {
                        return Err(ModelError::InvalidParam(
                            "single server must carry the whole load".into(),
                        ));
                    }
                    return Ok(vec![1.0]);
                }
                if !(p1.is_finite() && *p1 >= 1.0 / m as f64 && *p1 < 1.0) {
                    return Err(ModelError::InvalidParam(format!(
                        "hot-server share must be in [1/M, 1), got {p1}"
                    )));
                }
                let rest = (1.0 - p1) / (m - 1) as f64;
                let mut v = vec![rest; m];
                v[0] = *p1;
                Ok(v)
            }
            LoadDistribution::Custom(p) => {
                if p.len() != m {
                    return Err(ModelError::InvalidParam(format!(
                        "expected {m} shares, got {}",
                        p.len()
                    )));
                }
                let sum: f64 = p.iter().sum();
                if (sum - 1.0).abs() > 1e-9 {
                    return Err(ModelError::InvalidParam(format!(
                        "shares must sum to 1, got {sum}"
                    )));
                }
                for &x in p {
                    if !(x.is_finite() && (0.0..=1.0).contains(&x)) {
                        return Err(ModelError::InvalidParam(format!("share out of range: {x}")));
                    }
                }
                Ok(p.clone())
            }
        }
    }

    /// The largest share `p1 = max_j p_j` once resolved for `m` servers.
    ///
    /// # Errors
    ///
    /// Same as [`LoadDistribution::shares`].
    pub fn p1(&self, m: usize) -> Result<f64, ModelError> {
        Ok(self.shares(m)?.into_iter().fold(0.0, f64::max))
    }
}

/// All factors of the memcached latency model (paper Table 2):
///
/// | symbol | field |
/// |---|---|
/// | `N`   | `keys_per_request` |
/// | `M`   | `servers` |
/// | `{p_j}` | `load` |
/// | `q`   | `concurrency` |
/// | shape of `T_X` | `arrival` |
/// | `λ` (total `Λ = Σ λ_j`) | `total_key_rate` |
/// | `μ_S` | `service_rate` |
/// | `r`   | `miss_ratio` |
/// | `μ_D` | `db_service_rate` |
/// | `T_N` | `network_latency` |
///
/// Construct with [`ModelParams::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    n_keys: u64,
    servers: usize,
    load: LoadDistribution,
    arrival: ArrivalPattern,
    total_key_rate: f64,
    concurrency: f64,
    service_rate: f64,
    miss_ratio: f64,
    db_service_rate: f64,
    network_latency: f64,
}

impl ModelParams {
    /// Starts a builder with the paper's defaults for the Facebook
    /// workload (everything except rates and counts must still be set or
    /// inherited).
    #[must_use]
    pub fn builder() -> ModelParamsBuilder {
        ModelParamsBuilder::default()
    }

    /// Number of keys an end-user request fans out into (`N`).
    #[must_use]
    pub fn keys_per_request(&self) -> u64 {
        self.n_keys
    }

    /// Number of memcached servers (`M`).
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The load distribution `{p_j}`.
    #[must_use]
    pub fn load(&self) -> &LoadDistribution {
        &self.load
    }

    /// The arrival pattern (shape of the batch gap law).
    #[must_use]
    pub fn arrival(&self) -> ArrivalPattern {
        self.arrival
    }

    /// Aggregate key arrival rate `Λ` across all servers (keys/s).
    #[must_use]
    pub fn total_key_rate(&self) -> f64 {
        self.total_key_rate
    }

    /// Key arrival rate at server `j`: `λ_j = p_j·Λ`.
    ///
    /// # Errors
    ///
    /// Propagates share-resolution errors.
    pub fn key_rate_at(&self, j: usize) -> Result<f64, ModelError> {
        let shares = self.load.shares(self.servers)?;
        shares
            .get(j)
            .map(|p| p * self.total_key_rate)
            .ok_or_else(|| ModelError::InvalidParam(format!("no server {j}")))
    }

    /// Concurrency probability `q`.
    #[must_use]
    pub fn concurrency(&self) -> f64 {
        self.concurrency
    }

    /// Per-key service rate at memcached servers `μ_S` (keys/s).
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Cache miss ratio `r`.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        self.miss_ratio
    }

    /// Database service rate `μ_D` (keys/s).
    #[must_use]
    pub fn db_service_rate(&self) -> f64 {
        self.db_service_rate
    }

    /// Constant network latency `T_N(N)` (seconds).
    #[must_use]
    pub fn network_latency(&self) -> f64 {
        self.network_latency
    }

    /// Utilization of the heaviest server: `ρ_1 = p_1·Λ/μ_S`.
    ///
    /// # Errors
    ///
    /// Propagates share-resolution errors.
    pub fn peak_utilization(&self) -> Result<f64, ModelError> {
        Ok(self.load.p1(self.servers)? * self.total_key_rate / self.service_rate)
    }

    /// Evaluates Theorem 1 for these parameters.
    ///
    /// Convenience for [`LatencyEstimate::compute`].
    ///
    /// # Errors
    ///
    /// Propagates queueing errors, e.g. instability of the heaviest
    /// server.
    pub fn estimate(&self) -> Result<LatencyEstimate, ModelError> {
        LatencyEstimate::compute(self)
    }

    /// Returns a copy with a different key fan-out `N`.
    #[must_use]
    pub fn with_keys_per_request(&self, n: u64) -> Self {
        let mut c = self.clone();
        c.n_keys = n.max(1);
        c
    }

    /// Returns a copy with a different miss ratio.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParam`] if `r ∉ [0, 1]`.
    pub fn with_miss_ratio(&self, r: f64) -> Result<Self, ModelError> {
        if !(r.is_finite() && (0.0..=1.0).contains(&r)) {
            return Err(ModelError::InvalidParam(format!(
                "miss ratio must be in [0,1], got {r}"
            )));
        }
        let mut c = self.clone();
        c.miss_ratio = r;
        Ok(c)
    }
}

/// Builder for [`ModelParams`].
///
/// Defaults correspond to the paper's §5.1 testbed: `M = 4` balanced
/// servers, `N = 150` keys, Facebook arrivals (`ξ = 0.15`, `q = 0.1`,
/// `λ = 62.5 Kps` per server), `μ_S = 80 Kps`, `r = 0.01`,
/// `μ_D = 1 Kps`, `T_N = 20 µs`.
#[derive(Debug, Clone)]
pub struct ModelParamsBuilder {
    n_keys: u64,
    servers: usize,
    load: LoadDistribution,
    arrival: ArrivalPattern,
    total_key_rate: Option<f64>,
    per_server_key_rate: Option<f64>,
    concurrency: f64,
    service_rate: f64,
    miss_ratio: f64,
    db_service_rate: f64,
    network_latency: f64,
}

impl Default for ModelParamsBuilder {
    fn default() -> Self {
        Self {
            n_keys: 150,
            servers: 4,
            load: LoadDistribution::Balanced,
            arrival: ArrivalPattern::GeneralizedPareto { xi: 0.15 },
            total_key_rate: None,
            per_server_key_rate: Some(62_500.0),
            concurrency: 0.1,
            service_rate: 80_000.0,
            miss_ratio: 0.01,
            db_service_rate: 1_000.0,
            network_latency: 20e-6,
        }
    }
}

impl ModelParamsBuilder {
    /// Sets the key fan-out `N` of an end-user request.
    #[must_use]
    pub fn keys_per_request(mut self, n: u64) -> Self {
        self.n_keys = n;
        self
    }

    /// Sets the number of memcached servers `M`.
    #[must_use]
    pub fn servers(mut self, m: usize) -> Self {
        self.servers = m;
        self
    }

    /// Sets the load distribution `{p_j}`.
    #[must_use]
    pub fn load(mut self, load: LoadDistribution) -> Self {
        self.load = load;
        self
    }

    /// Sets the arrival pattern.
    #[must_use]
    pub fn arrival(mut self, arrival: ArrivalPattern) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the aggregate key rate `Λ` (keys/s across all servers).
    /// Clears any per-server rate set earlier.
    #[must_use]
    pub fn total_key_rate(mut self, rate: f64) -> Self {
        self.total_key_rate = Some(rate);
        self.per_server_key_rate = None;
        self
    }

    /// Sets the per-server key rate under **balanced** load; `Λ` becomes
    /// `rate · M`. Clears any total rate set earlier.
    #[must_use]
    pub fn key_rate_per_server(mut self, rate: f64) -> Self {
        self.per_server_key_rate = Some(rate);
        self.total_key_rate = None;
        self
    }

    /// Sets the concurrency probability `q`.
    #[must_use]
    pub fn concurrency(mut self, q: f64) -> Self {
        self.concurrency = q;
        self
    }

    /// Sets the memcached per-key service rate `μ_S`.
    #[must_use]
    pub fn service_rate(mut self, mu_s: f64) -> Self {
        self.service_rate = mu_s;
        self
    }

    /// Sets the cache miss ratio `r`.
    #[must_use]
    pub fn miss_ratio(mut self, r: f64) -> Self {
        self.miss_ratio = r;
        self
    }

    /// Sets the database service rate `μ_D`.
    #[must_use]
    pub fn db_service_rate(mut self, mu_d: f64) -> Self {
        self.db_service_rate = mu_d;
        self
    }

    /// Sets the constant network latency (seconds).
    #[must_use]
    pub fn network_latency(mut self, t: f64) -> Self {
        self.network_latency = t;
        self
    }

    /// Validates and builds the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParam`] for out-of-range factors
    /// (including `per-server rate with unbalanced load`, which is
    /// ambiguous).
    pub fn build(self) -> Result<ModelParams, ModelError> {
        if self.n_keys == 0 {
            return Err(ModelError::InvalidParam(
                "keys per request must be at least 1".into(),
            ));
        }
        if self.servers == 0 {
            return Err(ModelError::InvalidParam("need at least one server".into()));
        }
        let total_key_rate = match (self.total_key_rate, self.per_server_key_rate) {
            (Some(t), None) => t,
            (None, Some(p)) => {
                if !matches!(self.load, LoadDistribution::Balanced) {
                    return Err(ModelError::InvalidParam(
                        "per-server key rate only makes sense under balanced load; \
                         use total_key_rate with an explicit distribution"
                            .into(),
                    ));
                }
                p * self.servers as f64
            }
            _ => {
                return Err(ModelError::InvalidParam(
                    "set exactly one of total_key_rate / key_rate_per_server".into(),
                ))
            }
        };
        if !(total_key_rate.is_finite() && total_key_rate > 0.0) {
            return Err(ModelError::InvalidParam(format!(
                "key rate must be positive, got {total_key_rate}"
            )));
        }
        if !(self.concurrency.is_finite() && (0.0..1.0).contains(&self.concurrency)) {
            return Err(ModelError::InvalidParam(format!(
                "concurrency must be in [0,1), got {}",
                self.concurrency
            )));
        }
        if !(self.service_rate.is_finite() && self.service_rate > 0.0) {
            return Err(ModelError::InvalidParam(format!(
                "service rate must be positive, got {}",
                self.service_rate
            )));
        }
        if !(self.miss_ratio.is_finite() && (0.0..=1.0).contains(&self.miss_ratio)) {
            return Err(ModelError::InvalidParam(format!(
                "miss ratio must be in [0,1], got {}",
                self.miss_ratio
            )));
        }
        if !(self.db_service_rate.is_finite() && self.db_service_rate > 0.0) {
            return Err(ModelError::InvalidParam(format!(
                "db service rate must be positive, got {}",
                self.db_service_rate
            )));
        }
        if !(self.network_latency.is_finite() && self.network_latency >= 0.0) {
            return Err(ModelError::InvalidParam(format!(
                "network latency must be non-negative, got {}",
                self.network_latency
            )));
        }
        // Validate the load distribution eagerly.
        self.load.shares(self.servers)?;
        Ok(ModelParams {
            n_keys: self.n_keys,
            servers: self.servers,
            load: self.load,
            arrival: self.arrival,
            total_key_rate,
            concurrency: self.concurrency,
            service_rate: self.service_rate,
            miss_ratio: self.miss_ratio,
            db_service_rate: self.db_service_rate,
            network_latency: self.network_latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ModelParams {
        ModelParams::builder().build().unwrap()
    }

    #[test]
    fn defaults_match_paper_section_5_1() {
        let p = base();
        assert_eq!(p.keys_per_request(), 150);
        assert_eq!(p.servers(), 4);
        assert_eq!(p.concurrency(), 0.1);
        assert_eq!(p.service_rate(), 80_000.0);
        assert_eq!(p.miss_ratio(), 0.01);
        assert_eq!(p.db_service_rate(), 1_000.0);
        assert_eq!(p.total_key_rate(), 250_000.0);
        assert!((p.key_rate_at(0).unwrap() - 62_500.0).abs() < 1e-9);
        assert!((p.peak_utilization().unwrap() - 0.781_25).abs() < 1e-9);
    }

    #[test]
    fn builder_validation() {
        assert!(ModelParams::builder().keys_per_request(0).build().is_err());
        assert!(ModelParams::builder().servers(0).build().is_err());
        assert!(ModelParams::builder().concurrency(1.0).build().is_err());
        assert!(ModelParams::builder().miss_ratio(1.5).build().is_err());
        assert!(ModelParams::builder()
            .network_latency(-1.0)
            .build()
            .is_err());
        assert!(ModelParams::builder()
            .key_rate_per_server(-5.0)
            .build()
            .is_err());
        // per-server rate + unbalanced load is ambiguous.
        assert!(ModelParams::builder()
            .load(LoadDistribution::HotServer { p1: 0.75 })
            .build()
            .is_err());
        assert!(ModelParams::builder()
            .load(LoadDistribution::HotServer { p1: 0.75 })
            .total_key_rate(80_000.0)
            .build()
            .is_ok());
    }

    #[test]
    fn load_distribution_shapes() {
        assert_eq!(LoadDistribution::Balanced.shares(4).unwrap(), vec![0.25; 4]);
        let hot = LoadDistribution::HotServer { p1: 0.7 }.shares(4).unwrap();
        assert!((hot[0] - 0.7).abs() < 1e-12);
        assert!((hot[1] - 0.1).abs() < 1e-12);
        assert!((hot.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(LoadDistribution::HotServer { p1: 0.1 }.shares(4).is_err()); // below 1/M
        assert!(LoadDistribution::Custom(vec![0.5, 0.4]).shares(2).is_err()); // sum != 1
        assert!(LoadDistribution::Custom(vec![0.5, 0.5]).shares(3).is_err()); // wrong len
        assert!((LoadDistribution::HotServer { p1: 0.7 }.p1(4).unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn arrival_patterns_materialize_with_mean() {
        let rate = 1_000.0;
        for pat in [
            ArrivalPattern::Poisson,
            ArrivalPattern::GeneralizedPareto { xi: 0.3 },
            ArrivalPattern::Deterministic,
            ArrivalPattern::Erlang { k: 4 },
            ArrivalPattern::Uniform,
            ArrivalPattern::Hyperexponential { scv: 4.0 },
        ] {
            let d = pat.interarrival(rate).unwrap();
            assert!((d.mean() - 1e-3).abs() < 1e-12, "{pat:?}");
        }
        assert!(ArrivalPattern::Poisson.interarrival(0.0).is_err());
        assert!(ArrivalPattern::GeneralizedPareto { xi: 1.5 }
            .interarrival(1.0)
            .is_err());
    }

    #[test]
    fn burst_degree_mapping() {
        assert_eq!(ArrivalPattern::Poisson.burst_degree(), Some(0.0));
        assert_eq!(
            ArrivalPattern::GeneralizedPareto { xi: 0.6 }.burst_degree(),
            Some(0.6)
        );
        assert_eq!(ArrivalPattern::Deterministic.burst_degree(), None);
    }

    #[test]
    fn with_modifiers() {
        let p = base();
        assert_eq!(p.with_keys_per_request(10).keys_per_request(), 10);
        assert_eq!(p.with_keys_per_request(0).keys_per_request(), 1);
        assert!(p.with_miss_ratio(2.0).is_err());
        assert_eq!(p.with_miss_ratio(0.05).unwrap().miss_ratio(), 0.05);
    }
}
