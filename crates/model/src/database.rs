//! `E[T_D(N)]` — processing latency at the database (paper §4.4).

use memlat_dist::{Binomial, Discrete};
use memlat_numerics::special::harmonic;

/// Probability that none of the `N` keys miss: `P{K = 0} = (1 − r)^N`
/// (paper eq. 15).
///
/// # Examples
///
/// ```
/// let p = memlat_model::database::prob_no_miss(150, 0.01);
/// assert!((p - 0.99f64.powi(150)).abs() < 1e-12);
/// ```
#[must_use]
pub fn prob_no_miss(n: u64, r: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&r));
    (1.0 - r).powi(n.min(i32::MAX as u64) as i32)
}

/// Expected number of missed keys given at least one miss (paper eq. 18):
/// `E[K | K > 0] = N·r / (1 − (1−r)^N)`.
#[must_use]
pub fn mean_misses_given_any(n: u64, r: f64) -> f64 {
    let p_any = 1.0 - prob_no_miss(n, r);
    if p_any <= 0.0 {
        0.0
    } else {
        n as f64 * r / p_any
    }
}

/// The paper's estimate of the expected database stage latency (eq. 23):
///
/// ```text
/// E[T_D(N)] ≈ (1 − (1−r)^N)/μ_D · ln( N·r / (1 − (1−r)^N) + 1 )
/// ```
///
/// # Panics
///
/// Debug-panics if `r ∉ [0, 1]` or `mu_d ≤ 0`.
///
/// # Examples
///
/// Table 3's value (`N = 150`, `r = 0.01`, `1/μ_D = 1 ms`):
///
/// ```
/// let t = memlat_model::database::db_latency_mean(150, 0.01, 1_000.0);
/// assert!((t - 836e-6).abs() < 2e-6);
/// ```
#[must_use]
pub fn db_latency_mean(n: u64, r: f64, mu_d: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&r));
    debug_assert!(mu_d > 0.0);
    if r == 0.0 || n == 0 {
        return 0.0;
    }
    let p_any = 1.0 - prob_no_miss(n, r);
    if p_any <= 0.0 {
        return 0.0;
    }
    p_any / mu_d * (n as f64 * r / p_any + 1.0).ln()
}

/// The paper's conditional estimate `E[T_D(N) | K]` (eq. 21):
/// `ln(K + 1)/μ_D`.
#[must_use]
pub fn db_latency_given_misses(k: u64, mu_d: f64) -> f64 {
    debug_assert!(mu_d > 0.0);
    (k as f64 + 1.0).ln() / mu_d
}

/// **Exact** expected maximum of `K` i.i.d. `Exp(μ_D)` variables:
/// `H_K/μ_D` (harmonic number) — the quantity eq. 21 approximates by
/// `ln(K+1)/μ_D`.
#[must_use]
pub fn db_latency_given_misses_exact(k: u64, mu_d: f64) -> f64 {
    debug_assert!(mu_d > 0.0);
    harmonic(k) / mu_d
}

/// **Exact** (under the model) expected database stage latency:
/// `E[T_D(N)] = Σ_K P{K = k}·H_k/μ_D` with `K ~ Bin(N, r)`.
///
/// This is the extension the paper's Fig. 11 gap motivates: the residual
/// between this value and [`db_latency_mean`] is the error of the
/// `ln(K+1)` and `E[K|K>0]` approximations, not of the queueing model.
///
/// The binomial sum is truncated ten standard deviations above the mean
/// (tail mass < 1e-20).
///
/// # Examples
///
/// ```
/// use memlat_model::database::{db_latency_mean, db_latency_mean_exact};
/// let approx = db_latency_mean(150, 0.01, 1_000.0);
/// let exact = db_latency_mean_exact(150, 0.01, 1_000.0);
/// // Eq. 23's approximation error stays within ~35% (worst near N·r ≈ 0.1).
/// assert!((approx - exact).abs() / exact < 0.35);
/// ```
#[must_use]
pub fn db_latency_mean_exact(n: u64, r: f64, mu_d: f64) -> f64 {
    debug_assert!(mu_d > 0.0);
    if r == 0.0 || n == 0 {
        return 0.0;
    }
    if r == 1.0 {
        return harmonic(n) / mu_d;
    }
    let dist = Binomial::new(n, r).expect("validated r");
    let mean = n as f64 * r;
    let sd = (n as f64 * r * (1.0 - r)).sqrt();
    let hi = ((mean + 10.0 * sd).ceil() as u64).min(n).max(8);
    let mut acc = 0.0;
    let mut mass = 0.0;
    for k in 0..=hi {
        let p = dist.pmf(k);
        mass += p;
        acc += p * harmonic(k);
    }
    // Assign the (negligible) untruncated tail the harmonic value at the
    // cut, keeping the estimate a slight lower... rather: upper-bound-safe.
    acc += (1.0 - mass).max(0.0) * harmonic(hi);
    acc / mu_d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_misses_no_latency() {
        assert_eq!(db_latency_mean(150, 0.0, 1_000.0), 0.0);
        assert_eq!(db_latency_mean(0, 0.5, 1_000.0), 0.0);
        assert_eq!(db_latency_mean_exact(150, 0.0, 1_000.0), 0.0);
    }

    #[test]
    fn table3_value() {
        // 0.7785/1000 · ln(1.5/0.7785 + 1) = 836 µs.
        let t = db_latency_mean(150, 0.01, 1_000.0);
        assert!((t * 1e6 - 836.0).abs() < 1.0, "{}", t * 1e6);
    }

    #[test]
    fn certainty_of_miss_reduces_to_log() {
        // r = 1: every key misses, E[T_D(N)] ≈ ln(N+1)/μ_D per eq. 23 and
        // exactly H_N/μ_D.
        let approx = db_latency_mean(100, 1.0, 1.0);
        assert!((approx - 101f64.ln()).abs() < 1e-12);
        let exact = db_latency_mean_exact(100, 1.0, 1.0);
        assert!((exact - harmonic(100)).abs() < 1e-12);
    }

    #[test]
    fn growth_is_linear_in_r_for_small_n() {
        // Eq. 25: for small N, E[T_D(N)] = Θ(r).
        let t1 = db_latency_mean(4, 0.001, 1_000.0);
        let t2 = db_latency_mean(4, 0.002, 1_000.0);
        let t4 = db_latency_mean(4, 0.004, 1_000.0);
        assert!((t2 / t1 - 2.0).abs() < 0.05, "{}", t2 / t1);
        assert!((t4 / t2 - 2.0).abs() < 0.05, "{}", t4 / t2);
    }

    #[test]
    fn growth_is_logarithmic_in_r_for_large_n() {
        // Eq. 25: for large N, E[T_D(N)] = Θ(log r): equal increments per
        // decade of r.
        let t1 = db_latency_mean(100_000, 1e-4, 1_000.0);
        let t2 = db_latency_mean(100_000, 1e-3, 1_000.0);
        let t3 = db_latency_mean(100_000, 1e-2, 1_000.0);
        let d1 = t2 - t1;
        let d2 = t3 - t2;
        assert!((d2 / d1 - 1.0).abs() < 0.05, "d1={d1} d2={d2}");
    }

    #[test]
    fn growth_is_logarithmic_in_n() {
        let t1 = db_latency_mean(10_000, 0.01, 1_000.0);
        let t2 = db_latency_mean(100_000, 0.01, 1_000.0);
        let t3 = db_latency_mean(1_000_000, 0.01, 1_000.0);
        let d1 = t2 - t1;
        let d2 = t3 - t2;
        assert!((d2 / d1 - 1.0).abs() < 0.05);
    }

    #[test]
    fn exact_below_approx_in_fig11_regime() {
        // The paper's Fig. 11 shows the experiment slightly below
        // Theorem 1 for moderate N — attributable to ln(K+1) ≥ H_K − γ…;
        // verify the exact value is close but not identical.
        for n in [10u64, 100, 1_000] {
            let a = db_latency_mean(n, 0.01, 1_000.0);
            let e = db_latency_mean_exact(n, 0.01, 1_000.0);
            assert!(e > 0.0);
            // The gap peaks near N·r ≈ 0.1 (Jensen on ln(K+1)): ~30%.
            assert!((a - e).abs() / e < 0.35, "n={n}: approx={a} exact={e}");
        }
    }

    #[test]
    fn conditional_pieces() {
        assert!((prob_no_miss(150, 0.01) - 0.221_4).abs() < 1e-3);
        let ek = mean_misses_given_any(150, 0.01);
        assert!((ek - 1.926_8).abs() < 1e-3, "{ek}");
        assert_eq!(db_latency_given_misses(0, 1.0), 0.0);
        assert_eq!(db_latency_given_misses_exact(0, 1.0), 0.0);
        assert!((db_latency_given_misses_exact(3, 2.0) - (11.0 / 6.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn large_n_exact_is_finite_and_fast() {
        let e = db_latency_mean_exact(1_000_000, 0.001, 1_000.0);
        // K ≈ 1000 misses: E[max] ≈ H_1000 ms ≈ 7.49 ms.
        assert!((e * 1e3 - 7.49).abs() < 0.1, "{}", e * 1e3);
    }
}
