//! The full end-user latency **distribution** — closing the gap Theorem 1
//! leaves open.
//!
//! Theorem 1 brackets `E[T(N)]` between `max{…}` and a sum. With two
//! facts established elsewhere in this reproduction, the entire law of
//! `T(N)` is available in closed form (under the model's independence
//! assumptions):
//!
//! 1. the per-key **server** latency at server `j` is exactly
//!    `Exp(η_j)`, `η_j = (1−δ_j)(1−q)μ_S` (the collapse identity of
//!    `memlat_queue::exact_key`);
//! 2. the per-key **database** latency is `0` with probability `1−r` and
//!    `Exp(μ_D)` otherwise (the paper's light-load eq. 19).
//!
//! Hence a key served by `j` has total latency CDF
//!
//! ```text
//! G_j(t) = (1−r)·(1 − e^{-η_j t}) + r·Hypo(η_j, μ_D)(t)
//! ```
//!
//! (`Hypo` the two-phase hypoexponential — sum of independent
//! exponentials), a random key mixes servers with weights `{p_j}`
//! exactly as eq. 11 prescribes, and the request completes at the
//! maximum of `N` i.i.d. such draws:
//!
//! ```text
//! P{T(N) ≤ t} = Π_j [G_j(t − T_net)]^{p_j·N}
//! ```
//!
//! From the CDF: any percentile, and the exact-in-model mean
//! `E[T(N)] = T_net + ∫₀^∞ (1 − Π_j G_j^{p_j N}) dt` — a *point* value
//! where the paper has only the `[836, 1222] µs` bracket, and one that
//! the simulator's measured `T(N)` should (and does) land on.

use memlat_queue::ExactKeyLatency;

use crate::{params::ModelParams, server::ServerLatencyModel, ModelError};

/// The analytic law of the end-user request latency `T(N)`.
///
/// # Examples
///
/// ```
/// use memlat_model::{ModelParams, RequestLatencyLaw};
///
/// # fn main() -> Result<(), memlat_model::ModelError> {
/// let params = ModelParams::builder().build()?;
/// let law = RequestLatencyLaw::new(&params)?;
/// let mean = law.mean();
/// // ~1.275 ms for the Table 3 configuration — NOTE: this exceeds
/// // Theorem 1's upper bound as printed in the paper (1.223 ms),
/// // because that bound inherits eq. 23's downward-biased database
/// // estimate. With the exact database term the bracket holds:
/// let est = params.estimate()?;
/// assert!(mean > est.total.upper); // the eq. 23 bracket is violated…
/// let upper_exact = est.network + est.server.upper + est.database_exact;
/// assert!(mean > est.database_exact && mean < upper_exact); // …the exact one holds
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RequestLatencyLaw {
    /// `(η_j, p_j)` per loaded server.
    servers: Vec<(f64, f64)>,
    miss_ratio: f64,
    mu_d: f64,
    network: f64,
    n: f64,
}

impl RequestLatencyLaw {
    /// Derives the law from the model parameters.
    ///
    /// # Errors
    ///
    /// Propagates queueing errors (instability etc.).
    pub fn new(params: &ModelParams) -> Result<Self, ModelError> {
        let model = ServerLatencyModel::new(params)?;
        let shares = params.load().shares(params.servers())?;
        let mut servers = Vec::new();
        for (idx, &p) in shares.iter().filter(|&&p| p > 0.0).enumerate() {
            let queue = model
                .queue(idx)
                .expect("loaded queues align with positive shares");
            // η_j: the per-key law at j is exactly Exp(η_j).
            debug_assert!(ExactKeyLatency::new(queue).mean() > 0.0);
            servers.push((queue.decay_rate(), p));
        }
        Ok(Self {
            servers,
            miss_ratio: params.miss_ratio(),
            mu_d: params.db_service_rate(),
            network: params.network_latency(),
            n: params.keys_per_request() as f64,
        })
    }

    /// Per-key total-latency CDF at a server with decay `eta`.
    fn per_key_cdf(&self, eta: f64, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let served = -(-eta * t).exp_m1();
        if self.miss_ratio == 0.0 {
            return served;
        }
        let mu = self.mu_d;
        let hypo = if (eta - mu).abs() < 1e-9 * eta.max(mu) {
            1.0 - (1.0 + eta * t) * (-eta * t).exp()
        } else {
            1.0 - (mu * (-eta * t).exp() - eta * (-mu * t).exp()) / (mu - eta)
        };
        (1.0 - self.miss_ratio) * served + self.miss_ratio * hypo
    }

    /// CDF of `T(N)` at time `t` (including the constant network part).
    #[must_use]
    pub fn cdf(&self, t: f64) -> f64 {
        let t = t - self.network;
        if t <= 0.0 {
            return 0.0;
        }
        let mut log_acc = 0.0;
        for &(eta, p) in &self.servers {
            let g = self.per_key_cdf(eta, t);
            if g <= 0.0 {
                return 0.0;
            }
            log_acc += p * self.n * g.ln();
        }
        log_acc.exp()
    }

    /// The `p`-th percentile of `T(N)`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 1)`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        // Bracket: slowest decay rate, tail level p^(1/N·p_min)-ish —
        // doubling search is simpler and robust.
        let slowest = self
            .servers
            .iter()
            .map(|&(eta, _)| eta)
            .fold(f64::INFINITY, f64::min)
            .min(if self.miss_ratio > 0.0 {
                self.mu_d
            } else {
                f64::INFINITY
            });
        let mut hi = self.network + (self.n.ln() + 5.0) / slowest;
        let mut guard = 0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                break;
            }
        }
        memlat_numerics::bisect(|t| self.cdf(t) - p, 0.0, hi, hi * 1e-12, 200).unwrap_or(hi)
    }

    /// The exact-in-model expectation
    /// `E[T(N)] = T_net + ∫₀^∞ (1 − CDF) dt`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        // Integrate the survival function of the network-free part up to
        // the far-tail quantile (mass beyond is < 1e-10 of the scale).
        let t_hi = self.quantile(1.0 - 1e-10) - self.network;
        let survival = |t: f64| 1.0 - self.cdf(t + self.network);
        self.network + memlat_numerics::adaptive_simpson(survival, 0.0, t_hi, t_hi * 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{LoadDistribution, ModelParams};

    fn base() -> ModelParams {
        ModelParams::builder().build().unwrap()
    }

    #[test]
    fn cdf_is_proper() {
        let law = RequestLatencyLaw::new(&base()).unwrap();
        assert_eq!(law.cdf(0.0), 0.0);
        assert_eq!(law.cdf(10e-6), 0.0); // below the network constant
        let mut prev = 0.0;
        for i in 1..100 {
            let t = i as f64 * 1e-4;
            let f = law.cdf(t);
            assert!((0.0..=1.0).contains(&f) && f >= prev, "t={t}");
            prev = f;
        }
        assert!(law.cdf(0.5) > 0.999_999);
    }

    #[test]
    fn mean_violates_eq23_bracket_but_not_the_exact_one() {
        // The headline of this module: the exact E[T(N)] (≈1275 µs)
        // exceeds Theorem 1's upper bound as the paper computes it
        // (1223 µs, using eq. 23's biased database term), while the
        // exact-database bracket contains it comfortably.
        let law = RequestLatencyLaw::new(&base()).unwrap();
        let est = base().estimate().unwrap();
        let mean = law.mean();
        assert!(mean > est.total.upper, "{mean} vs {}", est.total.upper);
        let lower_exact = est.network.max(est.server.lower).max(est.database_exact);
        let upper_exact = est.network + est.server.upper + est.database_exact;
        assert!(mean > lower_exact && mean < upper_exact, "{mean}");
        // And it matches the simulator's measured T(N) ≈ 1310 µs within
        // the shard-queueing slack the analytic law ignores (~3%).
        assert!((mean * 1e6 - 1310.0).abs() < 60.0, "{}", mean * 1e6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let law = RequestLatencyLaw::new(&base()).unwrap();
        for p in [0.1, 0.5, 0.9, 0.999] {
            let t = law.quantile(p);
            assert!((law.cdf(t) - p).abs() < 1e-7, "p={p}");
        }
    }

    #[test]
    fn zero_miss_ratio_reduces_to_server_law() {
        let params = base().with_miss_ratio(0.0).unwrap();
        let law = RequestLatencyLaw::new(&params).unwrap();
        let model = ServerLatencyModel::new(&params).unwrap();
        // Without a db stage, T(N) = T_net + fork-join of server laws.
        for p in [0.3, 0.7, 0.99] {
            let a = law.quantile(p);
            let b = params.network_latency() + model.fork_join_quantile(150, p);
            assert!((a - b).abs() < 1e-9, "p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn percentiles_widen_with_miss_ratio() {
        let lo = RequestLatencyLaw::new(&base().with_miss_ratio(0.001).unwrap()).unwrap();
        let hi = RequestLatencyLaw::new(&base().with_miss_ratio(0.05).unwrap()).unwrap();
        assert!(hi.quantile(0.99) > lo.quantile(0.99));
        assert!(hi.mean() > lo.mean());
    }

    #[test]
    fn unbalanced_load_shifts_the_law() {
        let hot = ModelParams::builder()
            .load(LoadDistribution::HotServer { p1: 0.7 })
            .total_key_rate(80_000.0)
            .build()
            .unwrap();
        let bal = ModelParams::builder()
            .total_key_rate(80_000.0)
            .build()
            .unwrap();
        let hot_mean = RequestLatencyLaw::new(&hot).unwrap().mean();
        let bal_mean = RequestLatencyLaw::new(&bal).unwrap().mean();
        assert!(hot_mean > bal_mean, "{hot_mean} vs {bal_mean}");
    }

    #[test]
    fn db_dominates_tail_at_base_config() {
        // With 1/μ_D = 1 ms ≫ server latencies, the p999 of T(N) is set
        // by the database stage: decay rate μ_D, so
        // p999 − p99 ≈ ln(10)/μ_D = 2.3 ms.
        let law = RequestLatencyLaw::new(&base()).unwrap();
        let gap = law.quantile(0.999) - law.quantile(0.99);
        assert!((gap - 10f64.ln() / 1_000.0).abs() / gap < 0.1, "gap={gap}");
    }
}
