//! Property-based tests of the latency model's structure.

use memlat_model::{
    database, ArrivalPattern, LatencyEstimate, LoadDistribution, ModelParams, ServerLatencyModel,
};
use proptest::prelude::*;

fn stable_params(rho: f64, q: f64, xi: f64, n: u64, r: f64) -> Option<ModelParams> {
    ModelParams::builder()
        .keys_per_request(n)
        .arrival(ArrivalPattern::GeneralizedPareto { xi })
        .key_rate_per_server(rho * 80_000.0)
        .concurrency(q)
        .miss_ratio(r)
        .build()
        .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1's structure holds for any stable configuration:
    /// ordered bounds, total = combination of parts, non-negative
    /// components.
    #[test]
    fn theorem1_structure(
        rho in 0.05f64..0.92,
        q in 0.0f64..0.5,
        xi in 0.0f64..0.6,
        n in 1u64..2000,
        r in 0.0f64..0.2,
    ) {
        let params = stable_params(rho, q, xi, n, r).unwrap();
        let est = LatencyEstimate::compute(&params).unwrap();
        prop_assert!(est.server.lower >= 0.0);
        prop_assert!(est.server.lower <= est.server.upper);
        // Product form within the closed form.
        prop_assert!(est.server_closed_form.lower <= est.server.lower + 1e-12);
        prop_assert!(est.server.upper <= est.server_closed_form.upper + 1e-12);
        // Total bounds assembled per Theorem 1.
        let expect_lo = est.network.max(est.server.lower).max(est.database);
        let expect_hi = est.network + est.server.upper + est.database;
        prop_assert!((est.total.lower - expect_lo).abs() < 1e-15);
        prop_assert!((est.total.upper - expect_hi).abs() < 1e-15);
        // Exact db value at least the eq. 23 estimate (Jensen).
        prop_assert!(est.database_exact + 1e-15 >= est.database);
    }

    /// E[T_S(N)] is monotone in each latency-increasing factor.
    #[test]
    fn server_latency_monotonicity(
        rho in 0.1f64..0.8,
        q in 0.0f64..0.4,
        xi in 0.0f64..0.5,
        n in 2u64..5000,
    ) {
        let base = ServerLatencyModel::new(&stable_params(rho, q, xi, n, 0.0).unwrap())
            .unwrap()
            .expected_latency(n);
        // More load.
        let hotter = ServerLatencyModel::new(&stable_params(rho + 0.05, q, xi, n, 0.0).unwrap())
            .unwrap()
            .expected_latency(n);
        prop_assert!(hotter > base, "rho: {base} !< {hotter}");
        // More concurrency.
        let burstier = ServerLatencyModel::new(&stable_params(rho, q + 0.1, xi, n, 0.0).unwrap())
            .unwrap()
            .expected_latency(n);
        prop_assert!(burstier > base, "q: {base} !< {burstier}");
        // More keys.
        let bigger = ServerLatencyModel::new(&stable_params(rho, q, xi, n, 0.0).unwrap())
            .unwrap()
            .expected_latency(2 * n);
        prop_assert!(bigger > base, "n: {base} !< {bigger}");
    }

    /// The fork-join CDF is a proper distribution and its quantiles
    /// invert it.
    #[test]
    fn fork_join_cdf_proper(
        rho in 0.1f64..0.85,
        n in 1u64..1000,
        p in 0.05f64..0.99,
    ) {
        let m = ServerLatencyModel::new(&stable_params(rho, 0.1, 0.15, n, 0.0).unwrap()).unwrap();
        let t = m.fork_join_quantile(n, p);
        prop_assert!(t > 0.0);
        prop_assert!((m.fork_join_cdf(n, t) - p).abs() < 1e-6, "p={p}");
    }

    /// Database estimate: monotone in both N and r; exact ≥ eq. 23.
    #[test]
    fn db_estimate_monotone(n in 1u64..100_000, r in 1e-5f64..0.5) {
        let base = database::db_latency_mean(n, r, 1_000.0);
        prop_assert!(database::db_latency_mean(n + n.max(1), r, 1_000.0) >= base);
        prop_assert!(database::db_latency_mean(n, (r * 1.5).min(1.0), 1_000.0) >= base);
        prop_assert!(database::db_latency_mean_exact(n, r, 1_000.0) + 1e-15 >= base);
    }

    /// Load distributions resolve consistently: shares sum to 1 and p1 is
    /// their maximum.
    #[test]
    fn load_shares_consistent(m in 1usize..64, p1_frac in 0.0f64..1.0) {
        let balanced = LoadDistribution::Balanced;
        let shares = balanced.shares(m).unwrap();
        prop_assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((balanced.p1(m).unwrap() - 1.0 / m as f64).abs() < 1e-12);

        if m >= 2 {
            let lo = 1.0 / m as f64;
            let p1 = lo + (0.999 - lo) * p1_frac;
            let hot = LoadDistribution::HotServer { p1 };
            let shares = hot.shares(m).unwrap();
            prop_assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!((hot.p1(m).unwrap() - p1.max(lo)).abs() < 1e-9);
        }
    }
}
