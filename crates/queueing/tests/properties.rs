//! Property-based tests of the queueing laws.

use memlat_dist::{Deterministic, Exponential, Gamma, GeneralizedPareto, Hyperexponential};
use memlat_queue::{solve_delta, ExactKeyLatency, GiM1, GixM1, MM1};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// δ ∈ (0, 1) and increases with utilization for every arrival law.
    #[test]
    fn delta_in_unit_interval_and_monotone(rho in 0.05f64..0.95, drho in 0.01f64..0.04) {
        let mu = 1.0;
        let laws: Vec<Box<dyn memlat_dist::Continuous>> = vec![
            Box::new(Exponential::new(rho).unwrap()),
            Box::new(Deterministic::new(1.0 / rho).unwrap()),
            Box::new(Gamma::erlang(3, 1.0 / rho).unwrap()),
            Box::new(Hyperexponential::with_mean_scv(1.0 / rho, 3.0).unwrap()),
            Box::new(GeneralizedPareto::facebook(0.3, rho).unwrap()),
        ];
        for law in laws {
            let d = solve_delta(law.as_ref(), mu).unwrap();
            prop_assert!(d > 0.0 && d < 1.0, "{law:?}: {d}");
        }
        // Monotonicity, spot-checked on the GPD law.
        if rho + drho < 0.98 {
            let d1 = solve_delta(&GeneralizedPareto::facebook(0.3, rho).unwrap(), mu).unwrap();
            let d2 =
                solve_delta(&GeneralizedPareto::facebook(0.3, rho + drho).unwrap(), mu).unwrap();
            prop_assert!(d2 > d1, "rho={rho}: {d2} !> {d1}");
        }
    }

    /// Proposition 2's scale invariance: δ(c·λ, c·μ) = δ(λ, μ).
    #[test]
    fn delta_scale_invariant(rho in 0.1f64..0.9, c in 0.01f64..100.0, xi in 0.0f64..0.8) {
        let d1 = solve_delta(&GeneralizedPareto::facebook(xi, rho).unwrap(), 1.0).unwrap();
        let d2 = solve_delta(&GeneralizedPareto::facebook(xi, c * rho).unwrap(), c).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-6, "xi={xi} rho={rho} c={c}: {d1} vs {d2}");
    }

    /// GI/M/1 waiting and sojourn laws are consistent: W ≤ T in every
    /// quantile, and the mean identities hold.
    #[test]
    fn gim1_laws_consistent(rho in 0.05f64..0.9, k in 0.01f64..0.99) {
        let q = GiM1::solve(&Exponential::new(rho).unwrap(), 1.0).unwrap();
        prop_assert!(q.waiting_quantile(k) <= q.sojourn_quantile(k) + 1e-12);
        prop_assert!((q.mean_sojourn() - (q.mean_wait() + 1.0 / q.decay_rate() * (1.0 - q.sigma()))).abs() < 1e-9);
        // CDFs are proper.
        for t in [0.0, 0.5, 2.0, 10.0] {
            let w = q.waiting_cdf(t);
            let s = q.sojourn_cdf(t);
            prop_assert!((0.0..=1.0).contains(&w));
            prop_assert!(s <= w + 1e-12, "sojourn CDF above waiting CDF at t={t}");
        }
    }

    /// The batch queue's per-key exact law equals its completion law
    /// (the collapse identity), for arbitrary parameters.
    #[test]
    fn exact_key_collapse(rho in 0.05f64..0.9, q in 0.0f64..0.7, xi in 0.0f64..0.8, t in 0.0f64..50.0) {
        let gaps = GeneralizedPareto::facebook(xi, (1.0 - q) * rho).unwrap();
        let queue = GixM1::new(&gaps, q, 1.0).unwrap();
        let exact = ExactKeyLatency::new(&queue);
        prop_assert!((exact.cdf(t) - queue.completion_time_cdf(t)).abs() < 1e-12);
        prop_assert!((exact.cdf(t) - exact.cdf_mixture_form(t)).abs() < 1e-9);
    }

    /// M/M/1 sanity: Little's law and the PASTA-consistent mean ordering.
    #[test]
    fn mm1_laws(lam in 0.01f64..0.99) {
        let q = MM1::new(lam, 1.0).unwrap();
        prop_assert!((q.mean_in_system() - lam * q.mean_sojourn()).abs() < 1e-9);
        prop_assert!(q.mean_wait() < q.mean_sojourn());
        prop_assert!((q.sojourn_cdf(q.sojourn_quantile(0.7)) - 0.7).abs() < 1e-9);
    }

    /// Burstier shapes (higher ξ) give larger δ at equal utilization.
    #[test]
    fn burstiness_increases_delta(rho in 0.2f64..0.9, xi in 0.05f64..0.7) {
        let base = solve_delta(&GeneralizedPareto::facebook(0.0, rho).unwrap(), 1.0).unwrap();
        let bursty = solve_delta(&GeneralizedPareto::facebook(xi, rho).unwrap(), 1.0).unwrap();
        prop_assert!(bursty > base - 1e-9, "xi={xi} rho={rho}: {bursty} vs {base}");
    }
}
