//! The M/M/1 queue — the paper's database stage.

use crate::QueueError;

/// A classic M/M/1 queue with arrival rate `λ` and service rate `μ`.
///
/// The paper formulates the cache-miss stage as M/M/1 and then exploits
/// that the database is heavily offloaded (`ρ ≪ 1`), approximating the
/// per-key database latency as `Exp(μ_D)` (eq. 19). Both the exact sojourn
/// law and that light-load approximation are provided.
///
/// # Examples
///
/// ```
/// use memlat_queue::MM1;
/// # fn main() -> Result<(), memlat_queue::QueueError> {
/// let db = MM1::new(25.0, 1_000.0)?;
/// assert!((db.utilization() - 0.025).abs() < 1e-12);
/// // Sojourn is Exp((1−ρ)μ): mean ≈ 1/μ at light load.
/// assert!((db.mean_sojourn() - 1.0 / 975.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1 {
    arrival_rate: f64,
    service_rate: f64,
}

impl MM1 {
    /// Creates a stable M/M/1 queue.
    ///
    /// # Errors
    ///
    /// [`QueueError::InvalidParam`] for non-positive rates;
    /// [`QueueError::Unstable`] when `λ ≥ μ`.
    pub fn new(arrival_rate: f64, service_rate: f64) -> Result<Self, QueueError> {
        if !(arrival_rate.is_finite() && arrival_rate >= 0.0) {
            return Err(QueueError::InvalidParam(format!(
                "arrival rate must be non-negative, got {arrival_rate}"
            )));
        }
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(QueueError::InvalidParam(format!(
                "service rate must be positive, got {service_rate}"
            )));
        }
        if arrival_rate >= service_rate {
            return Err(QueueError::Unstable {
                utilization: arrival_rate / service_rate,
            });
        }
        Ok(Self {
            arrival_rate,
            service_rate,
        })
    }

    /// Utilization `ρ = λ/μ`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Arrival rate `λ`.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Service rate `μ`.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Sojourn-time CDF: `1 − e^{-(1−ρ)μt}` (exact for M/M/1).
    #[must_use]
    pub fn sojourn_cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-(1.0 - self.utilization()) * self.service_rate * t).exp_m1()
        }
    }

    /// The paper's light-load approximation (eq. 19): `1 − e^{-μt}`,
    /// i.e. the sojourn law with queueing ignored.
    #[must_use]
    pub fn sojourn_cdf_light_load(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-self.service_rate * t).exp_m1()
        }
    }

    /// Mean sojourn time `1/((1−ρ)μ) = 1/(μ−λ)`.
    #[must_use]
    pub fn mean_sojourn(&self) -> f64 {
        1.0 / (self.service_rate - self.arrival_rate)
    }

    /// Mean waiting time `ρ/(μ−λ)`.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        self.utilization() / (self.service_rate - self.arrival_rate)
    }

    /// Mean number in system `ρ/(1−ρ)`.
    #[must_use]
    pub fn mean_in_system(&self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// `k`-th quantile of the sojourn time.
    ///
    /// # Panics
    ///
    /// Panics unless `k ∈ [0, 1)`.
    #[must_use]
    pub fn sojourn_quantile(&self, k: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&k),
            "quantile requires k in [0,1), got {k}"
        );
        -(1.0 - k).ln() / ((1.0 - self.utilization()) * self.service_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(MM1::new(-1.0, 1.0).is_err());
        assert!(MM1::new(1.0, 0.0).is_err());
        assert!(matches!(
            MM1::new(2.0, 1.0),
            Err(QueueError::Unstable { .. })
        ));
        assert!(matches!(
            MM1::new(1.0, 1.0),
            Err(QueueError::Unstable { .. })
        ));
    }

    #[test]
    fn textbook_values() {
        let q = MM1::new(3.0, 4.0).unwrap();
        assert_eq!(q.utilization(), 0.75);
        assert_eq!(q.mean_sojourn(), 1.0);
        assert_eq!(q.mean_wait(), 0.75);
        assert_eq!(q.mean_in_system(), 3.0);
    }

    #[test]
    fn littles_law() {
        let q = MM1::new(5.0, 8.0).unwrap();
        // L = λW
        assert!((q.mean_in_system() - q.arrival_rate() * q.mean_sojourn()).abs() < 1e-12);
    }

    #[test]
    fn light_load_approximation_converges() {
        // As ρ → 0 the exact and approximate sojourn laws coincide.
        let q = MM1::new(1.0, 1_000.0).unwrap();
        for t in [1e-4, 1e-3, 1e-2] {
            assert!(
                (q.sojourn_cdf(t) - q.sojourn_cdf_light_load(t)).abs() < 2e-3,
                "t={t}"
            );
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let q = MM1::new(2.0, 10.0).unwrap();
        for k in [0.1, 0.5, 0.99] {
            assert!((q.sojourn_cdf(q.sojourn_quantile(k)) - k).abs() < 1e-12);
        }
    }

    #[test]
    fn agrees_with_gi_m_1_solver() {
        use memlat_dist::Exponential;
        let gaps = Exponential::new(6.0).unwrap();
        let general = crate::GiM1::solve(&gaps, 10.0).unwrap();
        let closed = MM1::new(6.0, 10.0).unwrap();
        assert!((general.mean_sojourn() - closed.mean_sojourn()).abs() < 1e-6);
        for t in [0.05, 0.2, 1.0] {
            assert!(
                (general.sojourn_cdf(t) - closed.sojourn_cdf(t)).abs() < 1e-6,
                "t={t}"
            );
        }
    }

    #[test]
    fn zero_arrivals_allowed() {
        let q = MM1::new(0.0, 5.0).unwrap();
        assert_eq!(q.utilization(), 0.0);
        assert_eq!(q.mean_sojourn(), 0.2);
    }
}
