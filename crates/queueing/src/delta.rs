//! The GI/M/1 fixed point `δ = L_A((1−δ)μ)`.

use memlat_dist::Continuous;

use crate::QueueError;

/// Solves `δ = L_A((1−δ)μ)` for `δ ∈ (0, 1)`, where `L_A` is the
/// Laplace–Stieltjes transform of the inter-arrival law and `μ` the service
/// rate.
///
/// `δ` is the geometric decay parameter of the GI/M/1 queue-length
/// distribution: an arriving customer finds `n` customers with probability
/// `(1−δ)δⁿ`, the waiting time is `W(t) = 1 − δ e^{-(1−δ)μt}`, and the
/// sojourn time is `Exp((1−δ)μ)`. In the paper's notation this is the `δ`
/// of eq. (6) / Table 1 (with `μ` already including the batch factor
/// `(1−q)`).
///
/// The root is unique in `(0, 1)` exactly when the queue is stable
/// (`ρ = 1/(E[A]·μ) < 1`).
///
/// # Errors
///
/// * [`QueueError::Unstable`] when `ρ ≥ 1` (detected up front from the
///   mean inter-arrival gap).
/// * [`QueueError::InvalidParam`] when `μ ≤ 0` or the inter-arrival mean
///   is not positive and finite.
/// * [`QueueError::Solver`] if the bracketing solver fails (e.g. a
///   numerically hostile Laplace transform).
///
/// # Examples
///
/// Poisson arrivals reduce to M/M/1, where `δ = ρ` exactly:
///
/// ```
/// use memlat_dist::Exponential;
/// use memlat_queue::solve_delta;
///
/// # fn main() -> Result<(), memlat_queue::QueueError> {
/// let gaps = Exponential::new(50.0).map_err(memlat_queue::QueueError::from)?;
/// let delta = solve_delta(&gaps, 80.0)?;
/// assert!((delta - 50.0 / 80.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn solve_delta(interarrival: &dyn Continuous, service_rate: f64) -> Result<f64, QueueError> {
    if !(service_rate.is_finite() && service_rate > 0.0) {
        return Err(QueueError::InvalidParam(format!(
            "service rate must be positive, got {service_rate}"
        )));
    }
    let mean_gap = interarrival.mean();
    if !(mean_gap.is_finite() && mean_gap > 0.0) {
        return Err(QueueError::InvalidParam(format!(
            "inter-arrival mean must be positive and finite, got {mean_gap}"
        )));
    }
    let rho = 1.0 / (mean_gap * service_rate);
    if rho >= 1.0 {
        return Err(QueueError::Unstable { utilization: rho });
    }
    let delta = memlat_numerics::roots::unit_fixed_point(
        |d| interarrival.laplace((1.0 - d) * service_rate),
        1e-12,
    )?;
    Ok(delta.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::{Deterministic, Exponential, Gamma, GeneralizedPareto, Hyperexponential};

    #[test]
    fn poisson_delta_is_rho() {
        for rho in [0.1, 0.5, 0.781_25, 0.95] {
            let gaps = Exponential::new(rho * 100.0).unwrap();
            let d = solve_delta(&gaps, 100.0).unwrap();
            assert!((d - rho).abs() < 1e-8, "rho={rho} d={d}");
        }
    }

    #[test]
    fn d_m_1_reference_value() {
        // D/M/1 at ρ=0.5: δ solves δ = e^{-(1-δ)/ρ·...}: with gap d=2, μ=1:
        // δ = e^{-2(1-δ)} ⇒ δ ≈ 0.203188.
        let gaps = Deterministic::new(2.0).unwrap();
        let d = solve_delta(&gaps, 1.0).unwrap();
        assert!((d - 0.203_188_1).abs() < 1e-5, "d={d}");
    }

    #[test]
    fn erlang_between_deterministic_and_poisson() {
        // At equal ρ, burstier arrivals give larger δ:
        // D/M/1 < E4/M/1 < M/M/1 < H2/M/1 < GPD(ξ=0.5)/M/1.
        let mu = 1.0;
        let mean_gap = 1.25; // ρ = 0.8
        let d_det = solve_delta(&Deterministic::new(mean_gap).unwrap(), mu).unwrap();
        let d_erl = solve_delta(&Gamma::erlang(4, mean_gap).unwrap(), mu).unwrap();
        let d_exp = solve_delta(&Exponential::with_mean(mean_gap).unwrap(), mu).unwrap();
        let d_h2 =
            solve_delta(&Hyperexponential::with_mean_scv(mean_gap, 4.0).unwrap(), mu).unwrap();
        let d_gpd = solve_delta(&GeneralizedPareto::with_mean(0.5, mean_gap).unwrap(), mu).unwrap();
        assert!(d_det < d_erl, "{d_det} {d_erl}");
        assert!(d_erl < d_exp, "{d_erl} {d_exp}");
        assert!(d_exp < d_h2, "{d_exp} {d_h2}");
        assert!(d_h2 < d_gpd, "{d_h2} {d_gpd}");
    }

    #[test]
    fn unstable_queue_detected() {
        let gaps = Exponential::new(120.0).unwrap();
        match solve_delta(&gaps, 100.0) {
            Err(QueueError::Unstable { utilization }) => assert!((utilization - 1.2).abs() < 1e-12),
            other => panic!("expected instability, got {other:?}"),
        }
    }

    #[test]
    fn invalid_service_rate() {
        let gaps = Exponential::new(1.0).unwrap();
        assert!(matches!(
            solve_delta(&gaps, 0.0),
            Err(QueueError::InvalidParam(_))
        ));
        assert!(matches!(
            solve_delta(&gaps, f64::NAN),
            Err(QueueError::InvalidParam(_))
        ));
    }

    #[test]
    fn scale_invariance_proposition_2() {
        // Scaling time (rate c·λ, service c·μ) leaves δ unchanged — the
        // core of the paper's Proposition 2.
        let d1 = solve_delta(&GeneralizedPareto::facebook(0.3, 100.0).unwrap(), 125.0).unwrap();
        let d2 = solve_delta(&GeneralizedPareto::facebook(0.3, 1_000.0).unwrap(), 1_250.0).unwrap();
        let d3 = solve_delta(
            &GeneralizedPareto::facebook(0.3, 56_250.0).unwrap(),
            70_312.5,
        )
        .unwrap();
        assert!((d1 - d2).abs() < 1e-7, "{d1} {d2}");
        assert!((d1 - d3).abs() < 1e-7, "{d1} {d3}");
    }

    #[test]
    fn delta_increases_with_utilization() {
        let mut prev = 0.0;
        for lam in [10.0, 30.0, 50.0, 70.0, 90.0, 99.0] {
            let gaps = GeneralizedPareto::facebook(0.15, lam).unwrap();
            let d = solve_delta(&gaps, 100.0).unwrap();
            assert!(d > prev, "lam={lam} d={d} prev={prev}");
            prev = d;
        }
    }

    #[test]
    fn paper_table3_delta_value() {
        // Reverse-engineered from Table 3's T_S(N) band (351–366 µs with
        // ln(151)/((1-δ)(1-q)μ_S) = 366 µs): δ ≈ 0.81.
        let gaps = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
        let d = solve_delta(&gaps, 0.9 * 80_000.0).unwrap();
        assert!(
            (0.79..=0.83).contains(&d),
            "expected δ near 0.81 for the Facebook workload, got {d}"
        );
    }
}
