//! The paper's GI^X/M/1 batch-arrival queue (§3–§4.3.1).

use memlat_dist::Continuous;

use crate::{gim1::GiM1, QueueError};

/// The GI^X/M/1 queue of the memcached latency model.
///
/// Batches of keys arrive with general i.i.d. inter-batch gaps `T_X`; each
/// batch carries `X ~ Geometric` keys (`P{X=n} = q^{n-1}(1−q)`, the paper's
/// concurrency model); each key takes `Exp(μ_S)` service.
///
/// Per §3 of the paper, the *batch* service time — a geometric sum of
/// exponentials — is itself exponential with rate `(1−q)μ_S`, so the batch
/// process is a plain GI/M/1 queue with that service rate. The decay
/// parameter `δ` solves `δ = L_TX((1−δ)(1−q)μ_S)` (paper Table 1), and the
/// per-key processing latency `T_S` is sandwiched between the batch
/// queueing time `T_Q` (eq. 4) and the batch completion time `T_C` (eq. 5):
///
/// ```text
/// T_Q(t) = 1 − δ e^{-(1−δ)(1−q)μ_S t}   <   T_S   ≤   T_C(t) = 1 − e^{-(1−δ)(1−q)μ_S t}
/// ```
///
/// # Examples
///
/// ```
/// use memlat_dist::GeneralizedPareto;
/// use memlat_queue::GixM1;
///
/// # fn main() -> Result<(), memlat_queue::QueueError> {
/// let gaps = GeneralizedPareto::facebook(0.15, 56_250.0)
///     .map_err(memlat_queue::QueueError::from)?;
/// let queue = GixM1::new(&gaps, 0.1, 80_000.0)?;
/// let (lo, hi) = queue.key_latency_quantile_bounds(0.9);
/// assert!(lo <= hi);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GixM1 {
    batch: GiM1,
    q: f64,
    mu_s: f64,
    key_rate: f64,
}

impl GixM1 {
    /// Solves the batch queue.
    ///
    /// * `interarrival` — distribution of the batch gap `T_X`,
    /// * `q` — concurrency probability (mean batch size `1/(1−q)`),
    /// * `mu_s` — per-key service rate `μ_S`.
    ///
    /// The implied per-key arrival rate is `λ = E[X]/E[T_X] =
    /// 1/((1−q)·E[T_X])` and the utilization is `ρ = λ/μ_S`.
    ///
    /// # Errors
    ///
    /// [`QueueError::InvalidParam`] for `q ∉ [0,1)` or `μ_S ≤ 0`;
    /// [`QueueError::Unstable`] when `ρ ≥ 1`; solver errors propagate.
    pub fn new(interarrival: &dyn Continuous, q: f64, mu_s: f64) -> Result<Self, QueueError> {
        if !(q.is_finite() && (0.0..1.0).contains(&q)) {
            return Err(QueueError::InvalidParam(format!(
                "concurrency probability must be in [0,1), got {q}"
            )));
        }
        if !(mu_s.is_finite() && mu_s > 0.0) {
            return Err(QueueError::InvalidParam(format!(
                "service rate must be positive, got {mu_s}"
            )));
        }
        // Reduce to GI/M/1 with batch service rate (1−q)μ_S.
        let batch = GiM1::solve(interarrival, (1.0 - q) * mu_s)?;
        let key_rate = 1.0 / ((1.0 - q) * interarrival.mean());
        Ok(Self {
            batch,
            q,
            mu_s,
            key_rate,
        })
    }

    /// The decay parameter `δ` of Table 1.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.batch.sigma()
    }

    /// The concurrency probability `q`.
    #[must_use]
    pub fn concurrency(&self) -> f64 {
        self.q
    }

    /// Per-key service rate `μ_S`.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        self.mu_s
    }

    /// Per-key arrival rate `λ = E[X]/E[T_X]`.
    #[must_use]
    pub fn key_rate(&self) -> f64 {
        self.key_rate
    }

    /// Server utilization `ρ = λ/μ_S` (equals the batch utilization).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.key_rate / self.mu_s
    }

    /// The decay rate `(1−δ)(1−q)μ_S` shared by eqs. (4)–(9).
    #[must_use]
    pub fn decay_rate(&self) -> f64 {
        self.batch.decay_rate()
    }

    /// Batch queueing-time CDF `T_Q(t)` — the paper's eq. (4).
    #[must_use]
    pub fn queueing_time_cdf(&self, t: f64) -> f64 {
        self.batch.waiting_cdf(t)
    }

    /// Batch completion-time CDF `T_C(t)` — the paper's eq. (5).
    #[must_use]
    pub fn completion_time_cdf(&self, t: f64) -> f64 {
        self.batch.sojourn_cdf(t)
    }

    /// Bounds on the `k`-th quantile of the per-key processing latency
    /// `T_S` — the paper's eq. (9): `((T_Q)_k, (T_C)_k]`.
    ///
    /// # Panics
    ///
    /// Panics unless `k ∈ [0, 1)`.
    #[must_use]
    pub fn key_latency_quantile_bounds(&self, k: f64) -> (f64, f64) {
        (
            self.batch.waiting_quantile(k),
            self.batch.sojourn_quantile(k),
        )
    }

    /// Bounds on the mean per-key processing latency, `(E[T_Q], E[T_C]]`.
    #[must_use]
    pub fn mean_key_latency_bounds(&self) -> (f64, f64) {
        (self.batch.mean_wait(), self.batch.mean_sojourn())
    }

    /// Access to the reduced batch-level GI/M/1 queue.
    #[must_use]
    pub fn batch_queue(&self) -> &GiM1 {
        &self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::{Exponential, GeneralizedPareto};

    fn facebook() -> GixM1 {
        let gaps = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
        GixM1::new(&gaps, 0.1, 80_000.0).unwrap()
    }

    #[test]
    fn parameter_validation() {
        let gaps = Exponential::new(1.0).unwrap();
        assert!(GixM1::new(&gaps, 1.0, 1.0).is_err());
        assert!(GixM1::new(&gaps, -0.1, 1.0).is_err());
        assert!(GixM1::new(&gaps, 0.1, 0.0).is_err());
    }

    #[test]
    fn facebook_utilization_and_rate() {
        let q = facebook();
        assert!((q.key_rate() - 62_500.0).abs() < 1e-6);
        assert!((q.utilization() - 0.781_25).abs() < 1e-9);
    }

    #[test]
    fn q_zero_reduces_to_plain_gi_m_1() {
        let gaps = Exponential::new(50.0).unwrap();
        let batchless = GixM1::new(&gaps, 0.0, 80.0).unwrap();
        let plain = GiM1::solve(&gaps, 80.0).unwrap();
        assert!((batchless.delta() - plain.sigma()).abs() < 1e-10);
        assert!((batchless.key_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn instability_at_full_load() {
        // λ = μ_S exactly: ρ = 1.
        let gaps = Exponential::new(0.9 * 80.0).unwrap();
        assert!(matches!(
            GixM1::new(&gaps, 0.1, 80.0),
            Err(QueueError::Unstable { .. })
        ));
    }

    #[test]
    fn bounds_are_ordered_and_tight_at_high_quantiles() {
        let q = facebook();
        for k in [0.0, 0.3, 0.7, 0.99, 150.0 / 151.0] {
            let (lo, hi) = q.key_latency_quantile_bounds(k);
            assert!(lo <= hi, "k={k}");
            // Gap between bounds is exactly −ln δ / decay for k above the
            // atom.
            if lo > 0.0 {
                let gap = hi - lo;
                assert!((gap - (-q.delta().ln()) / q.decay_rate()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn table3_upper_bound_reproduced() {
        // ln(151)/((1−δ)(1−q)μ_S) ≈ 366 µs in the paper's Table 3.
        let q = facebook();
        let upper = 151f64.ln() / q.decay_rate();
        assert!(
            (330e-6..=400e-6).contains(&upper),
            "expected ≈366 µs, got {}",
            upper * 1e6
        );
    }

    #[test]
    fn more_concurrency_means_more_latency() {
        // Same key rate λ, increasing q: per-key latency bound grows.
        let mut prev = 0.0;
        for q in [0.0, 0.1, 0.3, 0.5] {
            let lam = 50_000.0;
            let gaps = GeneralizedPareto::facebook(0.15, (1.0 - q) * lam).unwrap();
            let queue = GixM1::new(&gaps, q, 80_000.0).unwrap();
            assert!((queue.key_rate() - lam).abs() < 1e-6, "q={q}");
            let (_, hi) = queue.key_latency_quantile_bounds(0.9);
            assert!(hi > prev, "q={q} hi={hi} prev={prev}");
            prev = hi;
        }
    }
}
