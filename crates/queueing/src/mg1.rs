//! M/G/1 mean-value analysis (Pollaczek–Khinchine).
//!
//! Not used by the paper's model directly; serves as an ablation baseline
//! ("what if service, rather than arrivals, carried the variability?") in
//! the experiments crate.

use memlat_dist::Continuous;

use crate::QueueError;

/// An M/G/1 queue: Poisson arrivals at rate `λ`, general service law.
///
/// Only mean-value quantities are provided (the sojourn *distribution* of
/// M/G/1 has no elementary closed form).
///
/// # Examples
///
/// ```
/// use memlat_dist::Exponential;
/// use memlat_queue::MG1;
///
/// # fn main() -> Result<(), memlat_queue::QueueError> {
/// // M/M/1 special case: P-K reduces to ρ/(μ−λ).
/// let service = Exponential::new(4.0).map_err(memlat_queue::QueueError::from)?;
/// let q = MG1::new(3.0, &service)?;
/// assert!((q.mean_wait() - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MG1 {
    arrival_rate: f64,
    service_mean: f64,
    service_scv: f64,
}

impl MG1 {
    /// Creates a stable M/G/1 queue from the arrival rate and service law.
    ///
    /// # Errors
    ///
    /// [`QueueError::InvalidParam`] if the service law has non-finite
    /// mean or variance (P-K needs two moments) or `λ < 0`;
    /// [`QueueError::Unstable`] when `ρ = λ·E[S] ≥ 1`.
    pub fn new(arrival_rate: f64, service: &dyn Continuous) -> Result<Self, QueueError> {
        if !(arrival_rate.is_finite() && arrival_rate >= 0.0) {
            return Err(QueueError::InvalidParam(format!(
                "arrival rate must be non-negative, got {arrival_rate}"
            )));
        }
        let m = service.mean();
        let v = service.variance();
        if !(m.is_finite() && m > 0.0 && v.is_finite() && v >= 0.0) {
            return Err(QueueError::InvalidParam(
                "M/G/1 needs a service law with finite mean and variance".to_string(),
            ));
        }
        let rho = arrival_rate * m;
        if rho >= 1.0 {
            return Err(QueueError::Unstable { utilization: rho });
        }
        Ok(Self {
            arrival_rate,
            service_mean: m,
            service_scv: v / (m * m),
        })
    }

    /// Utilization `ρ = λ·E[S]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.arrival_rate * self.service_mean
    }

    /// Pollaczek–Khinchine mean waiting time:
    /// `W = ρ·E[S]·(1 + c²)/(2(1−ρ))`.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        let rho = self.utilization();
        rho * self.service_mean * (1.0 + self.service_scv) / (2.0 * (1.0 - rho))
    }

    /// Mean sojourn time `W + E[S]`.
    #[must_use]
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_wait() + self.service_mean
    }

    /// Mean number in system (Little's law).
    #[must_use]
    pub fn mean_in_system(&self) -> f64 {
        self.arrival_rate * self.mean_sojourn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::{Deterministic, Exponential, Hyperexponential};

    #[test]
    fn rejects_invalid() {
        let s = Exponential::new(1.0).unwrap();
        assert!(MG1::new(-1.0, &s).is_err());
        assert!(matches!(
            MG1::new(1.0, &s),
            Err(QueueError::Unstable { .. })
        ));
        let heavy = memlat_dist::GeneralizedPareto::with_mean(0.6, 0.1).unwrap();
        assert!(MG1::new(0.5, &heavy).is_err()); // infinite variance
    }

    #[test]
    fn md1_is_half_mm1_wait() {
        // Deterministic service halves the P-K waiting time vs M/M/1.
        let lam = 0.8;
        let exp = MG1::new(lam, &Exponential::with_mean(1.0).unwrap()).unwrap();
        let det = MG1::new(lam, &Deterministic::new(1.0).unwrap()).unwrap();
        assert!((det.mean_wait() - 0.5 * exp.mean_wait()).abs() < 1e-12);
    }

    #[test]
    fn variability_increases_wait() {
        let lam = 0.5;
        let low = MG1::new(lam, &Deterministic::new(1.0).unwrap()).unwrap();
        let mid = MG1::new(lam, &Exponential::with_mean(1.0).unwrap()).unwrap();
        let high = MG1::new(lam, &Hyperexponential::with_mean_scv(1.0, 5.0).unwrap()).unwrap();
        assert!(low.mean_wait() < mid.mean_wait());
        assert!(mid.mean_wait() < high.mean_wait());
    }

    #[test]
    fn littles_law() {
        let q = MG1::new(0.6, &Exponential::with_mean(1.0).unwrap()).unwrap();
        assert!((q.mean_in_system() - 0.6 * q.mean_sojourn()).abs() < 1e-12);
    }
}
