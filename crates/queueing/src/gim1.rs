//! The GI/M/1 queue.

use memlat_dist::Continuous;

use crate::{delta::solve_delta, QueueError};

/// A solved GI/M/1 queue: general independent inter-arrival gaps,
/// exponential service with rate `μ`, one FCFS server.
///
/// All stationary laws follow from the decay parameter `σ`
/// (see [`solve_delta`]):
///
/// * waiting time: `W(t) = 1 − σ e^{-(1−σ)μt}` (an atom `1−σ` at zero),
/// * sojourn (completion) time: `Exp((1−σ)μ)`.
///
/// # Examples
///
/// ```
/// use memlat_dist::Exponential;
/// use memlat_queue::GiM1;
///
/// # fn main() -> Result<(), memlat_queue::QueueError> {
/// // M/M/1 at ρ = 0.5: mean sojourn 1/(μ−λ) = 2/μ.
/// let gaps = Exponential::new(0.5).map_err(memlat_queue::QueueError::from)?;
/// let q = GiM1::solve(&gaps, 1.0)?;
/// assert!((q.mean_sojourn() - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GiM1 {
    sigma: f64,
    service_rate: f64,
    utilization: f64,
}

impl GiM1 {
    /// Solves the queue for the given inter-arrival law and service rate.
    ///
    /// # Errors
    ///
    /// Propagates [`QueueError`] from the fixed-point solver; in
    /// particular [`QueueError::Unstable`] when `ρ ≥ 1`.
    pub fn solve(interarrival: &dyn Continuous, service_rate: f64) -> Result<Self, QueueError> {
        let sigma = solve_delta(interarrival, service_rate)?;
        let utilization = 1.0 / (interarrival.mean() * service_rate);
        Ok(Self {
            sigma,
            service_rate,
            utilization,
        })
    }

    /// Constructs a queue directly from a known decay parameter.
    ///
    /// Useful in tests and for the M/M/1 special case where `σ = ρ`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::InvalidParam`] unless `σ ∈ (0, 1)` and
    /// `μ > 0`.
    pub fn from_sigma(sigma: f64, service_rate: f64, utilization: f64) -> Result<Self, QueueError> {
        if !(sigma.is_finite() && (0.0..1.0).contains(&sigma)) {
            return Err(QueueError::InvalidParam(format!(
                "sigma must be in (0,1), got {sigma}"
            )));
        }
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(QueueError::InvalidParam(format!(
                "service rate must be positive, got {service_rate}"
            )));
        }
        if !(utilization.is_finite() && (0.0..1.0).contains(&utilization)) {
            return Err(QueueError::InvalidParam(format!(
                "utilization must be in (0,1), got {utilization}"
            )));
        }
        Ok(Self {
            sigma,
            service_rate,
            utilization,
        })
    }

    /// The geometric decay parameter `σ` (the paper's `δ`).
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The service rate `μ`.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// The offered utilization `ρ`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The exponential decay rate `(1−σ)μ` shared by the waiting and
    /// sojourn laws.
    #[must_use]
    pub fn decay_rate(&self) -> f64 {
        (1.0 - self.sigma) * self.service_rate
    }

    /// CDF of the stationary waiting time: `1 − σ e^{-(1−σ)μt}`.
    #[must_use]
    pub fn waiting_cdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            1.0 - self.sigma * (-self.decay_rate() * t).exp()
        }
    }

    /// CDF of the stationary sojourn time: `1 − e^{-(1−σ)μt}`.
    #[must_use]
    pub fn sojourn_cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-self.decay_rate() * t).exp_m1()
        }
    }

    /// `k`-th quantile of the waiting time (the paper's eq. (7) shape):
    /// `max{(ln σ − ln(1−k)) / ((1−σ)μ), 0}`.
    ///
    /// # Panics
    ///
    /// Panics unless `k ∈ [0, 1)`.
    #[must_use]
    pub fn waiting_quantile(&self, k: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&k),
            "quantile requires k in [0,1), got {k}"
        );
        ((self.sigma.ln() - (1.0 - k).ln()) / self.decay_rate()).max(0.0)
    }

    /// `k`-th quantile of the sojourn time (the paper's eq. (8) shape):
    /// `−ln(1−k) / ((1−σ)μ)`.
    ///
    /// # Panics
    ///
    /// Panics unless `k ∈ [0, 1)`.
    #[must_use]
    pub fn sojourn_quantile(&self, k: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&k),
            "quantile requires k in [0,1), got {k}"
        );
        -(1.0 - k).ln() / self.decay_rate()
    }

    /// Mean waiting time `σ / ((1−σ)μ)`.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        self.sigma / self.decay_rate()
    }

    /// Mean sojourn time `1 / ((1−σ)μ)`.
    #[must_use]
    pub fn mean_sojourn(&self) -> f64 {
        1.0 / self.decay_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::{Deterministic, Exponential};

    fn mm1(rho: f64) -> GiM1 {
        GiM1::solve(&Exponential::new(rho).unwrap(), 1.0).unwrap()
    }

    #[test]
    fn mm1_closed_forms() {
        let q = mm1(0.8);
        assert!((q.sigma() - 0.8).abs() < 1e-8);
        assert!((q.mean_sojourn() - 5.0).abs() < 1e-6);
        assert!((q.mean_wait() - 4.0).abs() < 1e-6);
        // P{W = 0} = 1 − ρ.
        assert!((q.waiting_cdf(0.0) - 0.2).abs() < 1e-7);
    }

    #[test]
    fn sojourn_quantile_inverts_cdf() {
        let q = mm1(0.6);
        for k in [0.1, 0.5, 0.9, 0.999] {
            let t = q.sojourn_quantile(k);
            assert!((q.sojourn_cdf(t) - k).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn waiting_quantile_saturates_at_zero() {
        let q = mm1(0.5);
        // For k ≤ 1−σ the waiting-time quantile is 0 (atom at zero).
        assert_eq!(q.waiting_quantile(0.3), 0.0);
        assert!(q.waiting_quantile(0.9) > 0.0);
    }

    #[test]
    fn waiting_quantile_inverts_cdf_above_atom() {
        let q = mm1(0.7);
        for k in [0.5, 0.8, 0.99] {
            let t = q.waiting_quantile(k);
            assert!((q.waiting_cdf(t) - k).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn wait_below_sojourn() {
        let q = GiM1::solve(&Deterministic::new(1.3).unwrap(), 1.0).unwrap();
        assert!(q.mean_wait() < q.mean_sojourn());
        for k in [0.2, 0.6, 0.95] {
            assert!(q.waiting_quantile(k) <= q.sojourn_quantile(k));
        }
    }

    #[test]
    fn from_sigma_validation() {
        assert!(GiM1::from_sigma(1.0, 1.0, 0.5).is_err());
        assert!(GiM1::from_sigma(0.5, 0.0, 0.5).is_err());
        assert!(GiM1::from_sigma(0.5, 1.0, 1.5).is_err());
        assert!(GiM1::from_sigma(0.5, 1.0, 0.5).is_ok());
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn quantile_panics_out_of_range() {
        let _ = mm1(0.5).sojourn_quantile(1.0);
    }
}
