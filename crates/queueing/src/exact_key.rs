//! The *exact* per-key latency law of the GI^X/M/1 queue — and a
//! sharpening of the paper's eq. (9).
//!
//! The paper sandwiches a key's processing latency `T_S` between the
//! batch queueing time `T_Q` (eq. 4) and the batch completion time `T_C`
//! (eq. 5). The exact law can be written down:
//!
//! * a random key's position `J` within its (size-biased geometric)
//!   batch satisfies `P{J = j} = P{X ≥ j}/E[X] = q^{j-1}(1−q)` — again
//!   geometric;
//! * given position `j`, the key completes after the batch's waiting time
//!   `W` plus an Erlang(`j`, `μ_S`) chain (its `j−1` predecessors plus
//!   itself), and the geometric-Erlang mixture is `Exp((1−q)μ_S)`;
//! * `W` is the GI/M/1 waiting law: an atom `1−δ` at 0 plus a
//!   `δ`-weighted `Exp(η)` tail, `η = (1−δ)(1−q)μ_S`.
//!
//! Carrying out the two-exponential convolution with `ν = (1−q)μ_S`:
//!
//! ```text
//! F(t) = (1−δ)(1−e^{-νt}) + δ[1 − (ν e^{-ηt} − η e^{-νt})/(ν−η)]
//! ```
//!
//! and because `η = (1−δ)ν`, the coefficients collapse —
//! `δν/(ν−η) = 1` and `(1−δ) − δη/(ν−η) = 0` — leaving
//!
//! ```text
//! F(t) = 1 − e^{-ηt}      (exactly the paper's T_C law, eq. 5!)
//! ```
//!
//! **Finding:** for geometric batch sizes, the paper's *upper bound*
//! `(T_C)_k` in eq. (9) is not merely a bound — it is the exact per-key
//! latency law. (Intuition: by memorylessness, the service still owed to
//! a randomly chosen key — its predecessors plus itself — is
//! distributed like a whole fresh batch.) The lower bound `(T_Q)_k`
//! remains strict. This explains why the measured quantiles in the
//! paper's Fig. 4 (and our reproduction of it) hug the upper edge of the
//! band.
//!
//! [`ExactKeyLatency`] keeps **both** forms — the explicit mixture and
//! the collapsed exponential — and the test suite verifies their
//! pointwise equality, so the derivation is machine-checked.

use crate::gixm1::GixM1;

/// Closed-form exact per-key latency law for a solved [`GixM1`] queue.
///
/// # Examples
///
/// ```
/// use memlat_dist::GeneralizedPareto;
/// use memlat_queue::{exact_key::ExactKeyLatency, GixM1};
///
/// # fn main() -> Result<(), memlat_queue::QueueError> {
/// let gaps = GeneralizedPareto::facebook(0.15, 56_250.0)
///     .map_err(memlat_queue::QueueError::from)?;
/// let queue = GixM1::new(&gaps, 0.1, 80_000.0)?;
/// let exact = ExactKeyLatency::new(&queue);
/// // The exact quantile coincides with eq. (9)'s upper bound…
/// let (lo, hi) = queue.key_latency_quantile_bounds(0.9);
/// assert!((exact.quantile(0.9) - hi).abs() < 1e-12);
/// // …and strictly exceeds the lower bound.
/// assert!(exact.quantile(0.9) > lo);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactKeyLatency {
    /// Decay rate `η = (1−δ)(1−q)μ_S`.
    eta: f64,
    /// Chain rate `ν = (1−q)μ_S`.
    nu: f64,
    /// The queue's `δ`.
    delta: f64,
}

impl ExactKeyLatency {
    /// Derives the exact law from a solved batch queue.
    #[must_use]
    pub fn new(queue: &GixM1) -> Self {
        Self {
            eta: queue.decay_rate(),
            nu: (1.0 - queue.concurrency()) * queue.service_rate(),
            delta: queue.delta(),
        }
    }

    /// The exact CDF, in its collapsed form `1 − e^{-ηt}`.
    #[must_use]
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-self.eta * t).exp_m1()
        }
    }

    /// The pre-collapse mixture form of the CDF:
    /// `(1−δ)·Exp(ν) + δ·(Exp(η) ⊕ Exp(ν))`.
    ///
    /// Mathematically identical to [`cdf`](Self::cdf); exposed so the
    /// collapse identity is testable rather than asserted.
    #[must_use]
    pub fn cdf_mixture_form(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let (eta, nu, delta) = (self.eta, self.nu, self.delta);
        let g = 1.0 - (-nu * t).exp();
        let conv = if (nu - eta).abs() < 1e-9 * nu {
            // η → ν limit (zero load): hypoexponential degenerates to
            // Erlang-2.
            1.0 - (1.0 + nu * t) * (-nu * t).exp()
        } else {
            1.0 - (nu * (-eta * t).exp() - eta * (-nu * t).exp()) / (nu - eta)
        };
        ((1.0 - delta) * g + delta * conv).clamp(0.0, 1.0)
    }

    /// Mean of the exact law, `1/η` (equivalently `δ/η + 1/ν`).
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.eta
    }

    /// Exact `k`-th quantile: `−ln(1−k)/η`.
    ///
    /// # Panics
    ///
    /// Panics unless `k ∈ [0, 1)`.
    #[must_use]
    pub fn quantile(&self, k: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&k),
            "quantile requires k in [0,1), got {k}"
        );
        -(1.0 - k).ln() / self.eta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::{Exponential, GeneralizedPareto};

    fn facebook() -> GixM1 {
        let gaps = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
        GixM1::new(&gaps, 0.1, 80_000.0).unwrap()
    }

    #[test]
    fn collapse_identity_holds_pointwise() {
        // The machine-checked heart of the finding: mixture ≡ collapsed.
        for (q, rho) in [(0.1, 0.78), (0.0, 0.5), (0.4, 0.9), (0.25, 0.1)] {
            let gaps = GeneralizedPareto::facebook(0.3, (1.0 - q) * rho * 1e5).unwrap();
            let queue = GixM1::new(&gaps, q, 1e5).unwrap();
            let exact = ExactKeyLatency::new(&queue);
            for i in 0..300 {
                let t = i as f64 * 2e-6;
                let a = exact.cdf(t);
                let b = exact.cdf_mixture_form(t);
                assert!((a - b).abs() < 1e-12, "q={q} rho={rho} t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn exact_law_is_the_upper_bound_of_eq9() {
        let queue = facebook();
        let exact = ExactKeyLatency::new(&queue);
        for k in [0.1, 0.5, 0.9, 0.999] {
            let (lo, hi) = queue.key_latency_quantile_bounds(k);
            let q = exact.quantile(k);
            assert!((q - hi).abs() < 1e-12, "k={k}");
            assert!(q > lo, "k={k}");
        }
    }

    #[test]
    fn mean_identities() {
        let queue = facebook();
        let exact = ExactKeyLatency::new(&queue);
        // 1/η = δ/η + 1/ν because η = (1−δ)ν.
        let eta = queue.decay_rate();
        let nu = 0.9 * 80_000.0;
        assert!((exact.mean() - (queue.delta() / eta + 1.0 / nu)).abs() < 1e-18);
        assert!((exact.mean() - queue.mean_key_latency_bounds().1).abs() < 1e-18);
    }

    #[test]
    fn degenerate_zero_load_is_plain_service() {
        let gaps = Exponential::new(1.0).unwrap();
        let queue = GixM1::new(&gaps, 0.0, 1e6).unwrap();
        let exact = ExactKeyLatency::new(&queue);
        // At negligible load δ≈0, η≈ν=μ: per-key latency ≈ Exp(μ).
        let q50 = exact.quantile(0.5);
        assert!((q50 - 2f64.ln() / 1e6).abs() / q50 < 0.01, "{q50}");
        // Mixture form agrees in the η→ν limit branch too.
        assert!((exact.cdf(1e-6) - exact.cdf_mixture_form(1e-6)).abs() < 1e-6);
    }

    #[test]
    fn matches_brute_force_simulation() {
        // The exact law must match a Lindley simulation of the same
        // queue at several quantiles.
        use memlat_dist::{Continuous, Discrete};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let gaps = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
        let batch = memlat_dist::GeometricBatch::new(0.1).unwrap();
        let mu = 80_000.0;
        let mut busy_until = 0.0f64;
        let mut t = 0.0f64;
        let mut lat = Vec::with_capacity(500_000);
        for _ in 0..400_000 {
            t += gaps.sample(&mut rng);
            let n = batch.sample(&mut rng);
            for _ in 0..n {
                let svc = -memlat_dist::open_unit(&mut rng).ln() / mu;
                let start = busy_until.max(t);
                busy_until = start + svc;
                lat.push(busy_until - t);
            }
        }
        lat.sort_by(f64::total_cmp);
        let exact = ExactKeyLatency::new(&facebook());
        for k in [0.25, 0.5, 0.75, 0.9, 0.99] {
            let idx = ((k * lat.len() as f64) as usize).min(lat.len() - 1);
            let sim = lat[idx];
            let law = exact.quantile(k);
            assert!(
                (sim / law - 1.0).abs() < 0.05,
                "k={k}: sim {sim} vs exact {law}"
            );
        }
    }
}
