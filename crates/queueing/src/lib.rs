//! Queueing-theory substrate for the memcached latency model.
//!
//! The paper (Cheng et al., ICDCS 2017) models each memcached server as a
//! **GI^X/M/1** queue — general, independent batch arrivals (the burst and
//! concurrency of key traffic) with exponential per-key service — and the
//! cache-miss database stage as **M/M/1**. This crate implements:
//!
//! * [`gim1`] — the GI/M/1 queue: the fixed point `σ = L_A((1−σ)μ)`,
//!   waiting/sojourn laws, quantiles.
//! * [`gixm1`] — the paper's GI^X/M/1 batch queue, reduced to GI/M/1 by
//!   collapsing each geometric batch into one exponential "super-job" with
//!   rate `(1−q)μ_S` (§3 of the paper); per-key latency bounds of eq. (9).
//! * [`mm1`] — closed-form M/M/1 (the database stage).
//! * [`mg1`] — M/G/1 mean-value analysis (Pollaczek–Khinchine), used as an
//!   ablation baseline.
//! * [`delta`] — the `δ`-root solver shared by all of the above.
//!
//! # Examples
//!
//! Solve the paper's Table 3 configuration (Facebook workload):
//!
//! ```
//! use memlat_dist::GeneralizedPareto;
//! use memlat_queue::GixM1;
//!
//! # fn main() -> Result<(), memlat_queue::QueueError> {
//! // Per-server key rate λ = 62.5 Kps, concurrency q = 0.1 ⇒ batch rate
//! // (1−q)λ = 56.25 Kps; burst degree ξ = 0.15; service μ_S = 80 Kps.
//! let gaps = GeneralizedPareto::facebook(0.15, 56_250.0)
//!     .map_err(memlat_queue::QueueError::from)?;
//! let queue = GixM1::new(&gaps, 0.1, 80_000.0)?;
//! assert!((queue.utilization() - 0.78125).abs() < 1e-9);
//! assert!(queue.delta() > 0.78 && queue.delta() < 0.85);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod delta;
pub mod exact_key;
pub mod gim1;
pub mod gixm1;
pub mod mg1;
pub mod mm1;

pub use delta::solve_delta;
pub use exact_key::ExactKeyLatency;
pub use gim1::GiM1;
pub use gixm1::GixM1;
pub use mg1::MG1;
pub use mm1::MM1;

/// Error produced by the queueing solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    /// The offered load is at or beyond capacity: no stationary regime.
    Unstable {
        /// The offered utilization `ρ = λ/μ`.
        utilization: f64,
    },
    /// A parameter was out of its valid range.
    InvalidParam(String),
    /// The fixed-point solver failed (e.g. the numeric Laplace transform
    /// misbehaved).
    Solver(memlat_numerics::RootError),
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Unstable { utilization } => {
                write!(f, "queue is unstable (utilization {utilization} >= 1)")
            }
            QueueError::InvalidParam(what) => write!(f, "invalid queue parameter: {what}"),
            QueueError::Solver(e) => write!(f, "fixed-point solver failed: {e}"),
        }
    }
}

impl std::error::Error for QueueError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueueError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<memlat_numerics::RootError> for QueueError {
    fn from(e: memlat_numerics::RootError) -> Self {
        QueueError::Solver(e)
    }
}

impl From<memlat_dist::ParamError> for QueueError {
    fn from(e: memlat_dist::ParamError) -> Self {
        QueueError::InvalidParam(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(QueueError::Unstable { utilization: 1.2 }
            .to_string()
            .contains("1.2"));
        assert!(QueueError::InvalidParam("x".into())
            .to_string()
            .contains('x'));
        let s: QueueError = memlat_numerics::RootError::NotANumber.into();
        assert!(s.to_string().contains("solver"));
    }

    #[test]
    fn solver_error_has_source() {
        use std::error::Error;
        let e = QueueError::Solver(memlat_numerics::RootError::NotANumber);
        assert!(e.source().is_some());
        assert!(QueueError::Unstable { utilization: 1.0 }.source().is_none());
    }
}
