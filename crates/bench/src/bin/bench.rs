//! The repo's perf-trajectory harness: runs the full cluster simulation
//! at three utilization points, measures keys/second, wall time and peak
//! RSS, and writes `results/BENCH_cluster.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p memlat-bench --bin bench              # measure
//! cargo run --release -p memlat-bench --bin bench -- \
//!     --check results/BENCH_cluster.json                       # gate
//! MEMLAT_QUICK=1 ...                                           # short profile
//! ```
//!
//! Each scenario runs in a **fresh child process** (the binary re-execs
//! itself with `--one`), so the reported peak RSS (`VmHWM`, which only
//! ever grows within a process) isolates that scenario's memory
//! footprint — the evidence that `Retention::Summary` peak memory does
//! not scale with total key count.
//!
//! `--check <baseline>` re-measures and fails (exit 1) when the
//! calibration-normalized keys/sec of any scenario regresses by more
//! than 25% against the committed baseline, so CI catches perf
//! regressions without pinning absolute numbers to one machine.

use std::time::Instant;

use memlat_bench::{
    calibrate_spin_rate, cluster_config, peak_rss_bytes, read_baseline, write_json, BenchReport,
    Scenario, UTILIZATIONS,
};
use memlat_cluster::{ClusterSim, Retention, SimScratch};

/// Regression tolerance for `--check`, on calibration-normalized
/// keys/sec.
const MAX_REGRESSION: f64 = 0.25;

fn quick() -> bool {
    std::env::var("MEMLAT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Child mode: run one scenario `reps` times, print a machine-readable
/// result line, exit.
fn run_one(rho: f64, retention: &str, duration: f64, reps: u32) {
    let mut scratch = SimScratch::new();
    let mut best_wall = f64::INFINITY;
    let mut keys = 0u64;
    for _ in 0..reps {
        let mut cfg = cluster_config(rho, duration);
        if retention == "streaming" {
            cfg = cfg.retention(Retention::Summary);
        }
        let start = Instant::now();
        let out = ClusterSim::run_with(&cfg, &mut scratch).expect("bench config is valid");
        let wall = start.elapsed().as_secs_f64();
        keys = out.total_keys();
        best_wall = best_wall.min(wall);
    }
    println!("keys={keys} best_wall={best_wall} rss={}", peak_rss_bytes());
}

/// Parent mode: spawn `--one` children, assemble the report.
fn measure() -> BenchReport {
    // Best-of-N wall time: single-core CI boxes jitter ±10%, so the
    // full profile takes enough reps for the minimum to be stable.
    let (duration, reps) = if quick() { (1.5, 5) } else { (6.0, 10) };
    let exe = std::env::current_exe().expect("own path");
    let mut scenarios = Vec::new();
    for &(label, rho) in UTILIZATIONS {
        for mode in ["streaming", "materialized"] {
            let out = std::process::Command::new(&exe)
                .args([
                    "--one",
                    &rho.to_string(),
                    mode,
                    &duration.to_string(),
                    &reps.to_string(),
                ])
                .output()
                .expect("spawn bench child");
            assert!(
                out.status.success(),
                "bench child failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let text = String::from_utf8_lossy(&out.stdout);
            let get = |key: &str| -> f64 {
                text.split_whitespace()
                    .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
                    .unwrap_or_else(|| panic!("missing {key} in child output: {text}"))
                    .parse()
                    .expect("numeric child field")
            };
            let keys = get("keys") as u64;
            let wall = get("best_wall");
            scenarios.push(Scenario {
                name: format!("cluster_{label}_{mode}"),
                utilization: rho,
                retention: mode.to_string(),
                sim_seconds: duration,
                keys,
                wall_seconds: wall,
                keys_per_sec: keys as f64 / wall,
                peak_rss_bytes: get("rss") as u64,
            });
        }
    }
    BenchReport {
        schema: "memlat-bench-v1".to_string(),
        quick: quick(),
        calibration_spins_per_sec: calibrate_spin_rate(),
        scenarios,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--one") {
        let rho: f64 = args[i + 1].parse().expect("rho");
        let retention = args[i + 2].as_str();
        let duration: f64 = args[i + 3].parse().expect("duration");
        let reps: u32 = args[i + 4].parse().expect("reps");
        run_one(rho, retention, duration, reps);
        return;
    }

    let report = measure();
    println!("{}", report.render());

    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());
    if let Some(path) = check_path {
        let baseline = read_baseline(&path);
        let mut failed = false;
        for s in &report.scenarios {
            let Some(b) = baseline.scenarios.iter().find(|b| b.name == s.name) else {
                println!("  [check] {}: no baseline entry, skipping", s.name);
                continue;
            };
            // Normalize by the calibration ratio so a slower CI box does
            // not read as a code regression.
            let hw = report.calibration_spins_per_sec / baseline.calibration_spins_per_sec;
            let expected = b.keys_per_sec * hw;
            let ratio = s.keys_per_sec / expected;
            let verdict = if ratio < 1.0 - MAX_REGRESSION {
                failed = true;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "  [check] {}: {:.0} keys/s vs normalized baseline {:.0} (ratio {:.2}) {}",
                s.name, s.keys_per_sec, expected, ratio, verdict
            );
        }
        if failed {
            eprintln!("bench check FAILED: keys/sec regressed more than 25%");
            std::process::exit(1);
        }
        println!("bench check passed");
    } else {
        let path = write_json(&report);
        println!("  json: {}", path.display());
    }
}
