//! The repo's perf-trajectory harness: runs the full cluster simulation
//! at three utilization points, a sampling-kernel block-size sweep at
//! ρ = 0.85, a server-count scaling sweep (M ∈ {8, 100, 1000, 10000} at
//! ρ = 0.70, holding `M × duration` roughly constant), and a live
//! `memlat-server` loopback scenario (closed-loop pipelined gets
//! against an in-process server), measures keys/second, wall time and
//! peak RSS, and writes `results/BENCH_cluster.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p memlat-bench --bin bench              # measure
//! cargo run --release -p memlat-bench --bin bench -- \
//!     --check results/BENCH_cluster.json                       # gate
//! cargo run --release -p memlat-bench --bin bench -- \
//!     --digest <threads> <servers>           # determinism fingerprint
//! MEMLAT_QUICK=1 ...                                           # short profile
//! ```
//!
//! `--digest` runs one fixed scaled-cluster config at the given thread
//! count and prints a FNV-1a fingerprint of the full streaming output;
//! CI byte-diffs the 1-thread and 4-thread digests to prove the
//! sharded event merge is execution-order independent.
//!
//! Each scenario runs in a **fresh child process** (the binary re-execs
//! itself with `--one`), so the reported peak RSS (`VmHWM`, which only
//! ever grows within a process) isolates that scenario's memory
//! footprint — the evidence that `Retention::Summary` peak memory does
//! not scale with total key count.
//!
//! `--check <baseline>` re-measures and fails (exit 1) when any
//! scenario's keys/sec ratio against the committed baseline falls more
//! than 25% below the run's **median** ratio (machine-state drift is
//! shared across scenarios and cancels in the relative comparison),
//! when throughput uniformly halves after spin-calibration
//! normalization, or when the in-run block-1024 vs scalar speedup drops
//! below its floor — so CI catches perf regressions without pinning
//! absolute numbers to one machine.

use std::time::Instant;

use memlat_bench::{
    calibrate_spin_rate, cluster_config, cluster_config_m, peak_rss_bytes, read_baseline,
    write_json, BenchReport, Scenario, SCALE_SERVERS, UTILIZATIONS,
};
use memlat_cluster::{ClusterSim, Retention, SimScratch};

/// Regression tolerance for `--check`, applied to each scenario's
/// keys/sec ratio vs baseline *relative to the run's median ratio* —
/// shared machine-state drift cancels in the relative comparison, so
/// this catches a scenario regressing against the fleet.
const MAX_REGRESSION: f64 = 0.25;

/// Wider tolerance for the live-server loopback scenario: its
/// throughput is syscall- and scheduler-bound rather than ALU/memory
/// bound like the simulator scenarios, so its ratio tracks the
/// cluster-scenario median more loosely across machines.
const SERVER_MAX_REGRESSION: f64 = 0.45;

/// Absolute backstop: even a regression uniform across every scenario
/// (which the median-relative check cancels out) must not halve the
/// calibration-normalized throughput.
const MAX_UNIFORM_REGRESSION: f64 = 0.5;

/// In-run floor for the block-kernel speedup: the block-1024 scenario
/// and the scalar block-1 scenario run seconds apart under the same
/// machine state, so their ratio is jitter-robust. Measured speedup is
/// ~1.2–1.5×; below 1.08 the batched pipeline has lost its advantage.
const BLOCK_SPEEDUP_MIN: f64 = 1.08;

/// Block sizes swept at the ρ = 0.85 point (1 = the scalar loop, then
/// the kernel staging sizes bracketing the tuned default).
const BLOCKS: &[usize] = &[1, 256, 1024, 4096];

fn quick() -> bool {
    std::env::var("MEMLAT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Child mode for the live-server scenario: an in-process
/// `memlat-server` (no service-time injection, so the numbers measure
/// the real parse/dispatch/store path) serves pipelined closed-loop
/// gets over loopback. Running server and client in the same child
/// keeps the RSS methodology of the other scenarios: this process's
/// `VmHWM` covers the store. The closed loop runs wall-clock seconds
/// (unlike the simulator scenarios, whose `duration` is simulated
/// time), so the window is clamped short.
fn run_one_server(duration: f64, reps: u32) {
    use memlat_loadgen::driver::{preload, run_closed_loop, ClosedLoopConfig};
    use memlat_loadgen::{RunningServer, ServerSource, ServerSpec};

    let window = (duration / 4.0).clamp(0.5, 1.5);
    let reps = reps.min(3);
    let keyspace = 4096;
    let server = RunningServer::launch(&ServerSource::InProcess, &ServerSpec::default())
        .expect("launch in-process server");
    preload(server.addr(), keyspace, 64).expect("preload keyspace");
    let mut best = (0u64, f64::INFINITY, 0.0f64);
    for rep in 0..reps {
        let cfg = ClosedLoopConfig {
            connections: 2,
            depth: 16,
            duration: window,
            keyspace,
            skew: 0.99,
            seed: memlat_bench::BENCH_SEED ^ u64::from(rep).wrapping_mul(0x9E37_79B9),
        };
        let out = run_closed_loop(server.addr(), &cfg).expect("closed loop");
        let rate = out.requests as f64 / out.elapsed;
        if rate > best.2 {
            best = (out.requests, out.elapsed, rate);
        }
    }
    let report = server.shutdown().expect("server shutdown");
    assert!(report.clean, "server did not shut down cleanly");
    println!(
        "keys={} best_wall={} rss={}",
        best.0,
        best.1,
        peak_rss_bytes()
    );
}

/// Child mode: run one scenario `reps` times, print a machine-readable
/// result line, exit. `block = 0` keeps the config default; `servers =
/// 0` keeps the default 4-server topology, otherwise the config comes
/// from the server-count scaling sweep.
fn run_one(rho: f64, retention: &str, duration: f64, reps: u32, block: usize, servers: usize) {
    let mut scratch = SimScratch::new();
    let mut best_wall = f64::INFINITY;
    let mut keys = 0u64;
    for _ in 0..reps {
        let mut cfg = if servers > 0 {
            cluster_config_m(rho, duration, servers)
        } else {
            cluster_config(rho, duration)
        };
        if retention == "streaming" {
            cfg = cfg.retention(Retention::Summary);
        }
        if block > 0 {
            cfg = cfg.block(block);
        }
        let start = Instant::now();
        let out = ClusterSim::run_with(&cfg, &mut scratch).expect("bench config is valid");
        let wall = start.elapsed().as_secs_f64();
        keys = out.total_keys();
        best_wall = best_wall.min(wall);
    }
    println!("keys={keys} best_wall={best_wall} rss={}", peak_rss_bytes());
}

/// Digest mode for CI determinism checks: run one fixed scaled-cluster
/// config at the given thread count and print a FNV-1a fingerprint of
/// the full streaming output (key count, miss ratio, per-server
/// utilizations and Welford moments). Identical digests across thread
/// counts prove the per-worker event shards merge deterministically —
/// the property the bench-scale CI job byte-diffs.
fn run_digest(threads: usize, servers: usize) {
    let cfg = cluster_config_m(0.70, 0.05, servers)
        .retention(Retention::Summary)
        .threads(threads);
    let out = ClusterSim::run(&cfg).expect("digest config is valid");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
    };
    push(out.total_keys());
    push(out.miss_ratio().to_bits());
    for &u in out.utilization() {
        push(u.to_bits());
    }
    for s in out.summaries() {
        let l = &s.latency;
        push(l.count());
        push(l.mean().to_bits());
        push(l.sample_variance().to_bits());
        push(l.min().to_bits());
        push(l.max().to_bits());
    }
    println!("digest={h:016x} keys={}", out.total_keys());
}

/// Parent mode: spawn `--one` children, assemble the report.
fn measure() -> BenchReport {
    // Best-of-N wall time, best-of-R child rounds: single-core CI boxes
    // drift through multi-second slow epochs (±15%), long enough to
    // swallow every rep inside one child. Interleaving rounds across
    // scenarios spreads each scenario's samples over the whole
    // measurement window, so every scenario sees at least one fast
    // epoch and best-of is comparable across scenarios.
    let (duration, reps, rounds) = if quick() { (1.5, 5, 1) } else { (6.0, 10, 3) };
    let exe = std::env::current_exe().expect("own path");
    // Spec: (name, rho, mode, block, servers, duration). `servers = 0`
    // means the default 4-server topology via `cluster_config`.
    let mut specs: Vec<(String, f64, &str, usize, usize, f64)> = Vec::new();
    for &(label, rho) in UTILIZATIONS {
        for mode in ["streaming", "materialized"] {
            specs.push((format!("cluster_{label}_{mode}"), rho, mode, 0, 0, duration));
        }
    }
    // Block-size dimension: the sampling-kernel block at the hottest
    // utilization point, streaming retention (block 1 = scalar loop).
    for &block in BLOCKS {
        specs.push((
            format!("cluster_u85_block{block}"),
            0.85,
            "streaming",
            block,
            0,
            duration,
        ));
    }
    // Server-count scaling dimension: M ∈ {8, 100, 1k, 10k} at ρ = 0.70,
    // streaming retention. Simulated work grows linearly with M, so the
    // durations shrink to hold `M × duration` (≈ total simulated jobs)
    // roughly constant — each point costs about the same wall time and
    // the keys/s column isolates per-server overhead at scale.
    for &(label, servers) in SCALE_SERVERS {
        let d = match (label, quick()) {
            ("m8", false) => 3.0,
            ("m100", false) => 0.5,
            ("m1k", false) => 0.05,
            ("m10k", false) => 0.008,
            ("m8", true) => 0.75,
            ("m100", true) => 0.12,
            ("m1k", true) => 0.012,
            _ => 0.002,
        };
        specs.push((format!("cluster_{label}"), 0.70, "streaming", 0, servers, d));
    }
    // The live-server loopback scenario: real TCP sockets through the
    // memlat-server binary's parse/dispatch/store path (retention tag
    // "server" routes the child to `run_one_server`).
    specs.push(("server_loopback".to_string(), 0.0, "server", 0, 0, duration));
    let mut scenarios: Vec<Scenario> = Vec::new();
    for round in 0..rounds {
        for (i, (name, rho, mode, block, servers, dur)) in specs.iter().enumerate() {
            let out = std::process::Command::new(&exe)
                .args([
                    "--one",
                    &rho.to_string(),
                    mode,
                    &dur.to_string(),
                    &reps.to_string(),
                    &block.to_string(),
                    &servers.to_string(),
                ])
                .output()
                .expect("spawn bench child");
            assert!(
                out.status.success(),
                "bench child failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let text = String::from_utf8_lossy(&out.stdout);
            let get = |key: &str| -> f64 {
                text.split_whitespace()
                    .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
                    .unwrap_or_else(|| panic!("missing {key} in child output: {text}"))
                    .parse()
                    .expect("numeric child field")
            };
            let keys = get("keys") as u64;
            let wall = get("best_wall");
            let rss = get("rss") as u64;
            if round == 0 {
                scenarios.push(Scenario {
                    name: name.clone(),
                    utilization: *rho,
                    retention: (*mode).to_string(),
                    block: *block,
                    servers: *servers,
                    sim_seconds: *dur,
                    keys,
                    wall_seconds: wall,
                    keys_per_sec: keys as f64 / wall,
                    peak_rss_bytes: rss,
                });
            } else {
                let s = &mut scenarios[i];
                if wall < s.wall_seconds {
                    s.wall_seconds = wall;
                    s.keys_per_sec = keys as f64 / wall;
                }
                s.peak_rss_bytes = s.peak_rss_bytes.max(rss);
            }
        }
    }
    BenchReport {
        schema: "memlat-bench-v2".to_string(),
        quick: quick(),
        calibration_spins_per_sec: calibrate_spin_rate(),
        scenarios,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--one") {
        let rho: f64 = args[i + 1].parse().expect("rho");
        let retention = args[i + 2].as_str();
        let duration: f64 = args[i + 3].parse().expect("duration");
        let reps: u32 = args[i + 4].parse().expect("reps");
        let block: usize = args.get(i + 5).map_or(0, |b| b.parse().expect("block"));
        let servers: usize = args.get(i + 6).map_or(0, |s| s.parse().expect("servers"));
        if retention == "server" {
            run_one_server(duration, reps);
        } else {
            run_one(rho, retention, duration, reps, block, servers);
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--digest") {
        let threads: usize = args[i + 1].parse().expect("threads");
        let servers: usize = args.get(i + 2).map_or(100, |s| s.parse().expect("servers"));
        run_digest(threads, servers);
        return;
    }

    let report = measure();
    println!("{}", report.render());

    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());
    if let Some(path) = check_path {
        let baseline = read_baseline(&path);
        let mut failed = false;
        // Raw per-scenario ratios vs baseline. A single-core box drifts
        // through multi-second slow epochs whose amplitude the ALU spin
        // calibration does not track (the simulator is memory-bound), so
        // the primary gate compares each scenario's ratio to the run's
        // median ratio: shared drift cancels, isolated regressions stand
        // out.
        let hw = report.calibration_spins_per_sec / baseline.calibration_spins_per_sec;
        let mut pairs: Vec<(&Scenario, f64)> = Vec::new();
        for s in &report.scenarios {
            match baseline.scenarios.iter().find(|b| b.name == s.name) {
                Some(b) => pairs.push((s, s.keys_per_sec / b.keys_per_sec)),
                None => println!("  [check] {}: no baseline entry, skipping", s.name),
            }
        }
        let mut sorted: Vec<f64> = pairs.iter().map(|&(_, r)| r).collect();
        sorted.sort_by(f64::total_cmp);
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(1.0);
        // Per-scenario diff table: baseline vs current keys/s, the raw
        // ratio, the median-relative ratio the gate actually judges, the
        // calibration-normalized ratio the uniform backstop judges, and
        // the floor each scenario must clear.
        println!(
            "  {:<24} {:>14} {:>14} {:>7} {:>9} {:>8} {:>7}  verdict",
            "scenario", "baseline k/s", "current k/s", "ratio", "relative", "hw-norm", "floor"
        );
        for &(s, ratio) in &pairs {
            let base = baseline
                .scenarios
                .iter()
                .find(|b| b.name == s.name)
                .expect("paired above")
                .keys_per_sec;
            let relative = ratio / median;
            let normalized = ratio / hw;
            let tolerance = if s.retention == "server" {
                SERVER_MAX_REGRESSION
            } else {
                MAX_REGRESSION
            };
            let verdict = if relative < 1.0 - tolerance {
                failed = true;
                "FAIL"
            } else if normalized < 1.0 - MAX_UNIFORM_REGRESSION {
                failed = true;
                "FAIL (uniform backstop)"
            } else {
                "ok"
            };
            println!(
                "  {:<24} {:>14.0} {:>14.0} {:>7.2} {:>9.2} {:>8.2} {:>7.2}  {}",
                s.name,
                base,
                s.keys_per_sec,
                ratio,
                relative,
                normalized,
                1.0 - tolerance,
                verdict
            );
        }
        // The tentpole's in-run invariant: block-1024 vs scalar block-1,
        // measured seconds apart, must keep the batched-pipeline speedup.
        let find = |name: &str| {
            report
                .scenarios
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.keys_per_sec)
        };
        if let (Some(b1024), Some(b1)) = (find("cluster_u85_block1024"), find("cluster_u85_block1"))
        {
            let speedup = b1024 / b1;
            let verdict = if speedup < BLOCK_SPEEDUP_MIN {
                failed = true;
                "FAIL"
            } else {
                "ok"
            };
            println!("  [check] block1024/block1 in-run speedup {speedup:.2} {verdict}");
        }
        if failed {
            eprintln!("bench check FAILED");
            std::process::exit(1);
        }
        println!("bench check passed");
    } else {
        let path = write_json(&report);
        println!("  json: {}", path.display());
    }
}
