//! Criterion benchmarks for the memlat workspace.
//!
//! Run with `cargo bench --workspace`. Benches:
//!
//! * `solver` — the GI/M/1 `δ` fixed point across arrival laws (closed
//!   form vs numeric Laplace), the cliff-utilization search, Theorem 1
//!   end-to-end.
//! * `distributions` — sampling and transform throughput.
//! * `simulator` — keys/second through the per-server queue and the full
//!   cluster, plus request assembly.
//! * `cache` — slab/LRU store get/set throughput and eviction pressure.
//! * `stats` — ECDF construction, P² updates, histogram recording.
//! * `experiments` — scaled-down regenerations of representative paper
//!   artifacts (Table 3, Fig. 7 point, Table 4 row), the ablation of
//!   product-form vs closed-form estimators, and eq. 23 vs the exact
//!   database estimator.
//!
//! This crate intentionally has no library API; helpers used by several
//! benches live here.

#![forbid(unsafe_code)]

use memlat_model::ModelParams;

/// The paper's base configuration, shared by benches.
#[must_use]
pub fn base_params() -> ModelParams {
    ModelParams::builder()
        .build()
        .expect("paper defaults are valid")
}
