//! Criterion benchmarks for the memlat workspace.
//!
//! Run with `cargo bench --workspace`. Benches:
//!
//! * `solver` — the GI/M/1 `δ` fixed point across arrival laws (closed
//!   form vs numeric Laplace), the cliff-utilization search, Theorem 1
//!   end-to-end.
//! * `distributions` — sampling and transform throughput.
//! * `simulator` — keys/second through the per-server queue and the full
//!   cluster, plus request assembly.
//! * `cache` — slab/LRU store get/set throughput and eviction pressure.
//! * `stats` — ECDF construction, P² updates, histogram recording.
//! * `experiments` — scaled-down regenerations of representative paper
//!   artifacts (Table 3, Fig. 7 point, Table 4 row), the ablation of
//!   product-form vs closed-form estimators, and eq. 23 vs the exact
//!   database estimator.
//!
//! Besides the Criterion suites, the `bench` binary is the repo's perf
//! trajectory: it measures full-cluster keys/sec, wall time and peak RSS
//! at three utilizations plus a server-count scaling sweep
//! (M ∈ {8, 100, 1000, 10000}) and writes `results/BENCH_cluster.json`
//! (schema `memlat-bench-v2`); `--check <baseline>` turns it into a CI
//! regression gate. The helpers below (config, calibration, RSS probe,
//! JSON round-trip) live in the library so both the binary and the
//! Criterion suites share them.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

use memlat_cluster::SimConfig;
use memlat_model::ModelParams;

/// The paper's base configuration, shared by benches.
#[must_use]
pub fn base_params() -> ModelParams {
    ModelParams::builder()
        .build()
        .expect("paper defaults are valid")
}

/// The utilization points of the full-cluster benchmark: the paper's
/// operating point sits at ~0.78, so the trio brackets it.
pub const UTILIZATIONS: &[(&str, f64)] = &[("u50", 0.50), ("u70", 0.70), ("u85", 0.85)];

/// Seed for every bench scenario: fixed so keys counts are reproducible.
pub const BENCH_SEED: u64 = 0xbe9c;

/// Builds the full-cluster benchmark config at server utilization `rho`
/// (per-server key rate `rho · μ_S` under balanced load).
///
/// # Panics
///
/// Panics if `rho` is outside the stable region (validated at build).
#[must_use]
pub fn cluster_config(rho: f64, duration: f64) -> SimConfig {
    let params = ModelParams::builder()
        .key_rate_per_server(rho * 80_000.0)
        .build()
        .expect("bench utilization is stable");
    SimConfig::new(params)
        .duration(duration)
        .warmup(0.1)
        .seed(BENCH_SEED)
}

/// The server counts of the scaling dimension: brackets the paper's
/// small testbed (M = 8-ish) up to the 10k-server deployments its
/// model targets.
pub const SCALE_SERVERS: &[(&str, usize)] =
    &[("m8", 8), ("m100", 100), ("m1k", 1_000), ("m10k", 10_000)];

/// Builds the M-server scaling benchmark config at utilization `rho`.
///
/// The simulated duration is per-scenario (total work scales with
/// `M × duration`, so the sweep holds `M × duration` roughly constant);
/// the warm-up scales with the duration — the per-server queue's
/// relaxation time is milliseconds at `μ_S = 80 Kps`, so even the
/// shortest clamp comfortably covers the transient.
///
/// # Panics
///
/// Panics if `rho` is outside the stable region (validated at build).
#[must_use]
pub fn cluster_config_m(rho: f64, duration: f64, servers: usize) -> SimConfig {
    let params = ModelParams::builder()
        .servers(servers)
        .key_rate_per_server(rho * 80_000.0)
        .build()
        .expect("bench utilization is stable");
    SimConfig::new(params)
        .duration(duration)
        .warmup((duration * 0.1).clamp(0.002, 0.1))
        .seed(BENCH_SEED)
}

/// One measured scenario in the report.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// `cluster_<util>_<retention>`.
    pub name: String,
    /// Target server utilization.
    pub utilization: f64,
    /// `"streaming"` (Summary retention) or `"materialized"` (Full).
    pub retention: String,
    /// Sampling-kernel block size the scenario pinned (`SimConfig::block`);
    /// 0 means the config default (auto-detected, currently 1024).
    pub block: usize,
    /// Simulated server count `M`; 0 means the config default (4).
    pub servers: usize,
    /// Simulated seconds (excluding warm-up).
    pub sim_seconds: f64,
    /// Keys recorded by the run.
    pub keys: u64,
    /// Wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Throughput: `keys / wall_seconds`.
    pub keys_per_sec: f64,
    /// Peak RSS (`VmHWM`) of the process *after* the run, in bytes.
    /// Monotone over the process lifetime, so scenario order matters:
    /// the streaming scenarios run first.
    pub peak_rss_bytes: u64,
}

/// The full `BENCH_cluster.json` payload.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Schema tag, `memlat-bench-v2` (v2 added the `servers` scaling
    /// dimension).
    pub schema: String,
    /// Whether the quick profile was active.
    pub quick: bool,
    /// Hardware calibration: iterations/sec of a fixed spin loop, used
    /// to normalize keys/sec across machines in `--check`.
    pub calibration_spins_per_sec: f64,
    /// Measured scenarios.
    pub scenarios: Vec<Scenario>,
}

impl BenchReport {
    /// Renders the human-readable table printed by the `bench` binary.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== cluster bench ({} profile, calibration {:.3e} spins/s) ==",
            if self.quick { "quick" } else { "full" },
            self.calibration_spins_per_sec
        );
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>6} {:>6} {:>10} {:>10} {:>12} {:>10}",
            "scenario", "rho", "M", "block", "keys", "wall_s", "keys/s", "rss_mb"
        );
        for s in &self.scenarios {
            let block = if s.block == 0 {
                "auto".to_string()
            } else {
                s.block.to_string()
            };
            let servers = if s.servers == 0 {
                "4".to_string()
            } else {
                s.servers.to_string()
            };
            let _ = writeln!(
                out,
                "{:<28} {:>6.2} {:>6} {:>6} {:>10} {:>10.3} {:>12.0} {:>10.1}",
                s.name,
                s.utilization,
                servers,
                block,
                s.keys,
                s.wall_seconds,
                s.keys_per_sec,
                s.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            );
        }
        out
    }

    /// Serializes the report as pretty JSON (schema `memlat-bench-v2`).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{}\",", self.schema);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(
            out,
            "  \"calibration_spins_per_sec\": {},",
            self.calibration_spins_per_sec
        );
        let _ = writeln!(out, "  \"scenarios\": [");
        for (i, s) in self.scenarios.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
            let _ = writeln!(out, "      \"utilization\": {},", s.utilization);
            let _ = writeln!(out, "      \"retention\": \"{}\",", s.retention);
            let _ = writeln!(out, "      \"block\": {},", s.block);
            let _ = writeln!(out, "      \"servers\": {},", s.servers);
            let _ = writeln!(out, "      \"sim_seconds\": {},", s.sim_seconds);
            let _ = writeln!(out, "      \"keys\": {},", s.keys);
            let _ = writeln!(out, "      \"wall_seconds\": {},", s.wall_seconds);
            let _ = writeln!(out, "      \"keys_per_sec\": {},", s.keys_per_sec);
            let _ = writeln!(out, "      \"peak_rss_bytes\": {}", s.peak_rss_bytes);
            let _ = writeln!(
                out,
                "    }}{}",
                if i + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses the pretty JSON written by [`Self::to_json`].
    ///
    /// This is a purpose-built reader for the repo's own artifact (one
    /// `"key": value` pair per line), not a general JSON parser.
    ///
    /// # Panics
    ///
    /// Panics when the text does not carry the `memlat-bench-v2` schema
    /// or a field fails to parse.
    #[must_use]
    pub fn from_json(text: &str) -> Self {
        fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
            let rest = line.trim().strip_prefix("\"")?.strip_prefix(key)?;
            let rest = rest.strip_prefix("\":")?;
            Some(rest.trim().trim_end_matches(',').trim_matches('"'))
        }
        let mut schema = String::new();
        let mut quick = false;
        let mut calibration = 0.0;
        let mut scenarios: Vec<Scenario> = Vec::new();
        let mut cur: Option<Scenario> = None;
        for line in text.lines() {
            if let Some(v) = field(line, "schema") {
                schema = v.to_string();
            } else if let Some(v) = field(line, "quick") {
                quick = v == "true";
            } else if let Some(v) = field(line, "calibration_spins_per_sec") {
                calibration = v.parse().expect("calibration");
            } else if let Some(v) = field(line, "name") {
                cur = Some(Scenario {
                    name: v.to_string(),
                    utilization: 0.0,
                    retention: String::new(),
                    block: 0,
                    servers: 0,
                    sim_seconds: 0.0,
                    keys: 0,
                    wall_seconds: 0.0,
                    keys_per_sec: 0.0,
                    peak_rss_bytes: 0,
                });
            } else if let Some(s) = cur.as_mut() {
                if let Some(v) = field(line, "utilization") {
                    s.utilization = v.parse().expect("utilization");
                } else if let Some(v) = field(line, "retention") {
                    s.retention = v.to_string();
                } else if let Some(v) = field(line, "block") {
                    s.block = v.parse().expect("block");
                } else if let Some(v) = field(line, "servers") {
                    s.servers = v.parse().expect("servers");
                } else if let Some(v) = field(line, "sim_seconds") {
                    s.sim_seconds = v.parse().expect("sim_seconds");
                } else if let Some(v) = field(line, "keys") {
                    s.keys = v.parse().expect("keys");
                } else if let Some(v) = field(line, "wall_seconds") {
                    s.wall_seconds = v.parse().expect("wall_seconds");
                } else if let Some(v) = field(line, "keys_per_sec") {
                    s.keys_per_sec = v.parse().expect("keys_per_sec");
                } else if let Some(v) = field(line, "peak_rss_bytes") {
                    s.peak_rss_bytes = v.parse().expect("peak_rss_bytes");
                    scenarios.push(cur.take().expect("open scenario"));
                }
            }
        }
        assert_eq!(schema, "memlat-bench-v2", "unknown bench schema");
        Self {
            schema,
            quick,
            calibration_spins_per_sec: calibration,
            scenarios,
        }
    }
}

/// Times a fixed integer spin loop and returns iterations/second — a
/// crude single-core speed probe that lets `--check` compare keys/sec
/// across machines in relative units.
#[must_use]
pub fn calibrate_spin_rate() -> f64 {
    const SPINS: u64 = 40_000_000;
    // Best of three: scenario throughput is best-of-N wall time, so the
    // normalizer must also be the machine's unthrottled speed — a single
    // sample landing in a slow scheduling patch would skew every
    // normalized ratio by the full jitter amplitude.
    let mut best = 0.0f64;
    for round in 0..3u64 {
        let start = Instant::now();
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15 ^ round;
        for i in 0..SPINS {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
            acc ^= acc >> 29;
        }
        std::hint::black_box(acc);
        best = best.max(SPINS as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// Peak resident set size (`VmHWM` from `/proc/self/status`) in bytes;
/// 0 when the probe is unavailable (non-Linux).
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// `results/` (workspace-root-relative when run via cargo).
#[must_use]
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .map(|p| p.join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

/// Writes `results/BENCH_cluster.json` and returns the path.
///
/// # Panics
///
/// Panics on I/O errors — the bench binary has nothing useful to do
/// without its artifact.
pub fn write_json(report: &BenchReport) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_cluster.json");
    std::fs::write(&path, report.to_json()).expect("write bench json");
    path
}

/// Reads a baseline report from `path`.
///
/// # Panics
///
/// Panics when the file is missing or malformed.
#[must_use]
pub fn read_baseline(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench baseline {path}: {e}"));
    BenchReport::from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let report = BenchReport {
            schema: "memlat-bench-v2".to_string(),
            quick: true,
            calibration_spins_per_sec: 1.5e9,
            scenarios: vec![Scenario {
                name: "cluster_u70_streaming".to_string(),
                utilization: 0.7,
                retention: "streaming".to_string(),
                block: 256,
                servers: 100,
                sim_seconds: 0.5,
                keys: 123_456,
                wall_seconds: 0.25,
                keys_per_sec: 493_824.0,
                peak_rss_bytes: 12 << 20,
            }],
        };
        let parsed = BenchReport::from_json(&report.to_json());
        assert_eq!(parsed.schema, report.schema);
        assert_eq!(parsed.quick, report.quick);
        assert_eq!(parsed.scenarios.len(), 1);
        let (a, b) = (&parsed.scenarios[0], &report.scenarios[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.retention, b.retention);
        assert_eq!(a.block, b.block);
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.peak_rss_bytes, b.peak_rss_bytes);
        assert!((a.keys_per_sec - b.keys_per_sec).abs() < 1e-9);
        assert!((parsed.calibration_spins_per_sec - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn rss_probe_reports_something_on_linux() {
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0);
        }
    }

    #[test]
    fn cluster_config_hits_target_utilization() {
        let cfg = cluster_config(0.7, 1.0);
        let peak = cfg.params.peak_utilization().unwrap();
        assert!((peak - 0.7).abs() < 1e-12);
    }

    #[test]
    fn scaled_config_sets_servers_and_bounded_warmup() {
        for &(_, m) in SCALE_SERVERS {
            let duration = 24.0 / m as f64;
            let cfg = cluster_config_m(0.7, duration, m);
            assert_eq!(cfg.params.servers(), m);
            let peak = cfg.params.peak_utilization().unwrap();
            assert!((peak - 0.7).abs() < 1e-12);
            assert!(cfg.warmup >= 0.002 && cfg.warmup <= 0.1, "{}", cfg.warmup);
        }
    }
}
