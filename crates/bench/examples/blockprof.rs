//! Component-cost breakdown of the streaming hot path: prints ns/key
//! for each stage (RNG, libm, sketch/Welford pushes, single-server
//! loop, full cluster, arrival stream) at block 1 vs the default block,
//! so a perf change can be attributed to the stage it touched.
//!
//! ```sh
//! cargo run --release -p memlat-bench --example blockprof
//! ```
use std::time::Instant;

use memlat_bench::cluster_config;
use memlat_cluster::{
    config::MissMode,
    fault::{ClientPolicy, ServerFaults},
    server::{simulate_server_streaming_with, BlockScratch, FnSink, ServerSimParams},
    ClusterSim, Retention, SimScratch,
};
use memlat_dist::GapLaw;
use memlat_stats::{QuantileSketch, StreamingStats};
use memlat_workload::facebook;
use rand::{RngCore, SeedableRng};

fn time<F: FnMut()>(label: &str, per: u64, mut f: F) {
    let start = Instant::now();
    f();
    let dt = start.elapsed().as_secs_f64();
    println!(
        "{label:<28} {:>9.3} ms  {:>7.1} ns/key",
        dt * 1e3,
        dt * 1e9 / per as f64
    );
}

fn main() {
    const N: u64 = 2_000_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    time("rng 3x u64", N, || {
        let mut acc = 0u64;
        for _ in 0..N {
            acc ^= rng.next_u64() ^ rng.next_u64() ^ rng.next_u64();
        }
        std::hint::black_box(acc);
    });

    let xs: Vec<f64> = (0..N).map(|i| 1e-4 * (1.0 + (i % 997) as f64)).collect();
    time("ln x2", N, || {
        let mut acc = 0.0f64;
        for &x in &xs {
            acc += x.ln() + (x * 1.001).ln();
        }
        std::hint::black_box(acc);
    });

    let mut sk = QuantileSketch::new();
    time("sketch push", N, || {
        sk.push_slice(&xs);
    });
    std::hint::black_box(sk.count());

    let mut st = StreamingStats::new();
    time("welford push", N, || {
        st.push_slice(&xs);
    });
    std::hint::black_box(st.mean());

    // Single-server streaming loop, counting sink, scalar vs block.
    for block in [1usize, 1024] {
        let mut keys = 0u64;
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        let mut scratch = BlockScratch::new();
        time(&format!("server loop block={block}"), 1_300_000, || {
            let stats = simulate_server_streaming_with(
                ServerSimParams {
                    interarrival: GapLaw::from(facebook::interarrival().unwrap()),
                    concurrency: facebook::CONCURRENCY_Q,
                    service_rate: facebook::SERVICE_RATE,
                    miss_ratio: facebook::MISS_RATIO,
                    miss_mode: &MissMode::FixedRatio,
                    popularity: None,
                    routed: None,
                    warmup: 0.0,
                    duration: 20.0,
                    faults: ServerFaults::none(),
                    client: ClientPolicy::none(),
                    block,
                },
                &mut r2,
                &mut scratch,
                FnSink(|_: &_| keys += 1),
            )
            .unwrap();
            std::hint::black_box(stats.utilization);
        });
        println!("  keys={keys}");
    }

    // Full cluster at u85 streaming, block 1 vs 1024.
    for block in [1usize, 1024] {
        let mut scratch = SimScratch::new();
        let cfg = cluster_config(0.85, 6.0)
            .retention(Retention::Summary)
            .block(block);
        let mut total = 0u64;
        time(&format!("cluster u85 block={block}"), 1_634_038, || {
            let out = ClusterSim::run_with(&cfg, &mut scratch).unwrap();
            total = out.total_keys();
        });
        println!("  keys={total}");
    }

    // Arrival stream: GPD gap (powf) + geometric batch per batch.
    let mut arr =
        memlat_workload::BatchArrivals::new(GapLaw::from(facebook::interarrival().unwrap()), 0.1)
            .unwrap();
    let mut r3 = rand::rngs::StdRng::seed_from_u64(9);
    time("next_batch_with", N, || {
        let mut acc = 0.0;
        for _ in 0..N {
            let (t, b) = arr.next_batch_with(&mut r3);
            acc += t + b as f64;
        }
        std::hint::black_box(acc);
    });

    let law = GapLaw::from(facebook::interarrival().unwrap());
    let mut r6 = rand::rngs::StdRng::seed_from_u64(10);
    time("gaplaw sample_with", N, || {
        let mut acc = 0.0;
        for _ in 0..N {
            acc += law.sample_with(&mut r6);
        }
        std::hint::black_box(acc);
    });

    let mut r8 = rand::rngs::StdRng::seed_from_u64(10);
    time("gaplaw hoisted match", N, || {
        let mut acc = 0.0;
        match &law {
            GapLaw::GeneralizedPareto(d) => {
                for _ in 0..N {
                    acc += d.sample_with(&mut r8);
                }
            }
            _ => unreachable!(),
        }
        std::hint::black_box(acc);
    });

    let geo = memlat_dist::GeometricBatch::new(0.1).unwrap();
    let mut r7 = rand::rngs::StdRng::seed_from_u64(11);
    time("geometric sample_with", N, || {
        let mut acc = 0u64;
        for _ in 0..N {
            acc += geo.sample_with(&mut r7);
        }
        std::hint::black_box(acc);
    });

    let gpd = facebook::interarrival().unwrap();
    let mut r4 = rand::rngs::StdRng::seed_from_u64(10);
    time("gpd sample_with", N, || {
        let mut acc = 0.0;
        for _ in 0..N {
            acc += gpd.sample_with(&mut r4);
        }
        std::hint::black_box(acc);
    });

    let mut buf = vec![0.0f64; 4096];
    let mut r5 = rand::rngs::StdRng::seed_from_u64(10);
    time("gpd fill 4096", N, || {
        for _ in 0..(N as usize / 4096) {
            gpd.fill(&mut r5, &mut buf);
        }
        std::hint::black_box(buf[0]);
    });
}
