//! Benchmarks of the analytical core: δ fixed point, Theorem 1, cliffs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use memlat_bench::base_params;
use memlat_dist::{Exponential, Gamma, GeneralizedPareto, Hyperexponential};
use memlat_model::{cliff, ServerLatencyModel};
use memlat_queue::solve_delta;

fn bench_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta");
    let mu = 72_000.0;

    let exp = Exponential::new(56_250.0).unwrap();
    g.bench_function("poisson_closed_form", |b| {
        b.iter(|| solve_delta(std::hint::black_box(&exp), mu).unwrap())
    });

    let erl = Gamma::erlang(4, 1.0 / 56_250.0).unwrap();
    g.bench_function("erlang4_closed_form", |b| {
        b.iter(|| solve_delta(std::hint::black_box(&erl), mu).unwrap())
    });

    let h2 = Hyperexponential::with_mean_scv(1.0 / 56_250.0, 4.0).unwrap();
    g.bench_function("hyperexp_closed_form", |b| {
        b.iter(|| solve_delta(std::hint::black_box(&h2), mu).unwrap())
    });

    let gpd = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
    g.bench_function("gpd_numeric_laplace", |b| {
        b.iter(|| solve_delta(std::hint::black_box(&gpd), mu).unwrap())
    });

    g.finish();
}

fn bench_theorem1(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorem1");
    let params = base_params();
    g.bench_function("full_estimate", |b| {
        b.iter(|| std::hint::black_box(&params).estimate().unwrap())
    });
    g.bench_function("server_model_solve", |b| {
        b.iter(|| ServerLatencyModel::new(std::hint::black_box(&params)).unwrap())
    });
    let model = ServerLatencyModel::new(&params).unwrap();
    g.bench_function("product_form_quantile", |b| {
        b.iter(|| std::hint::black_box(&model).product_form_bounds(150))
    });
    g.bench_function("closed_form_bounds", |b| {
        b.iter(|| std::hint::black_box(&model).theorem1_bounds(150))
    });
    g.bench_function("fork_join_p999", |b| {
        b.iter(|| std::hint::black_box(&model).fork_join_quantile(150, 0.999))
    });
    let law = memlat_model::RequestLatencyLaw::new(&params).unwrap();
    g.bench_function("request_law_mean", |b| {
        b.iter(|| std::hint::black_box(&law).mean())
    });
    g.bench_function("request_law_p999", |b| {
        b.iter(|| std::hint::black_box(&law).quantile(0.999))
    });
    g.finish();
}

fn bench_cliff(c: &mut Criterion) {
    let mut g = c.benchmark_group("cliff");
    g.sample_size(10);
    g.bench_function("cliff_utilization_xi015", |b| {
        b.iter(|| cliff::cliff_utilization(std::hint::black_box(0.15), 0.1).unwrap())
    });
    g.bench_function("table4_row_xi08", |b| {
        b.iter(|| cliff::cliff_utilization(std::hint::black_box(0.8), 0.1).unwrap())
    });
    g.finish();
}

fn bench_db_estimators(c: &mut Criterion) {
    use memlat_model::database::{db_latency_mean, db_latency_mean_exact};
    let mut g = c.benchmark_group("db_estimator");
    g.bench_function("eq23_closed_form", |b| {
        b.iter(|| db_latency_mean(std::hint::black_box(150), 0.01, 1_000.0))
    });
    g.bench_function("exact_binomial_harmonic", |b| {
        b.iter(|| db_latency_mean_exact(std::hint::black_box(150), 0.01, 1_000.0))
    });
    g.bench_function("exact_binomial_harmonic_n1e6", |b| {
        b.iter_batched(
            || (),
            |()| db_latency_mean_exact(std::hint::black_box(1_000_000), 0.001, 1_000.0),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_delta,
    bench_theorem1,
    bench_cliff,
    bench_db_estimators
);
criterion_main!(benches);
