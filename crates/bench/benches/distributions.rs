//! Sampling and Laplace-transform throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memlat_dist::Discrete;
use memlat_dist::{Continuous, Exponential, GeneralizedPareto, Zipf};
use rand::SeedableRng;

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.throughput(Throughput::Elements(1_000));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    let exp = Exponential::new(80_000.0).unwrap();
    g.bench_function("exponential_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += exp.sample(&mut rng);
            }
            std::hint::black_box(acc)
        })
    });

    let gpd = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
    g.bench_function("generalized_pareto_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += gpd.sample(&mut rng);
            }
            std::hint::black_box(acc)
        })
    });

    let zipf = Zipf::new(50_000_000, 1.01).unwrap();
    g.bench_function("zipf_50m_ranks_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(zipf.sample(&mut rng));
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    use rand::RngCore;
    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(4_096));
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let bits: Vec<u64> = (0..4_096).map(|_| rng.next_u64()).collect();
    let uniforms: Vec<f64> = bits
        .iter()
        .map(|&b| memlat_dist::open_unit_from_bits(b))
        .collect();

    // Scalar deterministic-libm ports, one call per element.
    g.bench_function("dln_4k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &u in &uniforms {
                acc += memlat_dist::simd::dln(u);
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("dexp_4k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &u in &uniforms {
                acc += memlat_dist::simd::dexp(-u);
            }
            std::hint::black_box(acc)
        })
    });

    // Dispatched slice kernels (AVX2 where the host supports it).
    let mut out = Vec::with_capacity(bits.len());
    g.bench_function("exp_from_bits_4k", |b| {
        b.iter(|| {
            // The kernel appends; without the clear the vector grows by
            // 4 096 every iteration and the timing drifts upward.
            out.clear();
            memlat_dist::simd::exp_from_bits(&bits, 80_000.0, &mut out);
            std::hint::black_box(out.last().copied())
        })
    });
    let mut lane = uniforms.clone();
    g.bench_function("gp_transform_4k", |b| {
        b.iter(|| {
            lane.copy_from_slice(&uniforms);
            memlat_dist::simd::gp_transform(&mut lane, 0.15, 1.185e-4);
            std::hint::black_box(lane.last().copied())
        })
    });
    let zpop = memlat_workload::ZipfPopularity::new(1 << 18, 1.01).unwrap();
    let mut keys = Vec::with_capacity(bits.len());
    g.bench_function("alias_from_bits_4k", |b| {
        b.iter(|| {
            zpop.sample_keys_from_bits(&bits, &mut keys);
            std::hint::black_box(keys.last().copied())
        })
    });

    // The arrival block, both ways: the pre-PR-9 serial recurrence
    // (`powf` inside the `clock += gap` chain, one dependent iteration
    // per batch) against the speculative pipeline's shape (lane
    // transform over banked bits, then a serial prefix sum of cheap
    // adds). Same 4 096 gap draws, same GP(ξ = 0.15) law.
    let (xi, sox) = (0.15, 1.185e-4);
    g.bench_function("arrival_block_powf_serial_4k", |b| {
        b.iter(|| {
            let mut clock = 0.0;
            for &u in &uniforms {
                clock += sox * (u.powf(-xi) - 1.0);
            }
            std::hint::black_box(clock)
        })
    });
    let mut gaps = Vec::with_capacity(bits.len());
    g.bench_function("arrival_block_lane_pipeline_4k", |b| {
        b.iter(|| {
            gaps.clear();
            memlat_dist::simd::gp_from_bits(&bits, xi, sox, &mut gaps);
            let mut clock = 0.0;
            for &gap in &gaps {
                clock += gap;
            }
            std::hint::black_box(clock)
        })
    });
    g.finish();
}

fn bench_laplace(c: &mut Criterion) {
    let mut g = c.benchmark_group("laplace");
    let gpd = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
    let exp = Exponential::new(56_250.0).unwrap();
    g.bench_function("gpd_numeric", |b| {
        b.iter(|| std::hint::black_box(&gpd).laplace(std::hint::black_box(13_000.0)))
    });
    g.bench_function("exponential_closed", |b| {
        b.iter(|| std::hint::black_box(&exp).laplace(std::hint::black_box(13_000.0)))
    });
    g.finish();
}

criterion_group!(benches, bench_sampling, bench_kernels, bench_laplace);
criterion_main!(benches);
