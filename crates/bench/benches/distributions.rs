//! Sampling and Laplace-transform throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memlat_dist::Discrete;
use memlat_dist::{Continuous, Exponential, GeneralizedPareto, Zipf};
use rand::SeedableRng;

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.throughput(Throughput::Elements(1_000));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    let exp = Exponential::new(80_000.0).unwrap();
    g.bench_function("exponential_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += exp.sample(&mut rng);
            }
            std::hint::black_box(acc)
        })
    });

    let gpd = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
    g.bench_function("generalized_pareto_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += gpd.sample(&mut rng);
            }
            std::hint::black_box(acc)
        })
    });

    let zipf = Zipf::new(50_000_000, 1.01).unwrap();
    g.bench_function("zipf_50m_ranks_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(zipf.sample(&mut rng));
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

fn bench_laplace(c: &mut Criterion) {
    let mut g = c.benchmark_group("laplace");
    let gpd = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
    let exp = Exponential::new(56_250.0).unwrap();
    g.bench_function("gpd_numeric", |b| {
        b.iter(|| std::hint::black_box(&gpd).laplace(std::hint::black_box(13_000.0)))
    });
    g.bench_function("exponential_closed", |b| {
        b.iter(|| std::hint::black_box(&exp).laplace(std::hint::black_box(13_000.0)))
    });
    g.finish();
}

criterion_group!(benches, bench_sampling, bench_laplace);
criterion_main!(benches);
