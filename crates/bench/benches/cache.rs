//! Slab/LRU store throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use memlat_cache::{Store, StoreConfig};
use memlat_workload::ZipfPopularity;
use rand::SeedableRng;

fn warm_store(memory: usize, items: u64) -> Store {
    let mut s = Store::new(StoreConfig::with_memory(memory)).unwrap();
    for k in 0..items {
        let _ = s.set(k, 200, None, 0.0);
    }
    s
}

fn bench_hits(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_get");
    g.throughput(Throughput::Elements(10_000));
    let mut store = warm_store(64 << 20, 50_000);
    g.bench_function("hot_hits_10k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for k in 0..10_000u64 {
                if store.get(k % 50_000, 0.0).is_hit() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });

    let pop = ZipfPopularity::new(5_000_000, 1.01).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    g.bench_function("zipf_mixed_10k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..10_000 {
                let k = pop.sample_key(&mut rng);
                if store.get(k, 0.0).is_hit() {
                    hits += 1;
                } else {
                    let _ = store.set(k, 200, None, 0.0);
                }
            }
            std::hint::black_box(hits)
        })
    });
    g.finish();
}

fn bench_eviction_pressure(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_set");
    g.sample_size(20);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("evicting_sets_10k", |b| {
        b.iter_batched(
            || warm_store(4 << 20, 20_000),
            |mut store| {
                for k in 1_000_000..1_010_000u64 {
                    let _ = store.set(k, 200, None, 0.0);
                }
                std::hint::black_box(store.stats().evictions)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_hits, bench_eviction_pressure);
criterion_main!(benches);
