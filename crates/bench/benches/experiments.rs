//! Scaled-down regenerations of representative paper artifacts, wired as
//! benches so `cargo bench` exercises the full reproduction pipeline.
//!
//! The publication-quality regeneration lives in
//! `cargo run --release -p memlat-experiments --bin all`; these benches
//! use the quick profile.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use memlat_experiments::experiments;

fn quick() {
    std::env::set_var("MEMLAT_QUICK", "1");
}

fn bench_paper_artifacts(c: &mut Criterion) {
    quick();
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table3_quick", |b| {
        b.iter_batched(|| (), |()| experiments::table3(), BatchSize::PerIteration)
    });
    g.bench_function("table4_full", |b| {
        b.iter_batched(|| (), |()| experiments::table4(), BatchSize::PerIteration)
    });
    g.bench_function("fig08_model_only", |b| {
        b.iter_batched(|| (), |()| experiments::fig08(), BatchSize::PerIteration)
    });
    g.bench_function("fig13_quick", |b| {
        b.iter_batched(|| (), |()| experiments::fig13(), BatchSize::PerIteration)
    });
    g.finish();
}

fn bench_estimator_ablation(c: &mut Criterion) {
    use memlat_model::{ModelParams, ServerLatencyModel};
    quick();
    let mut g = c.benchmark_group("ablation");
    // Product-form (numeric inversion) vs closed-form Theorem 1 bounds on
    // an unbalanced cluster: the accuracy/cost trade-off documented in
    // EXPERIMENTS.md.
    let params = ModelParams::builder()
        .load(memlat_model::LoadDistribution::HotServer { p1: 0.6 })
        .total_key_rate(80_000.0)
        .build()
        .unwrap();
    let model = ServerLatencyModel::new(&params).unwrap();
    g.bench_function("product_form_unbalanced", |b| {
        b.iter(|| std::hint::black_box(&model).product_form_bounds(150))
    });
    g.bench_function("closed_form_unbalanced", |b| {
        b.iter(|| std::hint::black_box(&model).theorem1_bounds(150))
    });
    g.finish();
}

criterion_group!(benches, bench_paper_artifacts, bench_estimator_ablation);
criterion_main!(benches);
