//! Simulator throughput: keys/second through the queueing engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use memlat_bench::base_params;
use memlat_cluster::{assembly::assemble_requests, ClusterSim, SimConfig};
use rand::SeedableRng;

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    // 0.2 s of Facebook traffic ≈ 50 K keys across 4 servers.
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("facebook_0p2s", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                SimConfig::new(base_params())
                    .duration(0.2)
                    .warmup(0.0)
                    .seed(seed)
            },
            |cfg| ClusterSim::run(&cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Sequential vs parallel dispatch on the Table-3 configuration.
/// The outputs are bit-identical; only wall-clock should differ.
fn bench_parallel_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_threads");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("table3_0p5s_t{threads}").as_str(), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    SimConfig::new(base_params())
                        .duration(0.5)
                        .warmup(0.1)
                        .seed(seed)
                        .threads(threads)
                },
                |cfg| ClusterSim::run(&cfg).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_assembly(c: &mut Criterion) {
    let out = ClusterSim::run(
        &SimConfig::new(base_params())
            .duration(0.5)
            .warmup(0.1)
            .seed(3),
    )
    .unwrap();
    let mut g = c.benchmark_group("assembly");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("requests_n150_1k", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        b.iter(|| assemble_requests(std::hint::black_box(&out), 150, 1_000, &mut rng))
    });
    g.finish();
}

fn bench_e2e(c: &mut Criterion) {
    use memlat_cluster::e2e::{run_e2e, E2eConfig};
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("requests_1k", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                E2eConfig::new(base_params()).requests(1_000).seed(seed)
            },
            |cfg| run_e2e(&cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cluster,
    bench_parallel_speedup,
    bench_assembly,
    bench_e2e
);
criterion_main!(benches);
