//! Simulator throughput: keys/second through the queueing engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use memlat_bench::{base_params, cluster_config, UTILIZATIONS};
use memlat_cluster::{
    assembly::assemble_requests,
    config::MissMode,
    fault::{ClientPolicy, ServerFaults},
    server::{simulate_server_streaming, ServerSimParams},
    ClusterSim, Retention, SimConfig, SimScratch,
};
use memlat_dist::GapLaw;
use memlat_workload::facebook;
use rand::SeedableRng;

/// The single-server DES hot loop in isolation: batch draws → FCFS
/// Lindley recursion → miss decision, streamed into a counting sink.
fn bench_single_server(c: &mut Criterion) {
    let mut g = c.benchmark_group("server");
    g.sample_size(10);
    // 0.5 s of Facebook traffic at one server ≈ 31 K keys.
    g.throughput(Throughput::Elements(31_000));
    g.bench_function("facebook_0p5s_streaming", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut keys = 0u64;
            let stats = simulate_server_streaming(
                ServerSimParams {
                    interarrival: GapLaw::from(facebook::interarrival().unwrap()),
                    concurrency: facebook::CONCURRENCY_Q,
                    service_rate: facebook::SERVICE_RATE,
                    miss_ratio: facebook::MISS_RATIO,
                    miss_mode: &MissMode::FixedRatio,
                    popularity: None,
                    routed: None,
                    warmup: 0.0,
                    duration: 0.5,
                    faults: ServerFaults::none(),
                    client: ClientPolicy::none(),
                    block: 1,
                },
                &mut rng,
                |_| keys += 1,
            )
            .unwrap();
            std::hint::black_box((keys, stats.utilization));
        })
    });
    g.finish();
}

/// The full cluster at the three utilization points of the `bench`
/// binary, on the zero-materialization path with a reused scratch.
fn bench_cluster_utilizations(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_util");
    g.sample_size(10);
    for &(label, rho) in UTILIZATIONS {
        g.bench_function(format!("{label}_0p2s_streaming").as_str(), |b| {
            let mut scratch = SimScratch::new();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let cfg = cluster_config(rho, 0.2)
                    .seed(seed)
                    .retention(Retention::Summary);
                std::hint::black_box(ClusterSim::run_with(&cfg, &mut scratch).unwrap());
            })
        });
    }
    g.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    // 0.2 s of Facebook traffic ≈ 50 K keys across 4 servers.
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("facebook_0p2s", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                SimConfig::new(base_params())
                    .duration(0.2)
                    .warmup(0.0)
                    .seed(seed)
            },
            |cfg| ClusterSim::run(&cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Sequential vs parallel dispatch on the Table-3 configuration.
/// The outputs are bit-identical; only wall-clock should differ.
fn bench_parallel_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_threads");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("table3_0p5s_t{threads}").as_str(), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    SimConfig::new(base_params())
                        .duration(0.5)
                        .warmup(0.1)
                        .seed(seed)
                        .threads(threads)
                },
                |cfg| ClusterSim::run(&cfg).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_assembly(c: &mut Criterion) {
    let out = ClusterSim::run(
        &SimConfig::new(base_params())
            .duration(0.5)
            .warmup(0.1)
            .seed(3),
    )
    .unwrap();
    let mut g = c.benchmark_group("assembly");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("requests_n150_1k", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        b.iter(|| assemble_requests(std::hint::black_box(&out), 150, 1_000, &mut rng))
    });
    g.finish();
}

fn bench_e2e(c: &mut Criterion) {
    use memlat_cluster::e2e::{run_e2e, E2eConfig};
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("requests_1k", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                E2eConfig::new(base_params()).requests(1_000).seed(seed)
            },
            |cfg| run_e2e(&cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_single_server,
    bench_cluster,
    bench_cluster_utilizations,
    bench_parallel_speedup,
    bench_assembly,
    bench_e2e
);
criterion_main!(benches);
