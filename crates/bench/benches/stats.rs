//! Measurement-substrate throughput: ECDF, P², histograms.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use memlat_stats::{Ecdf, LogHistogram, P2Quantile, StreamingStats};
use rand::{Rng, SeedableRng};

fn samples(n: usize) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    (0..n)
        .map(|_| -(1.0 - rng.gen::<f64>()).max(1e-15).ln() * 1e-4)
        .collect()
}

fn bench_ecdf(c: &mut Criterion) {
    let xs = samples(1_000_000);
    let mut g = c.benchmark_group("ecdf");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("build_1m", |b| {
        b.iter_batched(|| xs.clone(), Ecdf::from_samples2, BatchSize::LargeInput)
    });
    let e = Ecdf::from_samples(&xs);
    g.bench_function("quantile_lookup", |b| {
        b.iter(|| std::hint::black_box(&e).quantile(std::hint::black_box(0.9999)))
    });
    g.finish();
}

// Helper adapting the by-value clone into the by-ref constructor.
trait EcdfExt {
    fn from_samples2(v: Vec<f64>) -> Ecdf;
}
impl EcdfExt for Ecdf {
    fn from_samples2(v: Vec<f64>) -> Ecdf {
        Ecdf::from_samples(&v)
    }
}

fn bench_streaming(c: &mut Criterion) {
    let xs = samples(100_000);
    let mut g = c.benchmark_group("streaming");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("welford_100k", |b| {
        b.iter(|| {
            let mut s = StreamingStats::new();
            for &x in &xs {
                s.push(x);
            }
            std::hint::black_box(s.mean())
        })
    });
    g.bench_function("p2_100k", |b| {
        b.iter(|| {
            let mut p2 = P2Quantile::new(0.99);
            for &x in &xs {
                p2.push(x);
            }
            std::hint::black_box(p2.estimate())
        })
    });
    g.bench_function("log_histogram_100k", |b| {
        b.iter(|| {
            let mut h = LogHistogram::for_latencies();
            for &x in &xs {
                h.record(x);
            }
            std::hint::black_box(h.quantile(0.99))
        })
    });
    g.finish();
}

fn bench_push_slice(c: &mut Criterion) {
    // Slice entry points vs per-key pushes over the same data — the
    // block hot path folds whole lanes at a time, so this is the fold
    // cost the simulator actually pays.
    let xs = samples(100_000);
    let mut g = c.benchmark_group("push_slice");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("welford_slice_100k", |b| {
        b.iter(|| {
            let mut s = StreamingStats::new();
            s.push_slice(&xs);
            std::hint::black_box(s.mean())
        })
    });
    g.bench_function("sketch_slice_100k", |b| {
        b.iter(|| {
            let mut s = memlat_stats::QuantileSketch::new();
            s.push_slice(&xs);
            std::hint::black_box(s.quantile(0.99))
        })
    });
    g.bench_function("sketch_scalar_100k", |b| {
        b.iter(|| {
            let mut s = memlat_stats::QuantileSketch::new();
            for &x in &xs {
                s.push(x);
            }
            std::hint::black_box(s.quantile(0.99))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ecdf, bench_streaming, bench_push_slice);
criterion_main!(benches);
