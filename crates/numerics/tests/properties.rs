//! Property-based tests for the numerics substrate.

use memlat_numerics::integrate::{adaptive_simpson, integrate_panels};
use memlat_numerics::kahan::compensated_sum;
use memlat_numerics::roots::{bisect, brent, unit_fixed_point};
use memlat_numerics::special::{gamma_p, harmonic, ln_gamma};
use proptest::prelude::*;

proptest! {
    /// Both root finders locate the root of a shifted cubic anywhere in the
    /// bracket, to the requested tolerance.
    #[test]
    fn root_finders_agree_on_monotone_cubic(c in -8.0f64..8.0) {
        let f = |x: f64| x * x * x - c;
        let r1 = bisect(f, -10.0, 10.0, 1e-12, 500).unwrap();
        let r2 = brent(f, -10.0, 10.0, 1e-12, 200).unwrap();
        prop_assert!((r1 - c.cbrt()).abs() < 1e-9);
        prop_assert!((r2 - c.cbrt()).abs() < 1e-9);
    }

    /// The GI/M/1-shaped fixed point for Poisson arrivals is exactly ρ.
    #[test]
    fn poisson_fixed_point_is_rho(rho in 0.01f64..0.995) {
        let d = unit_fixed_point(|x| rho / (rho + (1.0 - x)), 1e-13).unwrap();
        prop_assert!((d - rho).abs() < 1e-7);
    }

    /// Simpson integrates affine functions exactly (up to fp noise).
    #[test]
    fn simpson_affine_exact(a in -5.0f64..5.0, b in -5.0f64..5.0, lo in -3.0f64..0.0, hi in 0.1f64..3.0) {
        let v = adaptive_simpson(|x| a * x + b, lo, hi, 1e-13);
        let exact = a * (hi * hi - lo * lo) / 2.0 + b * (hi - lo);
        prop_assert!((v - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    /// Panel quadrature is additive over adjacent intervals.
    #[test]
    fn panels_additive(split in 0.1f64..0.9) {
        let f = |x: f64| (-x).exp() * (3.0 * x).sin().abs();
        let whole = integrate_panels(f, 0.0, 1.0, 128);
        let parts = integrate_panels(f, 0.0, split, 64) + integrate_panels(f, split, 1.0, 64);
        prop_assert!((whole - parts).abs() < 1e-6);
    }

    /// Compensated summation is permutation-insensitive for benign inputs.
    #[test]
    fn kahan_order_insensitive(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let fwd = compensated_sum(&xs);
        xs.reverse();
        let rev = compensated_sum(&xs);
        prop_assert!((fwd - rev).abs() <= 1e-6 * (1.0 + fwd.abs()));
    }

    /// ln Γ satisfies the recurrence Γ(x+1) = xΓ(x).
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    /// The regularized incomplete gamma is a CDF: within [0,1] and
    /// monotone in x.
    #[test]
    fn gamma_p_is_cdf(a in 0.1f64..30.0, x in 0.0f64..100.0, dx in 0.0f64..10.0) {
        let p1 = gamma_p(a, x);
        let p2 = gamma_p(a, x + dx);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
        prop_assert!(p2 >= p1 - 1e-12);
    }

    /// Harmonic numbers are increasing with decreasing increments.
    #[test]
    fn harmonic_concave_increasing(n in 1u64..5000) {
        let a = harmonic(n);
        let b = harmonic(n + 1);
        let c = harmonic(n + 2);
        prop_assert!(b > a);
        prop_assert!(c - b <= b - a + 1e-15);
    }
}
