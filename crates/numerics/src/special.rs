//! Special functions: `ln Γ`, regularized incomplete gamma, harmonic
//! numbers.
//!
//! These back the Erlang/gamma distribution CDFs and the exact
//! max-of-exponentials statistics (`E[max_{i≤K} Exp(μ)] = H_K/μ`) used to
//! quantify the paper's `ln(K+1)` approximation.

/// Euler–Mascheroni constant γ.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to
/// ~1e-13 relative error across the positive axis.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection formula is intentionally not
/// implemented; the model never needs it).
///
/// # Examples
///
/// ```
/// use memlat_numerics::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11); // Γ(5) = 24
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Γ(x) = Γ(x+1)/x
        return ln_gamma(x + 1.0) - x.ln();
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// This is the CDF of a Gamma(shape `a`, rate 1) random variable at `x`.
/// Follows Numerical Recipes: series expansion for `x < a + 1`, continued
/// fraction for the complement otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use memlat_numerics::special::gamma_p;
/// // Gamma(1, 1) is Exp(1): P(1, x) = 1 - e^{-x}.
/// assert!((gamma_p(1.0, 2.0) - (1.0 - (-2f64).exp())).abs() < 1e-12);
/// ```
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Same contract as [`gamma_p`].
///
/// # Examples
///
/// ```
/// use memlat_numerics::special::{gamma_p, gamma_q};
/// assert!((gamma_p(2.5, 1.3) + gamma_q(2.5, 1.3) - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// This is the CDF of a Beta(a, b) random variable at `x`, the kernel
/// behind the Student-t CDF (and therefore the t critical values the
/// conformance harness uses for replication confidence intervals).
/// Follows Numerical Recipes: continued fraction on whichever side of
/// the mean converges fast, symmetry for the other.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use memlat_numerics::special::beta_inc;
/// // Beta(1,1) is Uniform(0,1): I_x(1,1) = x.
/// assert!((beta_inc(1.0, 1.0, 0.3) - 0.3).abs() < 1e-12);
/// ```
#[must_use]
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0, "beta_inc requires a > 0, got {a}");
    assert!(b > 0.0, "beta_inc requires b > 0, got {b}");
    assert!(
        (0.0..=1.0).contains(&x),
        "beta_inc requires x in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // The prefactor is symmetric under (a, x) ↔ (b, 1−x).
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_contfrac(a, b, x) / a
    } else {
        1.0 - front * beta_contfrac(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta (NR `betacf`).
fn beta_contfrac(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = f64::from(m);
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// The `n`-th harmonic number `H_n = Σ_{i=1}^{n} 1/i`.
///
/// Exact summation up to `n = 10_000`; the asymptotic expansion
/// `ln n + γ + 1/(2n) − 1/(12n²)` beyond that (error < 1e-14 there).
/// `H_0 = 0`.
///
/// This gives the exact expectation of the maximum of `n` i.i.d.
/// exponentials, which the paper approximates by `ln(n + 1)` in eq. (21).
///
/// # Examples
///
/// ```
/// use memlat_numerics::special::harmonic;
/// assert_eq!(harmonic(0), 0.0);
/// assert!((harmonic(3) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-15);
/// ```
#[must_use]
pub fn harmonic(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 10_000 {
        let mut s = crate::KahanSum::new();
        // Summing small-to-large keeps the compensation effective.
        for i in (1..=n).rev() {
            s.add(1.0 / i as f64);
        }
        s.sum()
    } else {
        let nf = n as f64;
        nf.ln() + EULER_GAMMA + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            // Γ(n) = (n-1)!
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-10, "n={n}");
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_is_exponential_cdf_for_shape_one() {
        for x in [0.0f64, 0.1, 1.0, 3.0, 10.0] {
            let expect = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x) - expect).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn gamma_p_erlang_2() {
        // Erlang(2, rate 1) CDF: 1 - e^{-x}(1 + x).
        for x in [0.5f64, 1.0, 2.0, 5.0, 20.0] {
            let expect = 1.0 - (-x).exp() * (1.0 + x);
            assert!((gamma_p(2.0, x) - expect).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn gamma_p_q_complement() {
        for a in [0.3, 1.0, 2.5, 10.0, 50.0] {
            for x in [0.01, 0.5, 1.0, 5.0, 60.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x} s={s}");
            }
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.2;
            let v = gamma_p(3.0, x);
            assert!(v >= prev - 1e-15);
            prev = v;
        }
    }

    #[test]
    fn beta_inc_uniform_is_identity() {
        for x in [0.0, 0.1, 0.25, 0.5, 0.9, 1.0] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn beta_inc_arcsine_law() {
        // I_x(1/2, 1/2) = (2/π) asin(√x).
        for x in [0.05f64, 0.3, 0.5, 0.7, 0.95] {
            let expect = 2.0 / std::f64::consts::PI * x.sqrt().asin();
            assert!((beta_inc(0.5, 0.5, x) - expect).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn beta_inc_symmetry_and_monotonicity() {
        for (a, b) in [(2.0, 3.0), (0.5, 5.0), (10.0, 10.0), (1.5, 0.7)] {
            let mut prev = 0.0;
            for i in 0..=50 {
                let x = f64::from(i) / 50.0;
                let v = beta_inc(a, b, x);
                assert!(v >= prev - 1e-12, "a={a} b={b} x={x}");
                assert!(
                    (v + beta_inc(b, a, 1.0 - x) - 1.0).abs() < 1e-10,
                    "a={a} b={b} x={x}"
                );
                prev = v;
            }
        }
    }

    #[test]
    fn beta_inc_binomial_identity() {
        // I_p(k, n−k+1) = P{Bin(n, p) ≥ k}; n=5, k=3, p=0.4:
        // P = sum_{j=3}^{5} C(5,j) 0.4^j 0.6^(5−j) = 0.31744.
        assert!((beta_inc(3.0, 3.0, 0.4) - 0.317_44).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "requires x in [0,1]")]
    fn beta_inc_rejects_out_of_range() {
        let _ = beta_inc(1.0, 1.0, 1.5);
    }

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(10) - 2.928_968_253_968_254).abs() < 1e-12);
        assert!((harmonic(100) - 5.187_377_517_639_621).abs() < 1e-10);
    }

    #[test]
    fn harmonic_asymptotic_continuity() {
        // The switch between exact and asymptotic must be seamless.
        let exact: f64 = (1..=10_000u64).map(|i| 1.0 / i as f64).sum();
        let asym =
            10_001f64.ln() + EULER_GAMMA + 1.0 / 20_002.0 - 1.0 / (12.0 * 10_001f64 * 10_001f64);
        assert!((harmonic(10_000) - exact).abs() < 1e-12);
        assert!((harmonic(10_001) - asym).abs() < 1e-12);
        assert!((harmonic(10_001) - harmonic(10_000)).abs() < 1.1 / 10_000.0);
    }

    #[test]
    fn harmonic_matches_ln_plus_gamma_for_large_n() {
        let n = 1_000_000u64;
        let h = harmonic(n);
        assert!((h - ((n as f64).ln() + EULER_GAMMA)).abs() < 1e-6);
    }
}
