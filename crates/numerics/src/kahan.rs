//! Compensated (Kahan–Babuška) summation.

/// A running sum with Neumaier's improved Kahan compensation.
///
/// Long simulation runs accumulate millions of latency samples; naive `f64`
/// summation loses precision once the running sum dwarfs the increments.
/// `KahanSum` keeps a correction term so the result is accurate to within a
/// few ulps regardless of length.
///
/// # Examples
///
/// ```
/// use memlat_numerics::KahanSum;
///
/// let mut s = KahanSum::new();
/// for _ in 0..10_000 {
///     s.add(0.1);
/// }
/// assert!((s.sum() - 1000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty sum.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term to the running sum.
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// Returns the compensated total.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Resets the accumulator to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

impl Extend<f64> for KahanSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

/// Sums a slice with compensation; convenience wrapper over [`KahanSum`].
///
/// # Examples
///
/// ```
/// let total = memlat_numerics::kahan::compensated_sum(&[1.0, 1e100, 1.0, -1e100]);
/// assert_eq!(total, 2.0);
/// ```
#[must_use]
pub fn compensated_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<KahanSum>().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().sum(), 0.0);
    }

    #[test]
    fn catastrophic_cancellation_is_compensated() {
        // Naive summation yields 0.0 here; Neumaier keeps the small terms.
        assert_eq!(compensated_sum(&[1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn many_small_terms() {
        let mut s = KahanSum::new();
        for _ in 0..1_000_000 {
            s.add(1e-6);
        }
        assert!((s.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: KahanSum = [1.0, 2.0, 3.0].into_iter().collect();
        s.extend([4.0]);
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = KahanSum::new();
        s.add(5.0);
        s.reset();
        assert_eq!(s.sum(), 0.0);
    }
}
