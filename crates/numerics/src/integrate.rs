//! Numerical quadrature.
//!
//! Used by `memlat-dist` to evaluate Laplace–Stieltjes transforms of
//! distributions without a closed form (most importantly the Generalized
//! Pareto inter-arrival law of the Facebook workload).

/// Adaptive Simpson quadrature of `f` over the finite interval `[a, b]`.
///
/// Recursively subdivides until the local Richardson error estimate drops
/// below the requested tolerance. `f` must be finite on `[a, b]`.
///
/// # Panics
///
/// Does not panic; non-finite inputs yield NaN which propagates to the
/// caller.
///
/// # Examples
///
/// ```
/// use memlat_numerics::adaptive_simpson;
/// let v = adaptive_simpson(|x| x.sin(), 0.0, std::f64::consts::PI, 1e-12);
/// assert!((v - 2.0).abs() < 1e-10);
/// ```
#[must_use]
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson_panel(a, b, fa, fm, fb);
    adaptive_step(&f, a, b, fa, fm, fb, whole, tol.max(f64::EPSILON), 60)
}

fn simpson_panel(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_step<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_panel(a, m, fa, flm, fm);
    let right = simpson_panel(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation: the composite estimate plus the
        // fourth-order correction term.
        left + right + delta / 15.0
    } else {
        adaptive_step(f, a, m, fa, flm, fm, left, tol * 0.5, depth - 1)
            + adaptive_step(f, m, b, fm, frm, fb, right, tol * 0.5, depth - 1)
    }
}

/// 20-point Gauss–Legendre abscissae on `[-1, 1]` (positive half; the rule
/// is symmetric).
const GL20_X: [f64; 10] = [
    0.076_526_521_133_497_32,
    0.227_785_851_141_645_1,
    0.373_706_088_715_419_56,
    0.510_867_001_950_827_1,
    0.636_053_680_726_515_1,
    0.746_331_906_460_150_8,
    0.839_116_971_822_218_8,
    0.912_234_428_251_326,
    0.963_971_927_277_913_8,
    0.993_128_599_185_094_9,
];
const GL20_W: [f64; 10] = [
    0.152_753_387_130_725_85,
    0.149_172_986_472_603_75,
    0.142_096_109_318_382_05,
    0.131_688_638_449_176_63,
    0.118_194_531_961_518_42,
    0.101_930_119_817_240_44,
    0.083_276_741_576_704_75,
    0.062_672_048_334_109_06,
    0.040_601_429_800_386_94,
    0.017_614_007_139_152_12,
];

/// Fixed 20-point Gauss–Legendre quadrature of `f` over `[a, b]`.
///
/// Exact for polynomials up to degree 39; used as the panel rule inside
/// [`integrate_panels`].
///
/// # Examples
///
/// ```
/// use memlat_numerics::integrate::gauss_legendre;
/// let v = gauss_legendre(|x| x * x, 0.0, 3.0);
/// assert!((v - 9.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn gauss_legendre<F: Fn(f64) -> f64>(f: F, a: f64, b: f64) -> f64 {
    let c = 0.5 * (a + b);
    let h = 0.5 * (b - a);
    let mut acc = 0.0;
    for i in 0..10 {
        let dx = h * GL20_X[i];
        acc += GL20_W[i] * (f(c - dx) + f(c + dx));
    }
    acc * h
}

/// Integrates `f` over `[a, b]` by splitting into `n` equal panels, each
/// handled by the 20-point Gauss–Legendre rule.
///
/// Preferable to a single high-order rule when the integrand has a sharp
/// feature (e.g. `e^{-st}` against a heavy-tailed density).
///
/// # Examples
///
/// ```
/// use memlat_numerics::integrate::integrate_panels;
/// let v = integrate_panels(|x: f64| (-x).exp(), 0.0, 40.0, 32);
/// assert!((v - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn integrate_panels<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    let n = n.max(1);
    let h = (b - a) / n as f64;
    let mut acc = crate::KahanSum::new();
    for i in 0..n {
        let lo = a + i as f64 * h;
        acc.add(gauss_legendre(&f, lo, lo + h));
    }
    acc.sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_polynomial_is_exact() {
        let v = adaptive_simpson(|x| 3.0 * x * x, 0.0, 2.0, 1e-12);
        assert!((v - 8.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_zero_width() {
        assert_eq!(adaptive_simpson(|x| x, 1.0, 1.0, 1e-12), 0.0);
    }

    #[test]
    fn simpson_oscillatory() {
        let v = adaptive_simpson(|x| (10.0 * x).cos(), 0.0, 1.0, 1e-12);
        assert!((v - 10f64.sin() / 10.0).abs() < 1e-10);
    }

    #[test]
    fn simpson_reversed_interval_is_negated() {
        let fwd = adaptive_simpson(|x| x.exp(), 0.0, 1.0, 1e-12);
        let rev = adaptive_simpson(|x| x.exp(), 1.0, 0.0, 1e-12);
        assert!((fwd + rev).abs() < 1e-10);
    }

    #[test]
    fn gauss_legendre_high_degree() {
        // Degree-19 polynomial: exactly integrated by a 20-point rule.
        let v = gauss_legendre(|x| x.powi(19), 0.0, 1.0);
        assert!((v - 1.0 / 20.0).abs() < 1e-13);
    }

    #[test]
    fn panels_exponential_tail() {
        let v = integrate_panels(|x: f64| (-2.0 * x).exp(), 0.0, 30.0, 64);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn panels_vs_simpson_agreement() {
        let f = |x: f64| (1.0 + x).ln() / (1.0 + x * x);
        let a = adaptive_simpson(f, 0.0, 5.0, 1e-12);
        let b = integrate_panels(f, 0.0, 5.0, 64);
        assert!((a - b).abs() < 1e-10);
    }
}
