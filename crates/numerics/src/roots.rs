//! Bracketing root finders.
//!
//! The memcached latency model repeatedly solves one-dimensional fixed
//! points such as the GI/M/1 equation `δ = L_TX((1-δ)(1-q)μ_S)`; these are
//! smooth, monotone problems on a known bracket, so robust bracketing
//! methods (bisection and Brent's method) are the right tool.

use std::fmt;

/// Error returned by the root finders in this module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RootError {
    /// `f(lo)` and `f(hi)` have the same sign, so the bracket contains no
    /// guaranteed root.
    NoBracket {
        /// Function value at the lower end of the bracket.
        f_lo: f64,
        /// Function value at the upper end of the bracket.
        f_hi: f64,
    },
    /// The iteration budget was exhausted before the tolerance was met.
    MaxIterations {
        /// Best estimate of the root when iteration stopped.
        best: f64,
    },
    /// The function returned NaN inside the bracket.
    NotANumber,
    /// The bracket itself was invalid (`lo >= hi`, or non-finite).
    InvalidBracket,
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootError::NoBracket { f_lo, f_hi } => {
                write!(f, "no sign change on bracket (f(lo)={f_lo}, f(hi)={f_hi})")
            }
            RootError::MaxIterations { best } => {
                write!(f, "iteration budget exhausted (best estimate {best})")
            }
            RootError::NotANumber => write!(f, "function returned NaN inside the bracket"),
            RootError::InvalidBracket => write!(f, "invalid bracket"),
        }
    }
}

impl std::error::Error for RootError {}

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// Requires a sign change over the bracket. Converges linearly but is
/// unconditionally robust, which matters because the model evaluates
/// numeric Laplace transforms whose derivatives are not available.
///
/// # Errors
///
/// Returns [`RootError::NoBracket`] if `f(lo)` and `f(hi)` have the same
/// strict sign, [`RootError::InvalidBracket`] for a degenerate interval,
/// [`RootError::NotANumber`] if `f` produces NaN, and
/// [`RootError::MaxIterations`] if `max_iter` bisections do not shrink the
/// interval below `tol`.
///
/// # Examples
///
/// ```
/// use memlat_numerics::roots::bisect;
/// let r = bisect(|x| x.cos() - x, 0.0, 1.0, 1e-12, 200).unwrap();
/// assert!((r - 0.7390851332151607).abs() < 1e-9);
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    if lo >= hi || !lo.is_finite() || !hi.is_finite() {
        return Err(RootError::InvalidBracket);
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa.is_nan() || fb.is_nan() {
        return Err(RootError::NotANumber);
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket { f_lo: fa, f_hi: fb });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm.is_nan() {
            return Err(RootError::NotANumber);
        }
        if fm == 0.0 || (b - a) * 0.5 < tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(RootError::MaxIterations {
        best: 0.5 * (a + b),
    })
}

/// Finds a root of `f` on `[lo, hi]` using Brent's method.
///
/// Combines bisection with inverse quadratic interpolation and the secant
/// method; superlinear on smooth problems while retaining the bisection
/// robustness guarantee. This is the default solver for the GI/M/1 `δ`
/// fixed point.
///
/// # Errors
///
/// Same contract as [`bisect`].
///
/// # Examples
///
/// ```
/// use memlat_numerics::roots::brent;
/// let r = brent(|x| x * x * x - 2.0, 0.0, 2.0, 1e-14, 100).unwrap();
/// assert!((r - 2f64.cbrt()).abs() < 1e-12);
/// ```
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    if lo >= hi || !lo.is_finite() || !hi.is_finite() {
        return Err(RootError::InvalidBracket);
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa.is_nan() || fb.is_nan() {
        return Err(RootError::NotANumber);
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket { f_lo: fa, f_hi: fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };

        let lower = (3.0 * a + b) / 4.0;
        let cond1 = !((lower.min(b)..=lower.max(b)).contains(&s));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && (c - d).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        if fs.is_nan() {
            return Err(RootError::NotANumber);
        }
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations { best: b })
}

/// Solves the fixed point `x = g(x)` on `(0, 1)` for a continuous,
/// increasing `g` with `g(0) > 0` — the shape of the GI/M/1 `δ` equation.
///
/// Internally rewrites the problem as the root of `g(x) - x` and applies
/// [`brent`] on `[0, 1 - eps]`, which excludes the trivial fixed point at
/// 1 that exists for every stable queue.
///
/// # Errors
///
/// Propagates the [`RootError`] of the underlying solver; in particular,
/// an unstable queue (`ρ ≥ 1`) produces [`RootError::NoBracket`] because
/// `g(x) - x` does not change sign on the open unit interval.
///
/// # Examples
///
/// ```
/// use memlat_numerics::roots::unit_fixed_point;
/// // For a Poisson arrival process, δ solves λ/(λ + (1-δ)μ) = δ ⇒ δ = ρ.
/// let (lam, mu) = (0.5, 1.0);
/// let delta = unit_fixed_point(|d| lam / (lam + (1.0 - d) * mu), 1e-13).unwrap();
/// assert!((delta - 0.5).abs() < 1e-10);
/// ```
pub fn unit_fixed_point<F: FnMut(f64) -> f64>(mut g: F, tol: f64) -> Result<f64, RootError> {
    // The non-trivial root can sit arbitrarily close to 1 (heavily loaded
    // queues), where g(x) − x shrinks below the numeric noise floor of a
    // quadrature-based g. Walk the upper bracket endpoint toward 1 and use
    // the first endpoint with a confirmed sign change.
    let mut h = |x: f64| g(x) - x;
    let mut last_err = RootError::InvalidBracket;
    for eps in [1e-3, 1e-6, 1e-9, 1e-12] {
        let hi = 1.0 - eps;
        let fhi = h(hi);
        if fhi.is_nan() {
            return Err(RootError::NotANumber);
        }
        if fhi < 0.0 {
            return brent(&mut h, 0.0, hi, tol, 200);
        }
        last_err = RootError::NoBracket {
            f_lo: h(0.0),
            f_hi: fhi,
        };
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_simple_quadratic() {
        let r = bisect(|x| x * x - 4.0, 0.0, 10.0, 1e-12, 200).unwrap();
        assert!((r - 2.0).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(RootError::NoBracket {
                f_lo: 2.0,
                f_hi: 2.0
            })
        );
        assert_eq!(
            bisect(|x| x, 1.0, 1.0, 1e-12, 100),
            Err(RootError::InvalidBracket)
        );
    }

    #[test]
    fn bisect_returns_exact_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100), Ok(0.0));
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100), Ok(1.0));
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| x.exp() - 3.0;
        let rb = bisect(f, 0.0, 2.0, 1e-13, 300).unwrap();
        let rr = brent(f, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!((rb - rr).abs() < 1e-9);
        assert!((rr - 3f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn brent_handles_steep_function() {
        let r = brent(|x| (x - 0.999).tan(), 0.5, 1.4, 1e-13, 200).unwrap();
        assert!((r - 0.999).abs() < 1e-9);
    }

    #[test]
    fn brent_detects_nan() {
        let res = brent(
            |x| if x > 0.5 { f64::NAN } else { -1.0 },
            0.0,
            0.4,
            1e-12,
            100,
        );
        // f(hi)=f(0.4) is fine (-1), so the bracket has no sign change.
        assert!(matches!(res, Err(RootError::NoBracket { .. })));
        let res2 = brent(
            |x| if x > 0.5 { f64::NAN } else { -1.0 },
            0.0,
            1.0,
            1e-12,
            100,
        );
        assert_eq!(res2, Err(RootError::NotANumber));
    }

    #[test]
    fn fixed_point_poisson_delta_equals_rho() {
        for rho in [0.05, 0.3, 0.5, 0.781, 0.95, 0.999] {
            let delta = unit_fixed_point(|d| rho / (rho + (1.0 - d)), 1e-13).unwrap();
            assert!((delta - rho).abs() < 1e-8, "rho={rho} delta={delta}");
        }
    }

    #[test]
    fn fixed_point_unstable_queue_errors() {
        // ρ = 1.2: only fixed point in [0,1] is 1 itself; solver must fail.
        let res = unit_fixed_point(|d| 1.2 / (1.2 + (1.0 - d)), 1e-13);
        assert!(res.is_err());
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            RootError::NoBracket {
                f_lo: 1.0,
                f_hi: 2.0,
            },
            RootError::MaxIterations { best: 0.5 },
            RootError::NotANumber,
            RootError::InvalidBracket,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
