//! Numerical substrate for the `memlat` workspace.
//!
//! This crate provides the small set of numerical routines the analytical
//! memcached-latency model relies on:
//!
//! * [`roots`] — bracketing root finders (bisection, Brent) used to solve the
//!   GI/M/1 fixed point `δ = L((1-δ)μ)`.
//! * [`integrate`] — adaptive Simpson quadrature and fixed-order
//!   Gauss–Legendre rules used for numeric Laplace transforms of
//!   heavy-tailed inter-arrival distributions.
//! * [`special`] — `ln Γ`, regularized incomplete gamma (Erlang/gamma CDFs)
//!   and related special functions.
//! * [`kahan`] — compensated summation for long accumulation loops.
//! * [`float`] — approximate-comparison helpers shared by tests.
//!
//! Everything here is dependency-free, deterministic and `f64`-based.
//!
//! # Examples
//!
//! ```
//! use memlat_numerics::roots::bisect;
//!
//! // Solve x^2 = 2 on [0, 2].
//! let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
//! assert!((root - 2f64.sqrt()).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod float;
pub mod integrate;
pub mod kahan;
pub mod roots;
pub mod special;

pub use float::approx_eq;
pub use integrate::adaptive_simpson;
pub use kahan::KahanSum;
pub use roots::{bisect, brent, RootError};
